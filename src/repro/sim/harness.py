"""The deterministic multi-node fault-injection simulation harness.

One :func:`run_sim` call stands up a full consortium (real nodes, real
enclaves, real K-Protocol key agreement), then drives it step by step
over simulated time: clients inject confidential transactions carrying a
seed-derived canary secret, leaders cut blocks on the paper's 30 ms
cadence, proposals and sync traffic flow through a fault-scheduling
transport, and the injector crashes nodes, cuts the network, tears down
enclaves, and spikes EPC pressure — all driven by **one**
``random.Random(seed)`` which is simultaneously installed as the
process-wide entropy source (:mod:`repro.crypto.entropy`), so the entire
run — every key, nonce, fault, and message delivery — is a pure
function of the seed.  No wall-clock value ever enters the simulated
path.

After every step the harness checks the safety, durability, and
confidentiality invariants (:mod:`repro.sim.invariants`).  A run ends
with a fault-free drain phase in which every node must converge to the
canonical chain with byte-identical state roots.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field, replace

from repro.chain.block import Block
from repro.chain.network import NetworkModel, zones_for
from repro.chain.transaction import Transaction
from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.crypto.ecc import decode_point
from repro.crypto.entropy import deterministic_entropy
from repro.errors import ChainError, InvariantViolation, ReproError
from repro.lang import compile_source
from repro.sim.cluster import SimCluster
from repro.sim.events import EventLog, SimResult
from repro.sim.faults import (
    CrashFault,
    EnclaveFault,
    EpcFault,
    FaultInjector,
    PartitionFault,
    SlowFault,
    parse_faults,
)
from repro.sim.invariants import (
    ConfidentialityChecker,
    SafetyChecker,
    check_epc_sanity,
)
from repro.sim.transport import SimTransport
from repro.workloads.clients import Client

# The workload contract: `put` stores the caller's (confidential) input
# under "secret"; `bump` keeps a counter so blocks always mutate state.
CANARY_CONTRACT_SOURCE = """
fn put() {
    let n = input_size();
    let buf = alloc(n);
    input_read(buf, 0, n);
    let key = "secret";
    storage_set(key, 6, buf, n);
    let out = alloc(8);
    store64(out, n);
    output(out, 8);
}
fn bump() {
    let key = "count";
    let buf = alloc(8);
    let n = storage_get(key, 5, buf, 8);
    let v = 0;
    if (n == 8) { v = load64(buf); }
    store64(buf, v + 1);
    storage_set(key, 5, buf, 8);
    output(buf, 8);
}
"""


@dataclass(frozen=True)
class SimConfig:
    """One reproducible run, fully described."""

    seed: int = 0
    steps: int = 200
    faults: frozenset[str] = frozenset()
    num_nodes: int = 4
    num_zones: int = 2
    tick_s: float = 0.005
    block_every: int = 6  # 6 ticks x 5 ms = the paper's 30 ms block interval
    tx_every: int = 4
    num_clients: int = 3
    max_block_bytes: int = 4096
    sync_cooldown_steps: int = 4
    kv_scan_every: int = 10
    # Storage backend for every node ("memory" | "lsm" | "appendlog").
    # Persistent backends run on real temp-directory disks, which the
    # crash/torn faults then attack; temp paths never enter the
    # simulated state, so runs stay a pure function of the seed.
    storage: str = "memory"
    # DEFAULT_CONFIG pins exec_workers=0 / preverify_workers=0: the sim
    # replays the same seed expecting identical traces, so nodes execute
    # serially here even though parallel mode is deterministic-equivalent.
    engine_config: EngineConfig = field(default_factory=lambda: DEFAULT_CONFIG)


def run_sim(config: SimConfig) -> SimResult:
    """Run one simulation; never raises on invariant violations — they
    are reported in the returned :class:`SimResult`."""
    with deterministic_entropy(config.seed) as rng:
        return _Simulation(config, rng).run()


class _Simulation:
    def __init__(self, config: SimConfig, rng: random.Random):
        self.config = config
        self.rng = rng
        zones = zones_for(config.num_nodes, config.num_zones)
        engine_config = config.engine_config
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        data_root = None
        if config.storage != "memory":
            engine_config = replace(
                engine_config, storage_backend=config.storage
            )
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-sim-")
            data_root = self._tmpdir.name
        self.cluster = SimCluster(
            config.num_nodes, zones, engine_config, data_root=data_root
        )
        self.canary = f"SIM-CANARY-{config.seed}".encode()
        self.epc_canary = f"EPC-SIM-CANARY-{config.seed}".encode()
        self.scanner = ConfidentialityChecker([self.canary, self.epc_canary])
        self.safety = SafetyChecker()
        self.injector = FaultInjector(rng, config.faults, config.num_nodes)
        self.transport = SimTransport(
            self.injector, zones, NetworkModel(), self.scanner
        )
        self.log = EventLog()
        self.result = SimResult(
            seed=config.seed,
            steps=config.steps,
            faults=tuple(sorted(config.faults)),
            num_nodes=config.num_nodes,
            event_log=self.log,
        )
        self.clients = [
            Client.from_seed(f"sim-client-{config.seed}-{i}".encode())
            for i in range(config.num_clients)
        ]
        self.pk_point = decode_point(self.cluster.pk_tx)
        self.contract: bytes = b""
        self.canonical_height = 0
        self.tx_index = 0
        self.restarts_due: dict[int, list[int]] = {}
        self.partition_heal_at: int | None = None

    # -- lifecycle -------------------------------------------------------

    def run(self) -> SimResult:
        config, result = self.config, self.result
        final_step, final_now = 0, 0.0
        try:
            self._bootstrap()
            for step in range(config.steps):
                now = (step + 1) * config.tick_s
                final_step, final_now = step, now
                self._apply_faults(step, now)
                self._deliver(step, now)
                if step % config.tx_every == 0:
                    self._inject_tx(now)
                if step % config.block_every == config.block_every - 1:
                    self._cut_block(step, now)
                self._apply_buffered(step, now)
                self._sync(step, now)
                self._check_step(step)
            final_step, final_now = self._drain(config.steps)
            self._final_checks(final_step, final_now)
        except InvariantViolation as exc:
            result.violations.append(str(exc))
        result.fault_schedule = list(self.injector.schedule)
        result.blocks_committed = self.canonical_height
        for sim_node in self.cluster:
            result.final_heights[sim_node.node_id] = sim_node.height
            if sim_node.alive:
                result.final_state_roots[sim_node.node_id] = (
                    sim_node.node.state_root().hex()
                )
        result.converged = not result.violations and all(
            sim_node.alive and sim_node.height == self.canonical_height
            for sim_node in self.cluster
        )
        for sim_node in self.cluster:
            if sim_node.node is not None:
                try:
                    sim_node.node.close()
                except ReproError:
                    pass  # a violation run may leave a broken store behind
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
        return result

    def _bootstrap(self) -> None:
        """Height 1, fault-free: deploy the canary contract everywhere."""
        artifact = compile_source(CANARY_CONTRACT_SOURCE, "wasm")
        tx, self.contract = self.clients[0].confidential_deploy(
            self.pk_point, artifact
        )
        founder = self.cluster[0].node
        founder.receive_transaction(tx)
        founder.preverify_pending()
        batch = founder.draft_block(max_bytes=self.config.max_block_bytes)
        applied = founder.apply_transactions(batch, proposer=0)
        self._register_block(0, applied, 0, 0.0, len(batch))
        for sim_node in self.cluster:
            if sim_node.node_id == 0:
                continue
            replica_applied = sim_node.node.apply_block(applied.block)
            self._observe(sim_node.node_id, replica_applied, 0, 0.0)

    # -- per-step phases -------------------------------------------------

    def _apply_faults(self, step: int, now: float) -> None:
        for node_id in sorted(self.restarts_due.pop(step, [])):
            sim_node = self.cluster[node_id]
            if sim_node.alive:
                continue
            restored = sim_node.restart(
                self.cluster.attestation, self.cluster.pk_tx,
                self.cluster.cs_measurement, self.safety,
            )
            self.log.emit(step, now, "restart",
                          f"node={node_id} restored_h={restored}")
            self.scanner.scan_kv(node_id, sim_node.kv)
        if self.partition_heal_at is not None and step >= self.partition_heal_at:
            self.transport.heal()
            self.partition_heal_at = None
            self.log.emit(step, now, "heal", "partition healed")
        plan = self.injector.plan_step(
            step, self.cluster.alive_ids(), self.cluster.crashed_ids(),
            self.transport.partition is not None,
        )
        for fault in plan:
            if isinstance(fault, CrashFault):
                sim_node = self.cluster[fault.node_id]
                if not sim_node.alive:
                    continue
                sim_node.crash(fault.torn_bytes)
                self.restarts_due.setdefault(
                    fault.restart_step, []
                ).append(fault.node_id)
                self.log.emit(
                    step, now, "crash",
                    f"node={fault.node_id} restart_at={fault.restart_step}"
                    + (f" torn={fault.torn_bytes}" if fault.torn_bytes else ""),
                )
            elif isinstance(fault, PartitionFault):
                self.transport.set_partition(fault.group_a, fault.group_b)
                self.partition_heal_at = fault.heal_step
                self.log.emit(
                    step, now, "partition",
                    f"{list(fault.group_a)}|{list(fault.group_b)} "
                    f"heal_at={fault.heal_step}",
                )
            elif isinstance(fault, SlowFault):
                self.transport.set_slow(
                    fault.node_id, fault.until_step * self.config.tick_s
                )
                self.log.emit(step, now, "slow",
                              f"node={fault.node_id} until={fault.until_step}")
            elif isinstance(fault, EnclaveFault):
                sim_node = self.cluster[fault.node_id]
                if sim_node.alive:
                    sim_node.enclave_restart(
                        self.cluster.attestation, self.cluster.pk_tx,
                        self.cluster.cs_measurement,
                    )
                    self.log.emit(step, now, "enclave",
                                  f"node={fault.node_id} rebuilt+reattested")
            elif isinstance(fault, EpcFault):
                sim_node = self.cluster[fault.node_id]
                sim_node.epc_spike(self.rng, self.epc_canary)
                self.log.emit(
                    step, now, "epc",
                    f"node={fault.node_id} spike "
                    f"live={len(sim_node.epc_handles)}",
                )

    def _deliver(self, step: int, now: float) -> None:
        for message in self.transport.due(now):
            sim_node = self.cluster[message.dst]
            if not sim_node.alive:
                continue
            if message.kind == "tx":
                try:
                    tx = Transaction.decode(message.payload)
                except ReproError:
                    continue
                sim_node.node.receive_transaction(tx)
            elif message.kind in ("propose", "sync_resp"):
                try:
                    block = Block.decode(message.payload)
                except ReproError:
                    continue
                height = block.header.height
                if height > sim_node.height and height not in sim_node.buffered:
                    sim_node.buffered[height] = message.payload
            elif message.kind == "sync_req":
                height = int.from_bytes(message.payload, "big")
                if 1 <= height <= sim_node.height and message.src >= 0:
                    self.transport.send(
                        now, sim_node.node_id, message.src, "sync_resp",
                        sim_node.node.chain[height - 1].encode(),
                    )

    def _inject_tx(self, now: float) -> None:
        client = self.clients[self.tx_index % len(self.clients)]
        if self.tx_index % 2 == 0:
            args = self.canary + b":%06d" % self.tx_index
            tx = client.confidential_call(
                self.pk_point, self.contract, "put", args
            )
        else:
            tx = client.confidential_call(
                self.pk_point, self.contract, "bump", b""
            )
        self.tx_index += 1
        payload = tx.encode()
        for node_id in range(len(self.cluster)):
            self.transport.send(now, -1, node_id, "tx", payload)

    def _cut_block(self, step: int, now: float) -> None:
        for sim_node in self.cluster:
            if sim_node.alive:
                sim_node.node.preverify_pending()
        leader_id, view_changed, reason = self._pick_leader()
        if leader_id is None:
            self.log.emit(step, now, "stall", reason)
            return
        if view_changed:
            self.result.view_changes += 1
            self.log.emit(step, now, "view_change",
                          f"leader={leader_id} {reason}")
        leader = self.cluster[leader_id].node
        batch = leader.draft_block(max_bytes=self.config.max_block_bytes)
        applied = leader.apply_transactions(batch, proposer=leader_id)
        self._register_block(leader_id, applied, step, now, len(batch))
        self.transport.broadcast(
            now, leader_id, "propose", applied.block.encode(),
            list(range(len(self.cluster))),
        )

    def _register_block(self, leader_id: int, applied, step: int, now: float,
                        num_txs: int) -> None:
        header = applied.block.header
        self.safety.register_canonical(
            header.height, applied.block.block_hash, header.state_root
        )
        self.canonical_height = header.height
        self.result.txs_committed += num_txs
        self.log.emit(
            step, now, "block",
            f"h={header.height} txs={num_txs} "
            f"blk={applied.block.block_hash.hex()[:12]} leader={leader_id}",
        )
        self._observe(leader_id, applied, step, now)

    def _observe(self, node_id: int, applied, step: int, now: float) -> None:
        header = applied.block.header
        self.safety.observe_commit(
            node_id, header.height, applied.block.block_hash,
            header.state_root,
        )
        self.log.emit(
            step, now, "commit",
            f"node={node_id} h={header.height} "
            f"blk={applied.block.block_hash.hex()[:12]}",
        )

    def _pick_leader(self) -> tuple[int | None, bool, str]:
        """Rotation by next height over alive, caught-up nodes with a
        quorum-sized connected group; walking past the rotation's first
        pick is a view change."""
        n = len(self.cluster)
        quorum = n - (n - 1) // 3
        start = self.canonical_height % n
        for offset in range(n):
            node_id = (start + offset) % n
            sim_node = self.cluster[node_id]
            if not sim_node.alive or sim_node.height != self.canonical_height:
                continue
            group = self._group_of(node_id)
            if len([g for g in group if self.cluster[g].alive]) < quorum:
                continue
            return node_id, offset > 0, (
                "" if offset == 0 else f"rotated_from={start}"
            )
        return None, False, "no eligible leader with a quorum"

    def _group_of(self, node_id: int) -> list[int]:
        partition = self.transport.partition
        if partition is None:
            return list(range(len(self.cluster)))
        side = partition.get(node_id)
        return sorted(i for i, g in partition.items() if g == side)

    def _apply_buffered(self, step: int, now: float) -> None:
        for sim_node in self.cluster:
            if not sim_node.alive:
                continue
            stale = [h for h in sim_node.buffered if h <= sim_node.height]
            for height in stale:
                del sim_node.buffered[height]
            while sim_node.alive and (sim_node.height + 1) in sim_node.buffered:
                payload = sim_node.buffered.pop(sim_node.height + 1)
                block = Block.decode(payload)
                for tx in block.transactions:
                    sim_node.node.unverified.remove(tx.tx_hash)
                    sim_node.node.verified.remove(tx.tx_hash)
                try:
                    applied = sim_node.node.apply_block(block)
                except ChainError as exc:
                    raise InvariantViolation(
                        f"safety: node {sim_node.node_id} failed to apply "
                        f"canonical block {block.header.height}: {exc}"
                    )
                self._observe(sim_node.node_id, applied, step, now)

    def _sync(self, step: int, now: float) -> None:
        for sim_node in self.cluster:
            if not sim_node.alive or sim_node.height >= self.canonical_height:
                continue
            if (sim_node.height + 1) in sim_node.buffered:
                continue
            if step - sim_node.last_sync_step < self.config.sync_cooldown_steps:
                continue
            peers = sorted(
                i for i in self.cluster.alive_ids() if i != sim_node.node_id
            )
            if not peers:
                continue
            peer = self.rng.choice(peers)
            sim_node.last_sync_step = step
            self.transport.send(
                now, sim_node.node_id, peer, "sync_req",
                (sim_node.height + 1).to_bytes(8, "big"),
            )

    def _check_step(self, step: int) -> None:
        for sim_node in self.cluster:
            check_epc_sanity(sim_node.node_id, sim_node.platform.epc)
            self.scanner.scan_epc(sim_node.node_id, sim_node.platform.epc)
        if step % self.config.kv_scan_every == 0:
            for sim_node in self.cluster:
                # A crashed persistent store has no open handles to read
                # through — its raw files are scanned below instead.
                if sim_node.alive or self.config.storage == "memory":
                    self.scanner.scan_kv(sim_node.node_id, sim_node.kv)
                if sim_node.data_dir is not None:
                    self.scanner.scan_files(sim_node.node_id, sim_node.data_dir)

    # -- end of run ------------------------------------------------------

    def _drain(self, base_step: int) -> tuple[int, float]:
        """Fault-free epilogue: heal, restart everyone, converge."""
        self.injector.active = False
        self.transport.heal()
        self.partition_heal_at = None
        self.transport.slow_until.clear()
        step = base_step
        now = (step + 1) * self.config.tick_s
        self.log.emit(step, now, "drain", "faults off; converging")
        for node_id in sorted(self.cluster.crashed_ids()):
            restored = self.cluster[node_id].restart(
                self.cluster.attestation, self.cluster.pk_tx,
                self.cluster.cs_measurement, self.safety,
            )
            self.log.emit(step, now, "restart",
                          f"node={node_id} restored_h={restored} (drain)")
        max_drain = self.config.steps // 2 + 80
        for extra in range(max_drain):
            step = base_step + extra
            now = (step + 1) * self.config.tick_s
            self._deliver(step, now)
            self._apply_buffered(step, now)
            self._sync(step, now)
            if all(sn.height == self.canonical_height for sn in self.cluster):
                break
        return step, now

    def _final_checks(self, step: int, now: float) -> None:
        roots: dict[int, bytes] = {}
        for sim_node in self.cluster:
            self.scanner.scan_kv(sim_node.node_id, sim_node.kv)
            if sim_node.data_dir is not None:
                self.scanner.scan_files(sim_node.node_id, sim_node.data_dir)
            self.scanner.scan_epc(sim_node.node_id, sim_node.platform.epc)
            check_epc_sanity(sim_node.node_id, sim_node.platform.epc)
            if sim_node.alive:
                roots[sim_node.node_id] = sim_node.node.state_root()
        for node_id in sorted(roots):
            self.log.emit(
                step, now, "final",
                f"node={node_id} h={self.cluster[node_id].height} "
                f"root={roots[node_id].hex()[:16]}",
            )
        heights = {sn.node_id: sn.height for sn in self.cluster}
        if any(h != self.canonical_height for h in heights.values()):
            raise InvariantViolation(
                f"liveness: cluster failed to converge to canonical height "
                f"{self.canonical_height}: heights={heights}"
            )
        if len(set(roots.values())) != 1:
            raise InvariantViolation(
                "safety: converged nodes disagree on the final state root: "
                + ", ".join(
                    f"{nid}={root.hex()[:16]}"
                    for nid, root in sorted(roots.items())
                )
            )


__all__ = [
    "CANARY_CONTRACT_SOURCE",
    "SimConfig",
    "parse_faults",
    "run_sim",
]
