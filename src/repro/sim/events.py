"""Deterministic event log and run report for the fault simulator.

Every observable thing the simulation does — fault injections, block
commits, view changes, restarts, invariant checks — is appended to one
:class:`EventLog` as a fixed-format text line keyed by (step, simulated
time).  Two runs with the same seed and configuration must produce
byte-identical logs; the determinism acceptance test compares them
directly, so nothing time- or id-nondeterministic may ever enter a line.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SimEvent:
    """One logged simulation event."""

    step: int
    time_s: float
    kind: str
    detail: str

    def line(self) -> str:
        return f"{self.step:05d} t={self.time_s:010.4f} {self.kind:<12} {self.detail}"


class EventLog:
    """Append-only deterministic log."""

    def __init__(self) -> None:
        self.events: list[SimEvent] = []

    def emit(self, step: int, time_s: float, kind: str, detail: str) -> None:
        self.events.append(SimEvent(step, time_s, kind, detail))

    @property
    def text(self) -> str:
        return "\n".join(event.line() for event in self.events)

    def __len__(self) -> int:
        return len(self.events)


@dataclass
class SimResult:
    """Outcome of one simulated run.

    ``ok`` means every step-wise invariant held *and* the cluster
    converged during the drain phase.  On failure,
    :meth:`failure_report` prints everything needed to replay the run:
    the seed, the full fault schedule, and the violations.
    """

    seed: int
    steps: int
    faults: tuple[str, ...]
    num_nodes: int
    event_log: EventLog = field(default_factory=EventLog)
    fault_schedule: list[str] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    final_heights: dict[int, int] = field(default_factory=dict)
    final_state_roots: dict[int, str] = field(default_factory=dict)
    blocks_committed: int = 0
    txs_committed: int = 0
    view_changes: int = 0
    converged: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations and self.converged

    @property
    def event_log_text(self) -> str:
        return self.event_log.text

    def summary(self) -> str:
        roots = sorted(set(self.final_state_roots.values()))
        return (
            f"sim seed={self.seed} steps={self.steps} "
            f"faults={','.join(self.faults) or 'none'} nodes={self.num_nodes}: "
            f"{self.blocks_committed} blocks / {self.txs_committed} txs committed, "
            f"{self.view_changes} view changes, "
            f"{len(self.fault_schedule)} faults injected, "
            f"converged={self.converged}, "
            f"state_roots={[r[:16] for r in roots]}, "
            f"violations={len(self.violations)}"
        )

    def failure_report(self) -> str:
        lines = [
            "=== SIMULATION FAILURE ===",
            f"replay with: seed={self.seed} steps={self.steps} "
            f"faults={','.join(self.faults)} nodes={self.num_nodes}",
            "",
            "violations:",
        ]
        lines += [f"  - {v}" for v in self.violations] or ["  (none — convergence failure)"]
        lines += ["", "fault schedule:"]
        lines += [f"  {entry}" for entry in self.fault_schedule] or ["  (empty)"]
        return "\n".join(lines)
