"""Pytest-importable scenario builders.

Each builder returns a fully described :class:`SimConfig`; tests and the
CI smoke job call ``run_sim`` on them directly.  Keeping the presets
here (rather than in test files) makes every scenario replayable from
the ``repro sim`` command line with the same parameters.
"""

from __future__ import annotations

from repro.sim.faults import FAULT_KINDS
from repro.sim.harness import SimConfig
from repro.sim.shardsim import SHARD_FAULT_KINDS, ShardSimConfig


def clean_scenario(seed: int, steps: int = 120) -> SimConfig:
    """No faults at all — the baseline the fault runs are compared to."""
    return SimConfig(seed=seed, steps=steps, faults=frozenset())


def message_chaos_scenario(seed: int, steps: int = 200) -> SimConfig:
    """Drop, delay, and duplicate every class of message."""
    return SimConfig(
        seed=seed, steps=steps, faults=frozenset({"drop", "delay", "dup"})
    )


def crash_restart_scenario(seed: int, steps: int = 200) -> SimConfig:
    """Node crashes with storage-backed restarts (plus message drops,
    so restarts land mid-stream rather than at quiet points)."""
    return SimConfig(
        seed=seed, steps=steps, faults=frozenset({"crash", "drop"})
    )


def partition_scenario(seed: int, steps: int = 200) -> SimConfig:
    """Network partitions with bounded heals, plus slow nodes."""
    return SimConfig(
        seed=seed, steps=steps, faults=frozenset({"partition", "slow", "delay"})
    )


def tee_fault_scenario(seed: int, steps: int = 200) -> SimConfig:
    """Enclave teardown/rebuild and EPC pressure spikes."""
    return SimConfig(
        seed=seed, steps=steps, faults=frozenset({"enclave", "epc"})
    )


def acceptance_scenario(seed: int, steps: int = 500) -> SimConfig:
    """The issue's acceptance configuration:
    ``--faults drop,crash,partition,epc``."""
    return SimConfig(
        seed=seed, steps=steps,
        faults=frozenset({"drop", "crash", "partition", "epc"}),
    )


def everything_scenario(seed: int, steps: int = 300) -> SimConfig:
    """All eight fault kinds at once."""
    return SimConfig(seed=seed, steps=steps, faults=frozenset(FAULT_KINDS))


SCENARIOS = {
    "clean": clean_scenario,
    "message-chaos": message_chaos_scenario,
    "crash-restart": crash_restart_scenario,
    "partition": partition_scenario,
    "tee-faults": tee_fault_scenario,
    "acceptance": acceptance_scenario,
    "everything": everything_scenario,
}


# -- multi-shard scenarios (run with ``run_shard_sim`` / `repro shardsim`) --


def shard_clean_scenario(seed: int, steps: int = 60,
                         shards: int = 2) -> ShardSimConfig:
    """Fault-free multi-shard baseline: routing + cross-shard commits."""
    return ShardSimConfig(seed=seed, steps=steps, shards=shards)


def shard_partition_scenario(seed: int, steps: int = 60,
                             shards: int = 2) -> ShardSimConfig:
    """A shard partitions mid-cross-shard-commit, then heals; the
    coordinator's timeout/abort must keep the other shards moving."""
    return ShardSimConfig(
        seed=seed, steps=steps, shards=shards,
        faults=frozenset({"partition"}),
    )


def shard_acceptance_scenario(seed: int, steps: int = 60,
                              shards: int = 2) -> ShardSimConfig:
    """The issue's acceptance configuration: a shard partition mid
    cross-shard commit *and* a coordinator crash-restart from the
    write-ahead journal, in one run."""
    return ShardSimConfig(
        seed=seed, steps=steps, shards=shards,
        faults=frozenset(SHARD_FAULT_KINDS),
    )


SHARD_SCENARIOS = {
    "shard-clean": shard_clean_scenario,
    "shard-partition": shard_partition_scenario,
    "shard-acceptance": shard_acceptance_scenario,
}
