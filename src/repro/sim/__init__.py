"""Deterministic fault-injection simulator for the CONFIDE consortium.

FoundationDB-style simulation testing: a whole multi-node consortium —
real enclaves, real K-Protocol key agreement, real block execution —
runs over simulated time under seeded fault injection (message drop /
delay / duplication, partitions, node crashes with storage-backed
restarts, enclave teardown with K-Protocol key recovery, EPC pressure
spikes), with safety, durability, and confidentiality invariants
machine-checked after every step.  Every run is a pure function of one
integer seed.

Entry points: :func:`run_sim` (programmatic), ``repro sim`` (CLI), and
:mod:`repro.sim.scenarios` (pytest-importable presets).
"""

from repro.errors import InvariantViolation
from repro.sim.events import EventLog, SimEvent, SimResult
from repro.sim.faults import FAULT_KINDS, FaultInjector, FaultRates, parse_faults
from repro.sim.harness import CANARY_CONTRACT_SOURCE, SimConfig, run_sim
from repro.sim.invariants import (
    ConfidentialityChecker,
    SafetyChecker,
    check_epc_sanity,
)
from repro.sim.scenarios import SCENARIOS
from repro.sim.transport import Message, SimTransport

__all__ = [
    "CANARY_CONTRACT_SOURCE",
    "ConfidentialityChecker",
    "EventLog",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultRates",
    "InvariantViolation",
    "Message",
    "SCENARIOS",
    "SafetyChecker",
    "SimConfig",
    "SimEvent",
    "SimResult",
    "SimTransport",
    "check_epc_sanity",
    "parse_faults",
    "run_sim",
]
