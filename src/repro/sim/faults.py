"""Fault taxonomy and the seeded fault injector.

Eight fault kinds, grouped by the layer they attack:

- message faults (``drop``, ``delay``, ``dup``) — applied per message at
  send time by the transport;
- ``partition`` — a random two-way network cut, healed after a bounded
  number of steps;
- node lifecycle faults (``crash`` — kill the in-memory node, keeping
  its persisted storage and platform, with a scheduled restart;
  ``torn`` — upgrade crashes to tear off the tail of the node's
  write-ahead log mid-record, exercising torn-write recovery on
  persistent storage backends; ``slow`` — a window during which a
  node's links crawl);
- TEE faults (``enclave`` — tear the confidential engine down and
  rebuild it on the same platform, forcing K-Protocol key recovery and
  re-attestation; ``epc`` — EPC pressure spikes that force page
  eviction of canary-bearing enclave memory).

All decisions are drawn from the single run-wide ``random.Random``, so
the schedule is a pure function of the seed; every decision is recorded
so a failure report can print the complete schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ChainError

FAULT_KINDS = (
    "drop", "delay", "dup", "partition", "crash", "torn", "slow", "enclave",
    "epc",
)

MESSAGE_FAULTS = frozenset({"drop", "delay", "dup"})


def parse_faults(spec) -> frozenset[str]:
    """Parse a ``drop,crash,partition,epc`` style spec (or iterable)."""
    if spec is None:
        return frozenset()
    if isinstance(spec, str):
        names = [part.strip() for part in spec.split(",") if part.strip()]
    else:
        names = [str(part) for part in spec]
    if any(name == "all" for name in names):
        return frozenset(FAULT_KINDS)
    unknown = sorted(set(names) - set(FAULT_KINDS))
    if unknown:
        raise ChainError(
            f"unknown fault kind(s) {unknown}; valid: {', '.join(FAULT_KINDS)}"
        )
    return frozenset(names)


@dataclass(frozen=True)
class FaultRates:
    """Per-step / per-message fault probabilities (step-based windows)."""

    drop_p: float = 0.06
    dup_p: float = 0.04
    delay_p: float = 0.25
    max_extra_delay_s: float = 0.040
    partition_p: float = 0.02
    partition_steps: tuple[int, int] = (6, 30)
    crash_p: float = 0.025
    crash_steps: tuple[int, int] = (8, 40)
    slow_p: float = 0.03
    slow_steps: tuple[int, int] = (5, 25)
    slow_factor: float = 5.0
    enclave_p: float = 0.02
    epc_p: float = 0.15
    torn_p: float = 0.5  # chance a crash also tears the WAL tail
    torn_bytes: tuple[int, int] = (1, 72)  # bytes sheared off the tail


@dataclass(frozen=True)
class CrashFault:
    node_id: int
    restart_step: int
    torn_bytes: int = 0  # >0: shear this many bytes off the WAL tail


@dataclass(frozen=True)
class PartitionFault:
    group_a: tuple[int, ...]
    group_b: tuple[int, ...]
    heal_step: int


@dataclass(frozen=True)
class SlowFault:
    node_id: int
    until_step: int


@dataclass(frozen=True)
class EnclaveFault:
    node_id: int


@dataclass(frozen=True)
class EpcFault:
    node_id: int


class FaultInjector:
    """Draws all fault decisions from the run's single RNG."""

    def __init__(
        self,
        rng: random.Random,
        enabled: frozenset[str],
        num_nodes: int,
        rates: FaultRates = FaultRates(),
    ):
        self.rng = rng
        self.enabled = enabled
        self.num_nodes = num_nodes
        self.rates = rates
        self.max_faulty = (num_nodes - 1) // 3
        self.schedule: list[str] = []
        self.active = True  # cleared during the drain phase

    def record(self, step: int, entry: str) -> None:
        self.schedule.append(f"step {step:05d}: {entry}")

    # -- message-level ---------------------------------------------------

    def message_fate(self) -> tuple[bool, bool, float]:
        """(dropped, duplicated, extra_delay_s) for one message.

        Always draws the same number of random values regardless of
        which kinds are enabled, so enabling a fault never perturbs the
        RNG stream consumed by the others.
        """
        rates = self.rates
        drop_roll = self.rng.random()
        dup_roll = self.rng.random()
        delay_roll = self.rng.random()
        jitter = self.rng.random()
        if not self.active:
            return False, False, 0.0
        dropped = "drop" in self.enabled and drop_roll < rates.drop_p
        duplicated = "dup" in self.enabled and dup_roll < rates.dup_p
        extra = 0.0
        if "delay" in self.enabled and delay_roll < rates.delay_p:
            extra = jitter * rates.max_extra_delay_s
        return dropped, duplicated, extra

    # -- step-level ------------------------------------------------------

    def plan_step(
        self,
        step: int,
        alive_ids: list[int],
        crashed_ids: list[int],
        partitioned: bool,
    ) -> list[object]:
        """Fault commands to apply this step, recorded in the schedule."""
        if not self.active:
            return []
        rates = self.rates
        plan: list[object] = []
        rng = self.rng

        if "crash" in self.enabled and rng.random() < rates.crash_p:
            if len(crashed_ids) < self.max_faulty and alive_ids:
                victim = rng.choice(sorted(alive_ids))
                down = rng.randint(*rates.crash_steps)
                torn = 0
                if "torn" in self.enabled and rng.random() < rates.torn_p:
                    torn = rng.randint(*rates.torn_bytes)
                plan.append(CrashFault(victim, step + down, torn))
                self.record(
                    step,
                    f"crash node={victim} restart_at={step + down}"
                    + (f" torn={torn}" if torn else ""),
                )

        if "partition" in self.enabled and not partitioned \
                and rng.random() < rates.partition_p and self.num_nodes >= 2:
            ids = list(range(self.num_nodes))
            rng.shuffle(ids)
            cut = rng.randint(1, max(1, self.max_faulty))
            group_b = tuple(sorted(ids[:cut]))
            group_a = tuple(sorted(ids[cut:]))
            heal = step + rng.randint(*rates.partition_steps)
            plan.append(PartitionFault(group_a, group_b, heal))
            self.record(
                step,
                f"partition {list(group_a)}|{list(group_b)} heal_at={heal}",
            )

        if "slow" in self.enabled and rng.random() < rates.slow_p and alive_ids:
            victim = rng.choice(sorted(alive_ids))
            until = step + rng.randint(*rates.slow_steps)
            plan.append(SlowFault(victim, until))
            self.record(step, f"slow node={victim} until={until}")

        if "enclave" in self.enabled and rng.random() < rates.enclave_p and alive_ids:
            victim = rng.choice(sorted(alive_ids))
            plan.append(EnclaveFault(victim))
            self.record(step, f"enclave-restart node={victim}")

        if "epc" in self.enabled and rng.random() < rates.epc_p:
            victim = rng.randrange(self.num_nodes)
            plan.append(EpcFault(victim))
            self.record(step, f"epc-spike node={victim}")

        return plan
