"""Fault-scheduling message transport over the network latency model.

Wraps :class:`repro.chain.network.NetworkModel` with a simulated-time
delivery queue: ``send`` computes the zone-aware delivery time, applies
the injector's message faults (drop, extra delay, duplication), drops
messages crossing an active partition cut, and multiplies latency for
nodes inside a ``slow`` window.  Deliveries pop in (time, sequence)
order, so delayed messages naturally reorder.

Every payload is byte-scanned by the confidentiality checker *at send
time* — the wire is untrusted, so no canary plaintext may ever appear on
it (T-Protocol envelopes and sealed receipts keep it ciphertext).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.chain.network import NetworkModel
from repro.sim.faults import FaultInjector


@dataclass(frozen=True)
class Message:
    kind: str  # "tx" | "propose" | "sync_req" | "sync_resp"
    src: int  # node id, or -1 for a client
    dst: int
    payload: bytes
    sent_at_s: float


class SimTransport:
    """Deterministic delivery queue with injectable message faults."""

    def __init__(
        self,
        injector: FaultInjector,
        zones: list[int],
        network: NetworkModel = NetworkModel(),
        scanner=None,
    ):
        self.injector = injector
        self.zones = zones
        self.network = network
        self.scanner = scanner  # ConfidentialityChecker or None
        self._queue: list[tuple[float, int, Message]] = []
        self._seq = 0
        self.partition: dict[int, int] | None = None  # node id -> group
        self.slow_until: dict[int, float] = {}
        self.sent = 0
        self.dropped = 0

    # -- fault state -----------------------------------------------------

    def set_partition(self, group_a: tuple[int, ...], group_b: tuple[int, ...]) -> None:
        mapping = {nid: 0 for nid in group_a}
        mapping.update({nid: 1 for nid in group_b})
        self.partition = mapping

    def heal(self) -> None:
        self.partition = None

    def set_slow(self, node_id: int, until_s: float) -> None:
        self.slow_until[node_id] = max(self.slow_until.get(node_id, 0.0), until_s)

    def _is_slow(self, node_id: int, now_s: float) -> bool:
        return self.slow_until.get(node_id, 0.0) > now_s

    def _cut(self, src: int, dst: int) -> bool:
        """Partition cuts node-to-node links; clients reach everyone."""
        if self.partition is None or src < 0:
            return False
        return self.partition.get(src) != self.partition.get(dst)

    def _zone(self, node_id: int) -> int:
        return self.zones[node_id] if node_id >= 0 else self.zones[0]

    # -- sending ---------------------------------------------------------

    def send(self, now_s: float, src: int, dst: int, kind: str, payload: bytes) -> None:
        if self.scanner is not None:
            self.scanner.scan_wire(payload, f"{kind} {src}->{dst}")
        self.sent += 1
        if self._cut(src, dst):
            self.dropped += 1
            return
        dropped, duplicated, extra_s = self.injector.message_fate()
        if dropped:
            self.dropped += 1
            return
        base = self.network.delivery_time(self._zone(src), self._zone(dst), len(payload))
        if self._is_slow(src, now_s) or self._is_slow(dst, now_s):
            base *= self.injector.rates.slow_factor
        message = Message(kind, src, dst, payload, now_s)
        self._push(now_s + base + extra_s, message)
        if duplicated:
            self._push(now_s + base + extra_s + 0.001, message)

    def broadcast(self, now_s: float, src: int, kind: str, payload: bytes,
                  node_ids: list[int]) -> None:
        for dst in node_ids:
            if dst != src:
                self.send(now_s, src, dst, kind, payload)

    def _push(self, at_s: float, message: Message) -> None:
        heapq.heappush(self._queue, (at_s, self._seq, message))
        self._seq += 1

    # -- delivery --------------------------------------------------------

    def due(self, now_s: float) -> list[Message]:
        """Pop every message whose delivery time has arrived."""
        ready: list[Message] = []
        while self._queue and self._queue[0][0] <= now_s:
            _, _, message = heapq.heappop(self._queue)
            ready.append(message)
        return ready

    @property
    def in_flight(self) -> int:
        return len(self._queue)
