"""Confidential-field partitioning (the heart of CCLe, paper §4).

Instead of encrypting whole contract states, CCLe splits a value into

- a **public part** — the original tree with every ``confidential``
  subtree removed, still encodable with the binary codec and readable by
  auditors without keys; and
- a **secret part** — only the confidential subtrees, positioned by the
  same container keys/indices, canonically serialized for D-Protocol
  encryption.

``merge`` inverts the split after the Confidential-Engine decrypts the
secret part.  The canonical serialization is deterministic (sorted map
keys) because replicated nodes must produce identical ciphertext.
"""

from __future__ import annotations

from repro.ccle.schema import Schema, Table
from repro.errors import EncodingError
from repro.storage import rlp

_SECRET_MARK = "__ccle_secret__"


def split(schema: Schema, value: dict) -> tuple[dict, dict]:
    """Split a root-table value into (public, secret) trees."""
    return _split_table(schema, schema.root, value)


def _split_table(schema: Schema, table: Table, value: dict) -> tuple[dict, dict]:
    public: dict = {}
    secret: dict = {}
    for fld in table.fields:
        if fld.name not in value:
            continue
        item = value[fld.name]
        if fld.confidential:
            secret[fld.name] = item
            continue
        if fld.type.is_vector and item is not None:
            element = schema.tables[fld.type.name]
            if fld.is_map:
                pub_map: dict = {}
                sec_map: dict = {}
                for key, elem in item.items():
                    pub_elem, sec_elem = _split_table(schema, element, elem)
                    pub_map[key] = pub_elem
                    if sec_elem:
                        sec_map[key] = sec_elem
                public[fld.name] = pub_map
                if sec_map:
                    secret[fld.name] = sec_map
            else:
                pub_list = []
                sec_list: dict = {}
                for index, elem in enumerate(item):
                    pub_elem, sec_elem = _split_table(schema, element, elem)
                    pub_list.append(pub_elem)
                    if sec_elem:
                        sec_list[index] = sec_elem
                public[fld.name] = pub_list
                if sec_list:
                    secret[fld.name] = sec_list
        else:
            public[fld.name] = item
    return public, secret


def split_by_role(schema: Schema, value: dict) -> tuple[dict, dict[str, dict]]:
    """Access-control split: (public, {role: secret-tree}).

    Confidential fields without a role tag land under the default role
    ``""``; tagged fields land under their tag.  Each role's tree can be
    sealed under a role-derived subkey, so one role's data is releasable
    without exposing the others.  ``merge`` recombines role trees one at
    a time (it is additive).
    """
    return _split_table_roles(schema, schema.root, value)


def _split_table_roles(
    schema: Schema, table: Table, value: dict
) -> tuple[dict, dict[str, dict]]:
    public: dict = {}
    secrets: dict[str, dict] = {}

    def bucket(role: str) -> dict:
        return secrets.setdefault(role, {})

    for fld in table.fields:
        if fld.name not in value:
            continue
        item = value[fld.name]
        if fld.confidential:
            bucket(fld.role)[fld.name] = item
            continue
        if fld.type.is_vector and item is not None:
            element = schema.tables[fld.type.name]
            if fld.is_map:
                pub_map: dict = {}
                sec_maps: dict[str, dict] = {}
                for key, elem in item.items():
                    pub_elem, elem_secrets = _split_table_roles(
                        schema, element, elem
                    )
                    pub_map[key] = pub_elem
                    for role, tree in elem_secrets.items():
                        sec_maps.setdefault(role, {})[key] = tree
                public[fld.name] = pub_map
                for role, tree in sec_maps.items():
                    bucket(role)[fld.name] = tree
            else:
                pub_list = []
                sec_lists: dict[str, dict] = {}
                for index, elem in enumerate(item):
                    pub_elem, elem_secrets = _split_table_roles(
                        schema, element, elem
                    )
                    pub_list.append(pub_elem)
                    for role, tree in elem_secrets.items():
                        sec_lists.setdefault(role, {})[index] = tree
                public[fld.name] = pub_list
                for role, tree in sec_lists.items():
                    bucket(role)[fld.name] = tree
        else:
            public[fld.name] = item
    return public, {role: tree for role, tree in secrets.items() if tree}


def merge(schema: Schema, public: dict, secret: dict) -> dict:
    """Recombine the trees produced by :func:`split`."""
    return _merge_table(schema, schema.root, public, secret)


def _merge_table(schema: Schema, table: Table, public: dict, secret: dict) -> dict:
    out = dict(public)
    for fld in table.fields:
        if fld.confidential:
            if fld.name in secret:
                out[fld.name] = secret[fld.name]
            continue
        if fld.name not in secret:
            continue
        if not fld.type.is_vector:
            raise EncodingError(
                f"secret part has non-confidential scalar '{fld.name}'"
            )
        element = schema.tables[fld.type.name]
        container = out.get(fld.name)
        if fld.is_map:
            merged_map = dict(container or {})
            for key, sec_elem in secret[fld.name].items():
                merged_map[key] = _merge_table(
                    schema, element, merged_map.get(key, {}), sec_elem
                )
            out[fld.name] = merged_map
        else:
            merged_list = list(container or [])
            for index, sec_elem in secret[fld.name].items():
                while len(merged_list) <= index:
                    merged_list.append({})
                merged_list[index] = _merge_table(
                    schema, element, merged_list[index], sec_elem
                )
            out[fld.name] = merged_list
    return out


# ---------------------------------------------------------------------------
# Canonical secret serialization (deterministic across replicas)
# ---------------------------------------------------------------------------

_T_NONE = b"\x00"
_T_INT = b"\x01"
_T_NEG = b"\x02"
_T_BOOL = b"\x03"
_T_STR = b"\x04"
_T_BYTES = b"\x05"
_T_LIST = b"\x06"
_T_DICT = b"\x07"


def _canon(value) -> list:
    if value is None:
        return [_T_NONE, b""]
    if isinstance(value, bool):
        return [_T_BOOL, b"\x01" if value else b""]
    if isinstance(value, int):
        if value < 0:
            return [_T_NEG, rlp.encode_int(-value)]
        return [_T_INT, rlp.encode_int(value)]
    if isinstance(value, str):
        return [_T_STR, value.encode("utf-8")]
    if isinstance(value, bytes):
        return [_T_BYTES, value]
    if isinstance(value, list):
        return [_T_LIST, [_canon(v) for v in value]]
    if isinstance(value, dict):
        pairs = sorted(
            ([_canon(k), _canon(v)] for k, v in value.items()),
            key=lambda pair: rlp.encode(pair[0]),
        )
        return [_T_DICT, pairs]
    raise EncodingError(f"cannot canonicalize {type(value).__name__}")


def _uncanon(node):
    tag, payload = node[0], node[1]
    if tag == _T_NONE:
        return None
    if tag == _T_BOOL:
        return bool(payload)
    if tag == _T_INT:
        return rlp.decode_int(payload)
    if tag == _T_NEG:
        return -rlp.decode_int(payload)
    if tag == _T_STR:
        return payload.decode("utf-8")
    if tag == _T_BYTES:
        return payload
    if tag == _T_LIST:
        return [_uncanon(v) for v in payload]
    if tag == _T_DICT:
        return {_uncanon(k): _uncanon(v) for k, v in payload}
    raise EncodingError(f"bad canonical tag {tag!r}")


def secret_to_bytes(secret: dict) -> bytes:
    """Deterministically serialize a secret tree."""
    return rlp.encode(_canon(secret))


def secret_from_bytes(data: bytes) -> dict:
    """Inverse of :func:`secret_to_bytes`."""
    value = _uncanon(rlp.decode(data))
    if not isinstance(value, dict):
        raise EncodingError("secret payload is not a tree")
    return value
