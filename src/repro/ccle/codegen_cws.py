'''CCLe → CWScript accessor codegen (the paper's "codegen tool").

Given a schema, emits CWScript helper functions that read encoded tables
directly from VM linear memory by offset arithmetic — no parsing.  This
is what lets the ABS contract switch from in-VM JSON parsing to
Flatbuffers-style field access (OPT2, Figure 12).

Generated names (all internal, prefixed with ``_``):

- scalars:  ``_<Table>_<field>(buf) -> i64``
- strings:  ``_<Table>_<field>_ptr(buf)`` / ``_<Table>_<field>_len(buf)``
- vectors:  ``_<Table>_<field>_count(buf)`` / ``_<Table>_<field>_at(buf, j)``
- maps:     the vector accessors plus
  ``_<Table>_<field>_lookup(buf, kptr, klen)`` (string key) or
  ``_<Table>_<field>_lookup_int(buf, key)`` (scalar key); both return a
  pointer to the element table, or 0 when absent.

Plus a shared ``_ccle_streq(ap, al, bp, bl) -> i64``.
'''

from __future__ import annotations

from repro.ccle.schema import SCALAR_SIZES, SIGNED_SCALARS, Field, Schema, Table
from repro.errors import SchemaError

_LOADS = {1: "load8", 2: "load16", 4: "load32", 8: "load64"}

_STREQ = """
fn _ccle_streq(ap, al, bp, bl) -> i64 {
    if (al != bl) { return 0; }
    let i = 0;
    while (i < al) {
        if (load8(ap + i) != load8(bp + i)) { return 0; }
        i = i + 1;
    }
    return 1;
}
"""


def _offset_expr(index: int) -> str:
    return f"load32(buf + {2 + 4 * index})"


def _scalar_accessor(table: Table, fld: Field, index: int) -> str:
    size = SCALAR_SIZES[fld.type.name]
    load = _LOADS[size]
    lines = [
        f"fn _{table.name}_{fld.name}(buf) -> i64 {{",
        f"    let off = {_offset_expr(index)};",
        "    if (off == 0) { return 0; }",
        f"    let v = {load}(buf + off);",
    ]
    if fld.type.name in SIGNED_SCALARS:
        bits = size * 8
        lines.append(f"    if (v >= {1 << (bits - 1)}) {{ v = v - {1 << bits}; }}")
    lines.append("    return v;")
    lines.append("}")
    return "\n".join(lines)


def _string_accessors(table: Table, fld: Field, index: int) -> str:
    return f"""
fn _{table.name}_{fld.name}_ptr(buf) -> i64 {{
    let off = {_offset_expr(index)};
    if (off == 0) {{ return 0; }}
    return buf + off + 4;
}}
fn _{table.name}_{fld.name}_len(buf) -> i64 {{
    let off = {_offset_expr(index)};
    if (off == 0) {{ return 0; }}
    return load32(buf + off);
}}
"""


def _vector_accessors(table: Table, fld: Field, index: int) -> str:
    return f"""
fn _{table.name}_{fld.name}_count(buf) -> i64 {{
    let off = {_offset_expr(index)};
    if (off == 0) {{ return 0; }}
    return load32(buf + off);
}}
fn _{table.name}_{fld.name}_at(buf, j) -> i64 {{
    let off = {_offset_expr(index)};
    let rel = load32(buf + off + 4 + 4 * j);
    return buf + off + rel;
}}
"""


def _map_lookup(schema: Schema, table: Table, fld: Field, index: int) -> str:
    element = schema.tables[fld.type.name]
    key = element.fields[0]
    key_off = "load32(e + 2)"  # key is field 0 of the element table
    if key.type.is_string:
        return f"""
fn _{table.name}_{fld.name}_lookup(buf, kptr, klen) -> i64 {{
    let n = _{table.name}_{fld.name}_count(buf);
    let j = 0;
    while (j < n) {{
        let e = _{table.name}_{fld.name}_at(buf, j);
        let ko = {key_off};
        if (_ccle_streq(e + ko + 4, load32(e + ko), kptr, klen)) {{
            return e;
        }}
        j = j + 1;
    }}
    return 0;
}}
"""
    if key.type.is_scalar:
        return f"""
fn _{table.name}_{fld.name}_lookup_int(buf, key) -> i64 {{
    let n = _{table.name}_{fld.name}_count(buf);
    let j = 0;
    while (j < n) {{
        let e = _{table.name}_{fld.name}_at(buf, j);
        if (_{element.name}_{key.name}(e) == key) {{
            return e;
        }}
        j = j + 1;
    }}
    return 0;
}}
"""
    raise SchemaError(f"map key of '{table.name}.{fld.name}' is not lookup-able")


def generate_accessors(schema: Schema) -> str:
    """Emit the full CWScript accessor source for a schema."""
    parts = [_STREQ]
    for table in schema.tables.values():
        for index, fld in enumerate(table.fields):
            if fld.type.is_scalar:
                parts.append(_scalar_accessor(table, fld, index))
            elif fld.type.is_string:
                parts.append(_string_accessors(table, fld, index))
            else:
                parts.append(_vector_accessors(table, fld, index))
                if fld.is_map:
                    parts.append(_map_lookup(schema, table, fld, index))
    return "\n".join(parts) + "\n"
