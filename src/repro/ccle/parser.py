"""CCLe IDL parser.

Accepts the paper's Listing 1 syntax::

    attribute "map";
    attribute "confidential";

    table Demo {
      owner: string;
      admin: [Administrator];
      account_map: [Account](map);
    }
    table Account {
      user_id: string;
      organization: string(confidential);
      asset_map: [Asset](map, confidential);
    }
    root_type Demo;
"""

from __future__ import annotations

import re

from repro.ccle.schema import Field, FieldType, Schema, Table
from repro.errors import SchemaError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<str>"[^"]*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[{}\[\]():,;])
    """,
    re.VERBOSE,
)


def _tokenize(source: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise SchemaError(f"unexpected character {source[pos]!r} at offset {pos}")
        pos = match.end()
        if match.lastgroup != "ws":
            tokens.append(match.group())
    return tokens


class _Parser:
    def __init__(self, source: str):
        self._tokens = _tokenize(source)
        self._i = 0

    def _peek(self) -> str | None:
        return self._tokens[self._i] if self._i < len(self._tokens) else None

    def _eat(self) -> str:
        if self._i >= len(self._tokens):
            raise SchemaError("unexpected end of schema")
        token = self._tokens[self._i]
        self._i += 1
        return token

    def _expect(self, want: str) -> str:
        token = self._eat()
        if token != want:
            raise SchemaError(f"expected {want!r}, found {token!r}")
        return token

    def parse(self) -> Schema:
        schema = Schema()
        while (token := self._peek()) is not None:
            if token == "attribute":
                self._eat()
                name = self._eat()
                if not (name.startswith('"') and name.endswith('"')):
                    raise SchemaError("attribute name must be a string literal")
                schema.attributes.add(name[1:-1])
                self._expect(";")
            elif token == "table":
                table = self._table()
                if table.name in schema.tables:
                    raise SchemaError(f"duplicate table '{table.name}'")
                schema.tables[table.name] = table
            elif token == "root_type":
                self._eat()
                schema.root_type = self._eat()
                self._expect(";")
            else:
                raise SchemaError(f"unexpected token {token!r} at top level")
        schema.validate()
        return schema

    def _table(self) -> Table:
        self._expect("table")
        name = self._eat()
        self._expect("{")
        table = Table(name)
        while self._peek() != "}":
            table.fields.append(self._field())
        self._expect("}")
        return table

    def _field(self) -> Field:
        name = self._eat()
        self._expect(":")
        if self._peek() == "[":
            self._eat()
            element = self._eat()
            self._expect("]")
            ftype = FieldType(element, is_vector=True)
        else:
            ftype = FieldType(self._eat())
        confidential = False
        is_map = False
        role = ""
        if self._peek() == "(":
            self._eat()
            while True:
                attr = self._eat()
                if attr == "confidential":
                    confidential = True
                    # Access-control extension: confidential("role-name")
                    if self._peek() == "(":
                        self._eat()
                        tag = self._eat()
                        if not (tag.startswith('"') and tag.endswith('"')):
                            raise SchemaError(
                                "role tag must be a string literal"
                            )
                        role = tag[1:-1]
                        if not role:
                            raise SchemaError("role tag must not be empty")
                        self._expect(")")
                elif attr == "map":
                    is_map = True
                else:
                    raise SchemaError(f"unknown field attribute '{attr}'")
                if self._peek() == ",":
                    self._eat()
                    continue
                break
            self._expect(")")
        self._expect(";")
        return Field(
            name, ftype, confidential=confidential, is_map=is_map, role=role
        )


def parse_schema(source: str) -> Schema:
    """Parse and validate CCLe IDL source."""
    return _Parser(source).parse()
