"""CCLe schema model (paper §4).

CCLe is an IDL extension in the spirit of Flatbuffers, adding two
attributes:

- ``confidential`` — the field (and, for composites, everything under
  it) is encrypted by the D-Protocol; public fields stay plaintext so
  third-party auditors can read them without keys.
- ``map`` — a keyed collection of tables; the element table's first
  field is the key (the paper's ``account:asset`` model).

The model here is what the parser produces and everything else (codec,
codegen, confidential partitioning) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError

SCALAR_SIZES: dict[str, int] = {
    "bool": 1,
    "byte": 1,
    "ubyte": 1,
    "short": 2,
    "ushort": 2,
    "int": 4,
    "uint": 4,
    "long": 8,
    "ulong": 8,
}

SIGNED_SCALARS = frozenset({"byte", "short", "int", "long"})

#: types encoded inline with a fixed size
SCALARS = frozenset(SCALAR_SIZES)


@dataclass(frozen=True)
class FieldType:
    """Either a scalar/string, or a vector of some table."""

    name: str  # scalar name, 'string', or the element table name
    is_vector: bool = False

    @property
    def is_scalar(self) -> bool:
        return not self.is_vector and self.name in SCALARS

    @property
    def is_string(self) -> bool:
        return not self.is_vector and self.name == "string"


#: role tag for fields that are confidential but not role-scoped
DEFAULT_ROLE = ""


@dataclass(frozen=True)
class Field:
    name: str
    type: FieldType
    confidential: bool = False
    is_map: bool = False
    # Access-control extension (paper §4: "CCLe can be further extended
    # to support more attributes easily, such as data access control"):
    # a confidential field may carry a role tag — `confidential("risk")`
    # — and is then sealed under a role-derived subkey, so the engine
    # can release one role's data without exposing the rest.
    role: str = DEFAULT_ROLE


@dataclass
class Table:
    name: str
    fields: list[Field] = field(default_factory=list)

    def field_index(self, name: str) -> int:
        for i, fld in enumerate(self.fields):
            if fld.name == name:
                return i
        raise SchemaError(f"table '{self.name}' has no field '{name}'")

    def field_named(self, name: str) -> Field:
        return self.fields[self.field_index(name)]


@dataclass
class Schema:
    attributes: set[str] = field(default_factory=set)
    tables: dict[str, Table] = field(default_factory=dict)
    root_type: str = ""

    @property
    def root(self) -> Table:
        return self.tables[self.root_type]

    def validate(self) -> None:
        """Check referential integrity, map rules, and acyclicity."""
        if not self.root_type:
            raise SchemaError("schema declares no root_type")
        if self.root_type not in self.tables:
            raise SchemaError(f"root_type '{self.root_type}' is not a table")
        for table in self.tables.values():
            names = [f.name for f in table.fields]
            if len(set(names)) != len(names):
                raise SchemaError(f"duplicate field name in table '{table.name}'")
            for fld in table.fields:
                if fld.type.is_vector:
                    if fld.type.name not in self.tables:
                        raise SchemaError(
                            f"{table.name}.{fld.name}: unknown element table "
                            f"'{fld.type.name}'"
                        )
                elif not (fld.type.is_scalar or fld.type.is_string):
                    raise SchemaError(
                        f"{table.name}.{fld.name}: unknown type '{fld.type.name}'"
                    )
                if fld.is_map:
                    if not fld.type.is_vector:
                        raise SchemaError(
                            f"{table.name}.{fld.name}: 'map' requires a table vector"
                        )
                    element = self.tables[fld.type.name]
                    if not element.fields:
                        raise SchemaError(
                            f"{table.name}.{fld.name}: map element table is empty"
                        )
                    key = element.fields[0]
                    if not (key.type.is_scalar or key.type.is_string):
                        raise SchemaError(
                            f"{table.name}.{fld.name}: map key "
                            f"({element.name}.{key.name}) must be scalar or string"
                        )
                if fld.confidential and "confidential" not in self.attributes:
                    raise SchemaError(
                        "attribute \"confidential\" used but not declared"
                    )
                if fld.role and not fld.confidential:
                    raise SchemaError(
                        f"{table.name}.{fld.name}: a role tag requires "
                        "the confidential attribute"
                    )
                if fld.is_map and "map" not in self.attributes:
                    raise SchemaError('attribute "map" used but not declared')
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self.tables}

        def visit(name: str) -> None:
            color[name] = GRAY
            for fld in self.tables[name].fields:
                if fld.type.is_vector:
                    child = fld.type.name
                    if color[child] == GRAY:
                        raise SchemaError(
                            f"recursive table nesting via '{name}' -> '{child}'"
                        )
                    if color[child] == WHITE:
                        visit(child)
            color[name] = BLACK

        for name in self.tables:
            if color[name] == WHITE:
                visit(name)

    def roles(self) -> set[str]:
        """All role tags used by confidential fields (excluding the
        default unscoped tag)."""
        found: set[str] = set()
        for table in self.tables.values():
            for fld in table.fields:
                if fld.role:
                    found.add(fld.role)
        return found

    def confidential_paths(self) -> list[tuple[str, ...]]:
        """All (table-path rooted at root_type) field paths marked
        confidential, e.g. ``('account_map', 'organization')``."""
        paths: list[tuple[str, ...]] = []

        def walk(table: Table, prefix: tuple[str, ...]) -> None:
            for fld in table.fields:
                path = prefix + (fld.name,)
                if fld.confidential:
                    paths.append(path)
                elif fld.type.is_vector:
                    walk(self.tables[fld.type.name], path)

        walk(self.root, ())
        return paths
