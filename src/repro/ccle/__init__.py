"""CCLe — the Confidential smart Contract Language extension (paper §4)."""

from repro.ccle.codec import decode, decode_table, encode, encode_table
from repro.ccle.codegen_cws import generate_accessors
from repro.ccle.codegen_py import generate_views, root_view
from repro.ccle.confidential import (
    merge,
    secret_from_bytes,
    secret_to_bytes,
    split,
    split_by_role,
)
from repro.ccle.parser import parse_schema
from repro.ccle.schema import Field, FieldType, Schema, Table

__all__ = [
    "Field",
    "FieldType",
    "Schema",
    "Table",
    "decode",
    "decode_table",
    "encode",
    "encode_table",
    "generate_accessors",
    "generate_views",
    "merge",
    "parse_schema",
    "root_view",
    "secret_from_bytes",
    "secret_to_bytes",
    "split",
    "split_by_role",
]
