"""CCLe → Python accessor codegen.

Generates lightweight view classes over an encoded buffer: field reads
are lazy offset lookups, mirroring what the CWScript accessors do inside
the VM.  Useful for clients inspecting the public part of contract state
without fully decoding it.
"""

from __future__ import annotations

import struct

from repro.ccle.schema import SCALAR_SIZES, SIGNED_SCALARS, Field, Schema, Table
from repro.errors import EncodingError

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")


class TableView:
    """Lazy read-only view of one encoded table."""

    _schema: Schema
    _table: Table

    def __init__(self, data: bytes, base: int = 0):
        self._data = data
        self._base = base
        (nfields,) = _U16.unpack_from(data, base)
        if nfields != len(self._table.fields):
            raise EncodingError(
                f"field count mismatch for '{self._table.name}'"
            )

    def _field_offset(self, index: int) -> int:
        (off,) = _U32.unpack_from(self._data, self._base + 2 + 4 * index)
        return off

    def _read(self, index: int):
        fld = self._table.fields[index]
        off = self._field_offset(index)
        if off == 0:
            if fld.type.is_scalar:
                return False if fld.type.name == "bool" else 0
            if fld.type.is_string:
                return ""
            return MapView(self, fld, 0, empty=True) if fld.is_map else []
        pos = self._base + off
        data = self._data
        if fld.type.is_scalar:
            size = SCALAR_SIZES[fld.type.name]
            value = int.from_bytes(
                data[pos : pos + size], "big", signed=fld.type.name in SIGNED_SCALARS
            )
            return bool(value) if fld.type.name == "bool" else value
        if fld.type.is_string:
            (length,) = _U32.unpack_from(data, pos)
            raw = data[pos + 4 : pos + 4 + length]
            try:
                return raw.decode("utf-8")
            except UnicodeDecodeError:
                return raw
        view_cls = _view_class(self._schema, self._schema.tables[fld.type.name])
        (count,) = _U32.unpack_from(data, pos)
        elements = []
        for j in range(count):
            (rel,) = _U32.unpack_from(data, pos + 4 + 4 * j)
            elements.append(view_cls(data, pos + rel))
        if fld.is_map:
            return MapView(self, fld, pos, elements=elements)
        return elements


class MapView:
    """Keyed access over a map field's elements (linear scan, like the
    in-VM lookup accessor)."""

    def __init__(self, parent: TableView, fld: Field, pos: int, elements=None, empty=False):
        self._fld = fld
        schema = parent._schema
        self._key_name = schema.tables[fld.type.name].fields[0].name
        self._elements = [] if empty else (elements or [])

    def __len__(self) -> int:
        return len(self._elements)

    def keys(self):
        return [getattr(e, self._key_name) for e in self._elements]

    def __getitem__(self, key):
        for element in self._elements:
            if getattr(element, self._key_name) == key:
                return element
        raise KeyError(key)

    def __contains__(self, key) -> bool:
        return any(getattr(e, self._key_name) == key for e in self._elements)

    def __iter__(self):
        return iter(self.keys())


_CACHE: dict[tuple[int, str], type] = {}


def _view_class(schema: Schema, table: Table) -> type:
    cache_key = (id(schema), table.name)
    cached = _CACHE.get(cache_key)
    if cached is not None:
        return cached

    namespace: dict = {"_schema": schema, "_table": table}
    for index, fld in enumerate(table.fields):
        namespace[fld.name] = property(
            lambda self, _i=index: self._read(_i),
            doc=f"{table.name}.{fld.name} ({fld.type.name})",
        )
    cls = type(f"{table.name}View", (TableView,), namespace)
    _CACHE[cache_key] = cls
    return cls


def generate_views(schema: Schema) -> dict[str, type]:
    """Return a {table_name: ViewClass} mapping for a schema."""
    return {name: _view_class(schema, table) for name, table in schema.tables.items()}


def root_view(schema: Schema, data: bytes) -> TableView:
    """A view over an encoded root-table value."""
    return _view_class(schema, schema.root)(data, 0)
