"""Closed-loop block production driver.

§6.4 describes the production ABS service: "transactions are submitted
in batch by the application into the blockchain network. The time
duration of blocks execution is about 30 ms on average. Periodically,
empty blocks are generated continuously with about 5ms duration."

This driver reproduces that operating mode over simulated time: clients
inject transactions at a configurable rate, the leader cuts a block
every ``block_interval_s`` (empty if the pool is dry), pre-verification
runs pipelined ahead of consensus (modeled k-way parallel, §5.2), the
ordering round comes from the PBFT model, and execution/commit costs are
*measured* on a real node.  The result is a per-block trace plus
latency/throughput summaries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.chain.consensus import PBFTOrderer
from repro.chain.node import Node
from repro.chain.transaction import Transaction
from repro.errors import ChainError
from repro.obs.trace import get_tracer


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile over an unsorted sample (0 when empty).

    Shared by the driver report and the serving load generator so the
    p50/p95/p99 columns in BENCH_chain.json and BENCH_serving.json mean
    the same thing.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(int(q * len(ordered)), len(ordered) - 1)
    return ordered[index]


@dataclass(frozen=True)
class FaultWindow:
    """Nodes crashed during [start_s, end_s) of simulated time."""

    start_s: float
    end_s: float
    nodes: frozenset[int]

    def active_at(self, clock_s: float) -> bool:
        return self.start_s <= clock_s < self.end_s


@dataclass(frozen=True)
class BlockTrace:
    """One produced block in the simulation."""

    height: int
    num_txs: int
    block_bytes: int
    exec_s: float
    order_s: float
    write_s: float
    committed_at_s: float
    faulty_nodes: int = 0
    view_changed: bool = False

    @property
    def is_empty(self) -> bool:
        return self.num_txs == 0


@dataclass
class DriverReport:
    """Outcome of a closed-loop run."""

    blocks: list[BlockTrace] = field(default_factory=list)
    tx_latencies_s: list[float] = field(default_factory=list)
    duration_s: float = 0.0
    injected: int = 0
    committed: int = 0

    @property
    def tps(self) -> float:
        return self.committed / self.duration_s if self.duration_s else 0.0

    @property
    def empty_block_fraction(self) -> float:
        if not self.blocks:
            return 0.0
        return sum(1 for b in self.blocks if b.is_empty) / len(self.blocks)

    @property
    def mean_exec_ms(self) -> float:
        busy = [b.exec_s for b in self.blocks if not b.is_empty]
        return sum(busy) / len(busy) * 1000 if busy else 0.0

    @property
    def mean_empty_ms(self) -> float:
        empty = [b.exec_s + b.write_s for b in self.blocks if b.is_empty]
        return sum(empty) / len(empty) * 1000 if empty else 0.0

    def latency_percentile(self, q: float) -> float:
        return percentile(self.tx_latencies_s, q)


class ClosedLoopDriver:
    """Drives one node as the consortium's leader over simulated time.

    ``tx_source(i)`` builds the i-th injected transaction (already
    sealed/signed).  Execution and block-write are measured wall-clock on
    the node and fed back into the simulated clock; ordering latency
    comes from the PBFT model for the configured membership.
    """

    def __init__(
        self,
        node: Node,
        orderer: PBFTOrderer,
        tx_source,
        arrival_rate_per_s: float,
        block_interval_s: float = 0.030,
        max_block_bytes: int = 4096,
        preverify_lanes: int = 4,
        fault_windows: list[FaultWindow] | None = None,
    ):
        if arrival_rate_per_s < 0:
            raise ChainError("arrival rate must be non-negative")
        self.node = node
        self.orderer = orderer
        self.tx_source = tx_source
        self.arrival_rate = arrival_rate_per_s
        self.block_interval_s = block_interval_s
        self.max_block_bytes = max_block_bytes
        self.preverify_lanes = max(1, preverify_lanes)
        self.fault_windows = list(fault_windows or [])

    def _faulty_at(self, clock_s: float) -> frozenset[int]:
        faulty: set[int] = set()
        for window in self.fault_windows:
            if window.active_at(clock_s):
                faulty |= window.nodes
        return frozenset(faulty)

    def _order_block(self, block_bytes: int,
                     faulty: frozenset[int]) -> tuple[float, bool]:
        """Ordering latency for one block under the current fault set.

        Crash faults slow the round (quorums wait on farther replicas);
        a crashed *leader* additionally costs a view change, after which
        the next replica leads the round.  Returns (seconds, view_changed).
        """
        order_s = self.orderer.pipelined_block_interval(block_bytes)
        if not faulty:
            return order_s, False
        orderer = self.orderer
        extra_s = 0.0
        view_changed = False
        if orderer.leader in faulty:
            view_changed = True
            extra_s = orderer.view_change_latency()
            orderer = PBFTOrderer(
                orderer.zones, orderer.model,
                leader=(orderer.leader + 1) % orderer.n,
            )
            if orderer.leader in faulty:
                raise ChainError("consecutive leaders faulty; no liveness")
        round_report = orderer.round_latency(block_bytes, faulty)
        return max(order_s, round_report.total_s) + extra_s, view_changed

    def run(self, sim_seconds: float) -> DriverReport:
        report = DriverReport(duration_s=sim_seconds)
        arrivals: list[tuple[float, Transaction]] = []
        if self.arrival_rate > 0:
            interval = 1.0 / self.arrival_rate
            t = 0.0
            index = 0
            while t < sim_seconds:
                tx = self.tx_source(index)
                if tx is None:
                    break
                arrivals.append((t, tx))
                index += 1
                t += interval
        report.injected = len(arrivals)

        arrival_times: dict[bytes, float] = {}
        next_arrival = 0
        clock = 0.0
        while clock < sim_seconds:
            # Deliver everything that arrived before this block slot.
            delivered = False
            while next_arrival < len(arrivals) and arrivals[next_arrival][0] <= clock:
                arrived_at, tx = arrivals[next_arrival]
                self.node.receive_transaction(tx)
                arrival_times[tx.tx_hash] = arrived_at
                next_arrival += 1
                delivered = True
            if delivered:
                # Pre-verification happens in the pipeline gap before
                # ordering (off the critical path, exactly the point of
                # §5.2; fans out when the node has a worker pool).  Only
                # transactions that actually pass reach the verified pool
                # — a failed verdict must not smuggle a bad transaction
                # into a block.
                self.node.preverify_pending()

            batch = self.node.draft_block(max_bytes=self.max_block_bytes)
            faulty = self._faulty_at(clock)
            with get_tracer().span("chain.block", num_txs=len(batch)) as span:
                started = time.perf_counter()
                applied = self.node.apply_transactions(batch)
                _ = time.perf_counter() - started
                order_s, view_changed = self._order_block(
                    applied.block.byte_size, faulty
                )
                span.set("height", applied.block.header.height)
                span.set("block_bytes", applied.block.byte_size)
                span.set("order_s", order_s)
            exec_s = applied.exec_seconds
            write_s = applied.write_seconds
            commit_time = clock + max(exec_s, order_s) + write_s
            report.blocks.append(
                BlockTrace(
                    height=applied.block.header.height,
                    num_txs=len(batch),
                    block_bytes=applied.block.byte_size,
                    exec_s=exec_s,
                    order_s=order_s,
                    write_s=write_s,
                    committed_at_s=commit_time,
                    faulty_nodes=len(faulty),
                    view_changed=view_changed,
                )
            )
            for tx in batch:
                report.committed += 1
                arrived_at = arrival_times.pop(tx.tx_hash, clock)
                report.tx_latencies_s.append(commit_time - arrived_at)
            # Next slot: blocks are cut on the interval, or immediately
            # after a slow block finishes.
            clock += max(self.block_interval_s, exec_s + write_s)
        return report
