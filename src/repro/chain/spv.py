"""Consensus reads (SPV-style verification, paper §3.3).

"The correctness of a query from a single node is not guaranteed since a
malicious host can hack the storage or the code of the platform ...
Therefore, to query blockchain data from other nodes, a consensus read
(e.g. SPV) should be performed."

Two pieces implement that:

- :func:`consensus_header` — fetch the header at a height from every
  node and require a 2f+1 quorum on the block hash (a single lying node
  cannot forge history);
- receipt inclusion proofs — a node hands out
  ``(receipt blob, merkle proof)``; the client verifies against the
  quorum-agreed header's receipts root.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.block import BlockHeader
from repro.chain.node import Node
from repro.errors import ChainError
from repro.storage.merkle import MerkleProof, MerkleTree, verify_proof


@dataclass(frozen=True)
class ReceiptProof:
    height: int
    receipt_blob: bytes
    proof: MerkleProof


def consensus_header(nodes: list[Node], height: int) -> BlockHeader:
    """Header at `height` agreed by a 2f+1 quorum of the nodes."""
    n = len(nodes)
    f = (n - 1) // 3
    quorum = 2 * f + 1
    votes: dict[bytes, list[BlockHeader]] = {}
    for node in nodes:
        try:
            header = node.header_at(height)
        except ChainError:
            continue
        votes.setdefault(header.block_hash, []).append(header)
    if not votes:
        raise ChainError(f"no node has a block at height {height}")
    best_hash, headers = max(votes.items(), key=lambda kv: len(kv[1]))
    if len(headers) < quorum:
        raise ChainError(
            f"no quorum on header at height {height}: "
            f"best {len(headers)} < {quorum}"
        )
    return headers[0]


def prove_receipt(node: Node, tx_hash: bytes) -> ReceiptProof:
    """Build an inclusion proof for a transaction's receipt."""
    for height in range(node.height, 0, -1):
        block = node.chain[height - 1]
        for index, tx in enumerate(block.transactions):
            if tx.tx_hash == tx_hash:
                blobs = node.receipt_blobs_at(height)
                tree = MerkleTree(blobs)
                return ReceiptProof(height, blobs[index], tree.prove(index))
    raise ChainError(f"transaction {tx_hash.hex()} not found on chain")


def verify_receipt(header: BlockHeader, receipt_proof: ReceiptProof) -> bool:
    """Check a receipt proof against a (quorum-agreed) header."""
    return verify_proof(
        header.receipts_root, receipt_proof.receipt_blob, receipt_proof.proof
    )


def consensus_read_receipt(
    nodes: list[Node], source: Node, tx_hash: bytes
) -> bytes:
    """Fetch a receipt from one (untrusted) node, verified against the
    quorum of all nodes.  Returns the receipt blob (sealed when the
    transaction was confidential)."""
    proof = prove_receipt(source, tx_hash)
    header = consensus_header(nodes, proof.height)
    if not verify_receipt(header, proof):
        raise ChainError("receipt proof failed verification against quorum header")
    return proof.receipt_blob
