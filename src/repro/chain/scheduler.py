"""Dependency-aware transaction scheduling for parallel block execution.

The block executor used to *model* parallelism (``lane_schedule`` computes
a makespan from per-transaction durations) while executing strictly
serially.  This module plans **real** concurrent execution:

- Each transaction gets a *conflict domain* — what it is known to touch
  up front that OCC validation cannot repair: its sender's nonce row.
  (State-key conflicts, including two transactions hitting the same
  contract, are caught after the fact by read-set validation and fixed
  by re-execution; a nonce-on-nonce dependency is different — replay
  protection must observe the earlier bump *before* executing, so two
  transactions from one sender never share a wave.)  For public
  transactions the domain comes straight from the raw encoding; for
  confidential ones it comes from the pre-verification metadata cache
  (the §5.2 pre-processor recovers sender/contract while decrypting,
  off the critical path).

- Transactions are grouped into contiguous *waves*.  A wave extends
  while the next transaction's domain is disjoint from every domain
  already in the wave; the first collision closes it.  Waves stay
  contiguous in block order so the in-order commit that follows is a
  simple prefix walk.

- Deploys, upgrades, and transactions with no known profile are
  *barriers*: they run alone between waves.  Deploys/upgrades mutate the
  shared code registry; an unknown profile means we cannot bound what
  the transaction touches.

Domains deliberately ignore state: wave-mates can and do collide on
actual storage keys (same contract, shared hot entries, cross-contract
calls).  The executor validates each speculative execution's *actual*
read set against the writes committed before it in the wave, and
re-executes against the committed prefix on overlap — so the waves only
need to make conflicts survivable, not impossible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.preprocessor import TxProfile


@dataclass(frozen=True)
class Wave:
    """A contiguous run of block positions executed concurrently."""

    indices: tuple[int, ...]
    barrier: bool = False


def domain_of(profile: TxProfile) -> frozenset[bytes]:
    """The dependencies OCC validation cannot repair: the sender's
    nonce row.  Everything else is left to read-set validation."""
    return frozenset((b"a:" + profile.sender,))


def build_waves(profiles: list[TxProfile | None]) -> list[Wave]:
    """Plan execution waves for a block's transactions (in block order).

    ``profiles[i]`` is the scheduler profile of the i-th transaction, or
    None when nothing is known about it (never preverified).
    """
    waves: list[Wave] = []
    current: list[int] = []
    occupied: set[bytes] = set()

    def close() -> None:
        nonlocal current, occupied
        if current:
            waves.append(Wave(tuple(current)))
            current = []
            occupied = set()

    for index, profile in enumerate(profiles):
        if profile is None or profile.is_barrier:
            close()
            waves.append(Wave((index,), barrier=True))
            continue
        domain = domain_of(profile)
        if occupied & domain:
            close()
        current.append(index)
        occupied |= domain
    close()
    return waves
