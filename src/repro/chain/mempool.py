"""Transaction pools (Figure 7).

Incoming transactions — valid or not — land in the *unverified pool*;
the pre-verification phase (parallelizable, §5.2) moves the valid ones
to the *verified pool*, from which the proposer drafts blocks.

The pool sits on the ingest hot path, so it never raises for expected
conditions: a full pool or an oversized transaction is a *drop*,
reported through the return value and surfaced as counters
(``confide_txpool_rejected_total`` / ``confide_txpool_oversized_total``
in the metrics registry).  All operations are thread-safe — the §5.2
pre-verification worker pool feeds the verified pool from callback
context while the proposer drafts from it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.chain.transaction import Transaction


class TxPool:
    """FIFO pool with hash-based deduplication."""

    def __init__(self, capacity: int = 100_000):
        self._txs: OrderedDict[bytes, Transaction] = OrderedDict()
        self._capacity = capacity
        self._lock = threading.Lock()
        # Cumulative counters (absorbed by repro.obs.collect).
        self.rejected_full = 0
        self.dropped_oversized = 0
        self.accepted_total = 0
        self.depth_peak = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def add(self, tx: Transaction) -> bool:
        """Insert; returns False when the tx is a duplicate or the pool
        is full.  A full pool is backpressure, not an error — callers on
        the ingest path must not pay for an exception per drop."""
        with self._lock:
            if tx.tx_hash in self._txs:
                return False
            if len(self._txs) >= self._capacity:
                self.rejected_full += 1
                return False
            self._txs[tx.tx_hash] = tx
            self.accepted_total += 1
            if len(self._txs) > self.depth_peak:
                self.depth_peak = len(self._txs)
            return True

    def pop_batch(self, max_count: int | None = None,
                  max_bytes: int | None = None) -> list[Transaction]:
        """Remove and return the oldest transactions, bounded by count
        and/or total encoded size (the paper's 4 KB block budget).

        A transaction whose encoded size alone exceeds ``max_bytes`` can
        never be drafted within the budget; it is dropped from the pool
        (counted in :attr:`dropped_oversized`) rather than admitted over
        budget or left to clog the queue head forever.
        """
        batch: list[Transaction] = []
        size = 0
        with self._lock:
            while self._txs:
                if max_count is not None and len(batch) >= max_count:
                    break
                tx_hash, tx = next(iter(self._txs.items()))
                tx_size = tx.wire_size
                if max_bytes is not None and tx_size > max_bytes:
                    del self._txs[tx_hash]
                    self.dropped_oversized += 1
                    continue
                if max_bytes is not None and size + tx_size > max_bytes:
                    break
                del self._txs[tx_hash]
                batch.append(tx)
                size += tx_size
        return batch

    def remove(self, tx_hash: bytes) -> None:
        with self._lock:
            self._txs.pop(tx_hash, None)

    def __len__(self) -> int:
        # Reading the OrderedDict while add/pop_batch mutate it can blow
        # up with "dictionary changed size during iteration" under free
        # concurrency — size/membership take the lock like every writer.
        with self._lock:
            return len(self._txs)

    def __contains__(self, tx_hash: bytes) -> bool:
        with self._lock:
            return tx_hash in self._txs
