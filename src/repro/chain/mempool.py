"""Transaction pools (Figure 7).

Incoming transactions — valid or not — land in the *unverified pool*;
the pre-verification phase (parallelizable, §5.2) moves the valid ones
to the *verified pool*, from which the proposer drafts blocks.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.chain.transaction import Transaction
from repro.errors import ChainError


class TxPool:
    """FIFO pool with hash-based deduplication."""

    def __init__(self, capacity: int = 100_000):
        self._txs: OrderedDict[bytes, Transaction] = OrderedDict()
        self._capacity = capacity

    def add(self, tx: Transaction) -> bool:
        """Insert; returns False when the tx is a duplicate."""
        if tx.tx_hash in self._txs:
            return False
        if len(self._txs) >= self._capacity:
            raise ChainError("transaction pool full")
        self._txs[tx.tx_hash] = tx
        return True

    def pop_batch(self, max_count: int | None = None,
                  max_bytes: int | None = None) -> list[Transaction]:
        """Remove and return the oldest transactions, bounded by count
        and/or total encoded size (the paper's 4 KB block budget)."""
        batch: list[Transaction] = []
        size = 0
        while self._txs:
            if max_count is not None and len(batch) >= max_count:
                break
            tx_hash, tx = next(iter(self._txs.items()))
            tx_size = len(tx.encode())
            if max_bytes is not None and batch and size + tx_size > max_bytes:
                break
            del self._txs[tx_hash]
            batch.append(tx)
            size += tx_size
        return batch

    def remove(self, tx_hash: bytes) -> None:
        self._txs.pop(tx_hash, None)

    def __len__(self) -> int:
        return len(self._txs)

    def __contains__(self, tx_hash: bytes) -> bool:
        return tx_hash in self._txs
