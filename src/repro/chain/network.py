"""Network latency/bandwidth model for the consensus simulator.

Reproduces the two deployment shapes of §6.2:

- a single zone (one VPC): sub-millisecond latency, 10 Gbit/s links;
- two zones (Shanghai/Beijing over public internet): tens of
  milliseconds of latency and far less bandwidth between zones.

Per-node uplinks serialize: a node broadcasting to n-1 peers queues the
messages on its uplink, which is what makes all-to-all PBFT phases
degrade with node count across a thin inter-zone pipe.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Pairwise latency + per-link bandwidth, by zone membership."""

    intra_zone_latency_s: float = 0.0005
    inter_zone_latency_s: float = 0.030
    intra_zone_bandwidth_bps: float = 10e9
    # Public-internet pipe between the two cities; *shared* by all
    # cross-zone traffic (see PBFTOrderer.pipelined_block_interval).
    inter_zone_bandwidth_bps: float = 20e6

    def latency(self, zone_a: int, zone_b: int) -> float:
        if zone_a == zone_b:
            return self.intra_zone_latency_s
        return self.inter_zone_latency_s

    def transfer_time(self, zone_a: int, zone_b: int, num_bytes: int) -> float:
        bandwidth = (
            self.intra_zone_bandwidth_bps
            if zone_a == zone_b
            else self.inter_zone_bandwidth_bps
        )
        return num_bytes * 8.0 / bandwidth

    def delivery_time(self, zone_a: int, zone_b: int, num_bytes: int) -> float:
        return self.latency(zone_a, zone_b) + self.transfer_time(zone_a, zone_b, num_bytes)


SINGLE_ZONE = NetworkModel()


def zones_for(num_nodes: int, num_zones: int, ratio: tuple[int, ...] = (1, 2)) -> list[int]:
    """Assign nodes to zones.

    For two zones the paper uses a 1:2 split between the city groups;
    `ratio` generalizes that.  When ``num_zones`` exceeds the ratio's
    length, the missing zones get weight 1, so every zone is populated
    (as long as there are at least as many nodes as zones).
    """
    if num_zones <= 1:
        return [0] * num_nodes
    ratio = (tuple(ratio) + (1,) * num_zones)[:num_zones]
    total = sum(ratio)
    counts = [num_nodes * r // total for r in ratio]
    while sum(counts) < num_nodes:
        counts[counts.index(min(counts))] += 1
    zones: list[int] = []
    for zone, count in enumerate(counts):
        zones.extend([zone] * count)
    return zones[:num_nodes]
