"""Transactions: public (TYPE=0) and confidential (TYPE=1).

A raw transaction carries account information (sender, target contract)
and transaction information (method + argument blob), is signed by the
sender, and is RLP-encoded on the wire (paper §2.1).

A *confidential* transaction is the T-Protocol envelope around the raw
encoding: the network, the orderer, and the storage only ever see
``TYPE=1 | envelope-hash | ciphertext``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property

from repro.crypto import ecdsa
from repro.crypto.ecc import decode_point
from repro.crypto.hashes import sha256
from repro.crypto.keys import KeyPair
from repro.errors import ChainError
from repro.storage import rlp

TX_PUBLIC = 0
TX_CONFIDENTIAL = 1

ADDRESS_SIZE = 20

DEPLOY_METHOD = "__deploy__"
UPGRADE_METHOD = "__upgrade__"


def address_of(public_key_bytes: bytes) -> bytes:
    """Account address: trailing 20 bytes of sha256(compressed pubkey)."""
    return sha256(public_key_bytes)[-ADDRESS_SIZE:]


def contract_address(sender: bytes, nonce: int) -> bytes:
    """Deterministic address for a deployed contract."""
    return sha256(b"contract:" + sender + rlp.encode_int(nonce))[-ADDRESS_SIZE:]


@dataclass(frozen=True)
class RawTransaction:
    """The plaintext transaction (inside the envelope when confidential)."""

    sender: bytes
    contract: bytes
    method: str
    args: bytes
    nonce: int
    pubkey: bytes = b""
    signature: bytes = b""

    def signing_payload(self) -> bytes:
        return rlp.encode(
            [
                self.sender,
                self.contract,
                self.method.encode(),
                self.args,
                rlp.encode_int(self.nonce),
                self.pubkey,
            ]
        )

    def encode(self) -> bytes:
        return rlp.encode(
            [
                self.sender,
                self.contract,
                self.method.encode(),
                self.args,
                rlp.encode_int(self.nonce),
                self.pubkey,
                self.signature,
            ]
        )

    @classmethod
    def decode(cls, data: bytes) -> "RawTransaction":
        items = rlp.decode(data)
        if not isinstance(items, list) or len(items) != 7:
            raise ChainError("malformed raw transaction")
        return cls(
            sender=items[0],
            contract=items[1],
            method=items[2].decode(),
            args=items[3],
            nonce=rlp.decode_int(items[4]),
            pubkey=items[5],
            signature=items[6],
        )

    @property
    def tx_hash(self) -> bytes:
        return sha256(self.encode())

    def signed_by(self, keypair: KeyPair) -> "RawTransaction":
        """Return a copy signed with `keypair` (sets pubkey + signature)."""
        pubkey = keypair.public_bytes()
        unsigned = replace(self, pubkey=pubkey, signature=b"")
        signature = ecdsa.sign(keypair.private, unsigned.signing_payload())
        return replace(unsigned, signature=signature.encode())

    def verify_signature(self) -> bool:
        """Check the ECDSA signature and sender/pubkey binding."""
        if len(self.signature) != 64 or not self.pubkey:
            return False
        if address_of(self.pubkey) != self.sender:
            return False
        try:
            point = decode_point(self.pubkey)
            signature = ecdsa.Signature.decode(self.signature)
        except Exception:
            return False
        return ecdsa.verify(point, self.signing_payload(), signature)

    @property
    def is_deploy(self) -> bool:
        return self.method == DEPLOY_METHOD

    @property
    def is_upgrade(self) -> bool:
        return self.method == UPGRADE_METHOD


@dataclass(frozen=True)
class Transaction:
    """The wire-level transaction the platform handles.

    ``payload`` is the raw RLP encoding for public transactions, or the
    T-Protocol envelope for confidential ones.  ``tx_hash`` identifies
    the transaction throughout ordering/execution; for confidential
    transactions it is the hash of the ciphertext envelope, so nothing
    about the content leaks.
    """

    tx_type: int
    payload: bytes

    @cached_property
    def tx_hash(self) -> bytes:
        return sha256(bytes([self.tx_type]) + self.payload)

    @property
    def is_confidential(self) -> bool:
        return self.tx_type == TX_CONFIDENTIAL

    def encode(self) -> bytes:
        return self._encoded

    @cached_property
    def _encoded(self) -> bytes:
        return rlp.encode([bytes([self.tx_type]), self.payload])

    @cached_property
    def wire_size(self) -> int:
        """Encoded size in bytes, computed once.  Block drafting sizes
        every pool-head candidate on every pass; caching keeps that from
        re-serializing the whole pool tail."""
        return len(self.encode())

    @classmethod
    def decode(cls, data: bytes) -> "Transaction":
        items = rlp.decode(data)
        if not isinstance(items, list) or len(items) != 2 or len(items[0]) != 1:
            raise ChainError("malformed transaction wrapper")
        return cls(tx_type=items[0][0], payload=items[1])

    @classmethod
    def public(cls, raw: RawTransaction) -> "Transaction":
        return cls(TX_PUBLIC, raw.encode())

    def raw(self) -> RawTransaction:
        """Decode the raw transaction (public transactions only)."""
        if self.is_confidential:
            raise ChainError("confidential payload requires the Confidential-Engine")
        return RawTransaction.decode(self.payload)


def deploy_args(
    code: bytes, vm: str, schema_source: str = "", source: str = ""
) -> bytes:
    """Argument blob for a deploy transaction.

    ``source`` optionally carries the CWScript source so deploy
    admission can run the confidentiality taint analysis (the bytecode
    verifier runs either way).  It is appended as a fourth RLP item only
    when present, keeping the three-item wire form byte-identical.
    """
    items = [code, vm.encode(), schema_source.encode()]
    if source:
        items.append(source.encode())
    return rlp.encode(items)


def parse_deploy_args(args: bytes) -> tuple[bytes, str, str, str]:
    """(code blob, vm, schema source, contract source or '')."""
    items = rlp.decode(args)
    if not isinstance(items, list) or len(items) not in (3, 4):
        raise ChainError("malformed deploy args")
    source = items[3].decode() if len(items) == 4 else ""
    return items[0], items[1].decode(), items[2].decode(), source
