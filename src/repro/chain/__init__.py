"""Consortium-blockchain substrate: transactions, blocks, pools,
consensus, nodes, parallel execution, and consensus reads.

`Node`/`BlockExecutor`/`spv` are imported lazily (PEP 562): they depend
on :mod:`repro.core`, which itself imports :mod:`repro.chain.transaction`,
and eager imports would create a cycle.
"""

from repro.chain.block import (
    GENESIS_HASH,
    Block,
    BlockHeader,
    receipts_merkle_root,
    tx_merkle_root,
)
from repro.chain.consensus import PBFTOrderer, RoundReport
from repro.chain.mempool import TxPool
from repro.chain.network import SINGLE_ZONE, NetworkModel, zones_for
from repro.chain.transaction import (
    ADDRESS_SIZE,
    DEPLOY_METHOD,
    TX_CONFIDENTIAL,
    TX_PUBLIC,
    RawTransaction,
    Transaction,
    address_of,
    contract_address,
    deploy_args,
    parse_deploy_args,
)

_LAZY = {
    "AppliedBlock": ("repro.chain.node", "AppliedBlock"),
    "BlockTrace": ("repro.chain.driver", "BlockTrace"),
    "ClosedLoopDriver": ("repro.chain.driver", "ClosedLoopDriver"),
    "Consortium": ("repro.chain.node", "Consortium"),
    "DriverReport": ("repro.chain.driver", "DriverReport"),
    "BlockExecutionReport": ("repro.chain.executor", "BlockExecutionReport"),
    "BlockExecutor": ("repro.chain.executor", "BlockExecutor"),
    "DEFAULT_BLOCK_BYTES": ("repro.chain.node", "DEFAULT_BLOCK_BYTES"),
    "Node": ("repro.chain.node", "Node"),
    "build_consortium": ("repro.chain.node", "build_consortium"),
    "lane_schedule": ("repro.chain.executor", "lane_schedule"),
    "spv": ("repro.chain.spv", None),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module 'repro.chain' has no attribute '{name}'")
    import importlib

    module = importlib.import_module(target[0])
    value = module if target[1] is None else getattr(module, target[1])
    globals()[name] = value
    return value


__all__ = [
    "ADDRESS_SIZE",
    "AppliedBlock",
    "Block",
    "BlockExecutionReport",
    "BlockExecutor",
    "BlockHeader",
    "DEFAULT_BLOCK_BYTES",
    "DEPLOY_METHOD",
    "GENESIS_HASH",
    "NetworkModel",
    "Node",
    "PBFTOrderer",
    "RawTransaction",
    "RoundReport",
    "SINGLE_ZONE",
    "TX_CONFIDENTIAL",
    "TX_PUBLIC",
    "Transaction",
    "TxPool",
    "address_of",
    "build_consortium",
    "contract_address",
    "deploy_args",
    "lane_schedule",
    "parse_deploy_args",
    "receipts_merkle_root",
    "spv",
    "tx_merkle_root",
    "zones_for",
]
