"""A full consortium-blockchain node, and consortium assembly helpers.

A node wires together everything below it: KV storage, the two execution
engines (the CONFIDE Confidential-Engine plugs in beside the platform's
Public-Engine, exactly the plugin architecture of Figure 2), transaction
pools, a block executor, and the chain itself.

:func:`build_consortium` stands up an n-node network: every platform is
registered with the attestation service and the protocol secrets are
agreed through the chosen K-Protocol mode (decentralized MAP by default,
centralized KMS optionally).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.chain.block import (
    GENESIS_HASH,
    Block,
    BlockHeader,
    receipts_merkle_root,
    tx_merkle_root,
)
from repro.chain.executor import BlockExecutionReport, BlockExecutor
from repro.chain.mempool import TxPool
from repro.chain.preverify_pool import PreverifyPool
from repro.chain.transaction import TX_CONFIDENTIAL, Transaction
from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.engine import ConfidentialEngine, PublicEngine
from repro.core.k_protocol import (
    CentralizedKMS,
    bootstrap_founder,
    mutual_attested_provision,
)
from repro.crypto.ecc import Point, decode_point
from repro.errors import ChainError
from repro.obs.trace import get_tracer
from repro.storage import rlp
from repro.storage.kv import AppendLogKV, KVStore, MemoryKV
from repro.storage.lsm import LsmKV, PlatformFreshness, StorageSealer
from repro.storage.merkle import state_root as compute_state_root
from repro.tee.attestation import AttestationService

DEFAULT_BLOCK_BYTES = 4096  # the paper's 4 KB block size (§6.1)

# Key prefixes that belong to replicated consensus state.  Everything
# else in the KV store is node-local (platform-sealed key backups,
# header cache, persisted block bodies, ...) and must not enter the
# state commitment.
CONSENSUS_PREFIXES = (b"s:", b"c:", b"n:")

_BLOCK_DATA_PREFIX = b"blkdata:"
_RECEIPTS_DATA_PREFIX = b"rcptdata:"
_SNAPSHOT_KEY = b"snap:latest"  # node-local; outside CONSENSUS_PREFIXES


def _height_key(prefix: bytes, height: int) -> bytes:
    return prefix + height.to_bytes(8, "big")


def make_store(config: EngineConfig, directory: str, platform=None) -> KVStore:
    """Build the KV store ``config.storage_backend`` names.

    Persistent backends live under ``directory``.  A sealed LSM store
    needs the node's platform: the seal key and the freshness counter
    are both anchored there (docs/storage.md).
    """
    backend = config.storage_backend
    if backend == "memory":
        return MemoryKV()
    os.makedirs(directory, exist_ok=True)
    if backend == "appendlog":
        return AppendLogKV(
            os.path.join(directory, "chain.log"), sync=config.storage_sync
        )
    if backend == "lsm":
        sealer = freshness = None
        if config.storage_sealed:
            if platform is None:
                raise ChainError(
                    "a sealed LSM store needs the node's platform"
                )
            sealer = StorageSealer.from_platform(platform)
            freshness = PlatformFreshness(platform)
        return LsmKV(
            directory, sealer=sealer, freshness=freshness,
            sync=config.storage_sync,
            memtable_bytes=config.storage_memtable_bytes,
        )
    raise ChainError(f"unknown storage backend '{backend}'")


def consensus_state(kv: KVStore) -> dict[bytes, bytes]:
    """The replicated portion of a node's KV store."""
    return {
        key: value
        for key, value in kv.items()
        if key.startswith(CONSENSUS_PREFIXES)
    }


@dataclass
class AppliedBlock:
    block: Block
    report: BlockExecutionReport
    exec_seconds: float
    write_seconds: float


@dataclass(frozen=True)
class Snapshot:
    """A persisted checkpoint of the replicated state (state-sync source)."""

    height: int
    head_hash: bytes
    state_root: bytes
    items: dict[bytes, bytes]


class Node:
    """One consortium node."""

    def __init__(
        self,
        node_id: int,
        zone: int = 0,
        kv: KVStore | None = None,
        config: EngineConfig = DEFAULT_CONFIG,
        lanes: int = 1,
        platform=None,
        data_dir: str | None = None,
        mempool_capacity: int = 100_000,
    ):
        self.node_id = node_id
        self.zone = zone
        if kv is None and data_dir is not None:
            if (config.storage_backend == "lsm" and config.storage_sealed
                    and platform is None):
                # The store seals to the platform, so the platform must
                # exist before the store — and the engine must then run
                # on that same platform.
                from repro.tee.enclave import Platform

                platform = Platform()
            kv = make_store(config, data_dir, platform)
        self.kv = kv if kv is not None else MemoryKV()
        self.data_dir = data_dir
        self.config = config
        # A restarted node passes the original Platform back in: SGX
        # sealing keys are machine-bound, so key recovery only works on
        # the machine the keys were sealed to.
        self.confidential = ConfidentialEngine(self.kv, config, platform=platform)
        self.public = PublicEngine(self.kv, config)
        self.executor = BlockExecutor(
            self.confidential, self.public, lanes,
            workers=config.exec_workers,
        )
        # §5.2 off-path pre-verification pool; workers=0 runs inline.
        self.preverify_pool = PreverifyPool(
            workers=config.preverify_workers,
            mode=config.preverify_pool_mode,
        )
        self._worker_sk: bytes | None = None
        # The serving gateway sizes this down so ``TxPool.add -> False``
        # becomes client-visible backpressure before memory does.
        self.unverified = TxPool(capacity=mempool_capacity)
        self.verified = TxPool(capacity=mempool_capacity)
        self._closed = False
        self.chain: list[Block] = []
        self.receipts: dict[bytes, bytes] = {}  # tx hash -> receipt blob
        self._receipt_blobs_by_height: dict[int, list[bytes]] = {}
        # tx hash -> (height, success): the in-process plaintext outcome
        # index cross-shard attestation reads (core/xshard).  Only
        # populated by local execution — a node restored from sealed
        # storage cannot reconstruct it, which is exactly when the
        # quorum-cert fallback path takes over.
        self.tx_outcomes: dict[bytes, tuple[int, bool]] = {}

    # -- key agreement helpers ---------------------------------------------

    @property
    def pk_tx(self) -> Point:
        return decode_point(self.confidential.pk_tx)

    # -- transaction intake -----------------------------------------------------

    def receive_transaction(self, tx: Transaction) -> bool:
        """Client submission: goes to the unverified pool."""
        return self.unverified.add(tx)

    def preverify_pending(self) -> int:
        """Run the pre-verification phase over the unverified pool.

        With ``preverify_workers > 0`` the decrypt + verify work fans out
        across the node's worker pool and the results are installed into
        the engines in one batch per engine; otherwise confidential
        transactions are pushed into the CS enclave in batches (one
        transition per batch, Figure 7 step P1) and public transactions
        verify outside the enclave, all on the calling thread.
        """
        with get_tracer().span("chain.preverify") as span:
            moved = 0
            while len(self.unverified):
                # Never out-run the verified pool: when it is full the
                # backlog must stay in `unverified` — where admission
                # control can see it and push back — rather than be
                # popped and silently dropped by a failing `add`.
                free = self.verified.capacity - len(self.verified)
                if free <= 0:
                    break
                batch = self.unverified.pop_batch(max_count=min(64, free))
                if self.preverify_pool.mode != "serial":
                    moved += self._preverify_batch_pooled(batch)
                    continue
                confidential = [tx for tx in batch if tx.is_confidential]
                verdicts: dict[bytes, bool] = {}
                if confidential:
                    results = self.confidential.preverify_batch(confidential)
                    verdicts = {
                        tx.tx_hash: ok for tx, ok in zip(confidential, results)
                    }
                for tx in batch:
                    if tx.is_confidential:
                        ok = verdicts[tx.tx_hash]
                    else:
                        ok = self.public.preverify(tx)
                    if ok:
                        self.verified.add(tx)
                        moved += 1
            span.set("admitted", moved)
        return moved

    def _preverify_batch_pooled(self, batch: list[Transaction]) -> int:
        """Fan a batch across the worker pool and install the results."""
        if any(tx.is_confidential for tx in batch) and self._worker_sk is None:
            self._worker_sk = self.confidential.export_worker_keys()
        records = self.preverify_pool.run(batch, self._worker_sk or b"")
        confidential_records = [
            record for record in records if record.tx_type == TX_CONFIDENTIAL
        ]
        self.confidential.install_preverified(confidential_records)
        moved = 0
        for tx, record in zip(batch, records):
            if not tx.is_confidential:
                self.public.install_preverified(
                    tx.tx_hash, record.verified, record.verify_seconds
                )
            if record.verified:
                self.verified.add(tx)
                moved += 1
        return moved

    def close(self, close_kv: bool = True) -> None:
        """Shut down the node's worker pools and (by default) cleanly
        close the underlying KV store, releasing its file handles.

        Idempotent, and flips :attr:`closed` first so block production
        racing a shutdown fails loudly (a block applied into a closing
        store could leave a torn WAL tail) instead of corrupting state.
        """
        if self._closed:
            return
        self._closed = True
        self.preverify_pool.close()
        self.executor.close()
        if close_kv:
            closer = getattr(self.kv, "close", None)
            if closer is not None:
                closer()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- block lifecycle --------------------------------------------------------

    @property
    def height(self) -> int:
        return len(self.chain)

    @property
    def head_hash(self) -> bytes:
        return self.chain[-1].block_hash if self.chain else GENESIS_HASH

    def draft_block(
        self,
        max_bytes: int = DEFAULT_BLOCK_BYTES,
        max_txs: int | None = None,
    ) -> list[Transaction]:
        """Pull transactions for the next block (leader role)."""
        return self.verified.pop_batch(max_count=max_txs, max_bytes=max_bytes)

    def apply_transactions(
        self, transactions: list[Transaction], proposer: int = 0
    ) -> AppliedBlock:
        """Execute an ordered batch and append the resulting block.

        `proposer` is the consensus leader's id — part of the replicated
        header, identical on every node.
        """
        if self._closed:
            raise ChainError("node is closed; cannot apply a block")
        # Everything the block writes — every per-key state commit the
        # engines make during execution, plus the header/body/receipt
        # records below — lands in ONE atomic storage commit, so crash
        # recovery can only ever observe whole blocks.
        with self.kv.block_batch():
            with get_tracer().span("chain.block_execute",
                                   num_txs=len(transactions),
                                   height=self.height + 1):
                exec_started = time.perf_counter()
                report = self.executor.execute_block(transactions)
                exec_seconds = time.perf_counter() - exec_started

            receipt_blobs = []
            for tx, outcome in zip(transactions, report.outcomes):
                blob = (
                    outcome.sealed_receipt
                    if outcome.sealed_receipt is not None
                    else outcome.receipt.encode()
                )
                receipt_blobs.append(blob)
                # First write wins: a transaction resubmitted after it
                # already committed (a crash-recovering cross-shard
                # coordinator, a confused client) re-executes into a
                # replay rejection — the original outcome must stay
                # authoritative for receipt queries and attestation.
                self.receipts.setdefault(tx.tx_hash, blob)

            state_root = compute_state_root(consensus_state(self.kv))
            header = BlockHeader(
                height=self.height + 1,
                prev_hash=self.head_hash,
                tx_root=tx_merkle_root(transactions),
                state_root=state_root,
                receipts_root=receipts_merkle_root(receipt_blobs),
                proposer=proposer.to_bytes(8, "big"),
                timestamp=self.height + 1,
            )
            block = Block(header, list(transactions))

            write_started = time.perf_counter()
            # Persist the header (hash-indexed) plus the full block body
            # and its receipt blobs (height-indexed) so a restarted node
            # can recover its chain position from storage alone.  Bodies
            # hold sealed envelopes and sealed receipts — never plaintext.
            self.kv.write_batch(
                {
                    b"blk:" + header.block_hash: header.encode(),
                    _height_key(_BLOCK_DATA_PREFIX, header.height): block.encode(),
                    _height_key(_RECEIPTS_DATA_PREFIX, header.height):
                        rlp.encode(receipt_blobs),
                }
            )
            write_seconds = time.perf_counter() - write_started

        self.chain.append(block)
        self._receipt_blobs_by_height[header.height] = receipt_blobs
        for tx, outcome in zip(transactions, report.outcomes):
            self.tx_outcomes.setdefault(
                tx.tx_hash, (header.height, outcome.receipt.success)
            )
        noter = getattr(self.kv, "note_state_root", None)
        if noter is not None:
            noter(state_root)
        if (self.config.snapshot_every
                and header.height % self.config.snapshot_every == 0):
            self.write_snapshot()
        return AppliedBlock(block, report, exec_seconds, write_seconds)

    def verify_block(self, block: Block) -> None:
        """Validate a block received from the (untrusted) leader before
        applying it: height continuity, parent linkage, tx commitment."""
        header = block.header
        if header.height != self.height + 1:
            raise ChainError(
                f"block height {header.height}, expected {self.height + 1}"
            )
        if header.prev_hash != self.head_hash:
            raise ChainError("block does not extend this chain")
        if not block.verify_tx_root():
            raise ChainError("block transaction root mismatch")

    def apply_block(self, block: Block) -> AppliedBlock:
        """Verify then execute a leader-proposed block; the locally
        computed header must match the proposed one bit for bit."""
        self.verify_block(block)
        applied = self.apply_transactions(
            block.transactions,
            proposer=int.from_bytes(block.header.proposer, "big"),
        )
        if applied.block.block_hash != block.block_hash:
            # Roll back would be needed in a real system; here we surface
            # the divergence (state roots disagree -> consensus failure).
            raise ChainError(
                "executed block diverges from the proposed header "
                f"(state root {applied.block.header.state_root.hex()[:16]} vs "
                f"{block.header.state_root.hex()[:16]})"
            )
        return applied

    def sync_from(self, peer: "Node") -> int:
        """Catch up by replaying a peer's blocks (new-node join).

        Each block is fully verified and re-executed locally; the
        locally computed headers must match the peer's bit for bit, so a
        lying peer cannot feed this node a forged history.  Requires the
        engines to already share keys (K-Protocol).  Returns the number
        of blocks applied.
        """
        applied = 0
        while self.height < peer.height:
            block = peer.chain[self.height]
            self.apply_block(block)
            applied += 1
        return applied

    def state_root(self) -> bytes:
        """Commitment over the replicated portion of this node's store."""
        return compute_state_root(consensus_state(self.kv))

    # -- snapshots and fast bootstrap ---------------------------------------

    def write_snapshot(self) -> int:
        """Persist a checkpoint of the replicated state at the current
        height (the state-sync source; also written automatically every
        ``config.snapshot_every`` blocks).  Values inside are the sealed
        envelopes already in the store, so the snapshot leaks nothing the
        store itself does not.  Returns the snapshot height.
        """
        items = sorted(consensus_state(self.kv).items())
        blob = rlp.encode([
            rlp.encode_int(self.height),
            self.head_hash,
            self.state_root(),
            [[key, value] for key, value in items],
        ])
        self.kv.put(_SNAPSHOT_KEY, blob)
        return self.height

    def latest_snapshot(self) -> "Snapshot | None":
        blob = self.kv.get(_SNAPSHOT_KEY)
        if blob is None:
            return None
        fields = rlp.decode(blob)
        if not isinstance(fields, list) or len(fields) != 4:
            raise ChainError("malformed snapshot record")
        return Snapshot(
            height=rlp.decode_int(fields[0]),
            head_hash=fields[1],
            state_root=fields[2],
            items={entry[0]: entry[1] for entry in fields[3]},
        )

    def state_sync_from(self, peer: "Node") -> int:
        """Fast bootstrap: install the peer's latest snapshot instead of
        re-executing its whole history, then replay only the tail.

        Blocks up to the snapshot height are adopted without execution —
        but never without verification: linkage and tx commitments are
        checked per block, and the installed state must recompute to the
        snapshot's (and head header's) state root before anything past it
        is applied.  Blocks after the snapshot replay through the normal
        verified :meth:`apply_block` path.  Returns blocks adopted+applied.
        """
        if self.chain:
            raise ChainError("state_sync_from needs a fresh node")
        snapshot = peer.latest_snapshot()
        if snapshot is None:
            return self.sync_from(peer)
        with self.kv.block_batch():
            for key, value in sorted(snapshot.items.items()):
                self.kv.put(key, value)
            if compute_state_root(consensus_state(self.kv)) != snapshot.state_root:
                raise ChainError(
                    "state-sync snapshot does not recompute to its state root"
                )
            prev_hash = GENESIS_HASH
            for height in range(1, snapshot.height + 1):
                block = peer.chain[height - 1]
                header = block.header
                if header.height != height or header.prev_hash != prev_hash:
                    raise ChainError("state-sync peer chain linkage broken")
                if not block.verify_tx_root():
                    raise ChainError(
                        f"state-sync block {height} transaction root mismatch"
                    )
                receipt_blobs = peer.receipt_blobs_at(height)
                if receipts_merkle_root(receipt_blobs) != header.receipts_root:
                    raise ChainError(
                        f"state-sync block {height} receipts root mismatch"
                    )
                self.kv.write_batch({
                    b"blk:" + header.block_hash: header.encode(),
                    _height_key(_BLOCK_DATA_PREFIX, height): block.encode(),
                    _height_key(_RECEIPTS_DATA_PREFIX, height):
                        rlp.encode(receipt_blobs),
                })
                prev_hash = block.block_hash
                self.chain.append(block)
                self._receipt_blobs_by_height[height] = receipt_blobs
                for tx, blob in zip(block.transactions, receipt_blobs):
                    self.receipts[tx.tx_hash] = blob
            if self.chain and (
                self.chain[-1].header.state_root != snapshot.state_root
                or self.chain[-1].block_hash != snapshot.head_hash
            ):
                raise ChainError(
                    "state-sync snapshot disagrees with the peer chain head"
                )
        noter = getattr(self.kv, "note_state_root", None)
        if noter is not None:
            noter(snapshot.state_root)
        tail = 0
        while self.height < peer.height:
            self.apply_block(peer.chain[self.height])
            tail += 1
        return snapshot.height + tail

    def restore_chain_from_storage(self) -> int:
        """Recover the chain after a restart by loading persisted blocks.

        Blocks are *not* re-executed — the KV store already holds the
        post-state of everything persisted (the state commit and the
        block write land in the same batch).  Linkage and tx roots are
        re-verified, and the recovered head's state root must match the
        root recomputed from storage; a mismatch means the database lost
        or gained state relative to the chain (durability violation).
        Returns the number of blocks restored.
        """
        if self.chain:
            raise ChainError("restore_chain_from_storage needs a fresh node")
        restored = 0
        prev_hash = GENESIS_HASH
        while True:
            blob = self.kv.get(_height_key(_BLOCK_DATA_PREFIX, restored + 1))
            if blob is None:
                break
            block = Block.decode(blob)
            if block.header.height != restored + 1:
                raise ChainError(
                    f"persisted block at height key {restored + 1} claims "
                    f"height {block.header.height}"
                )
            if block.header.prev_hash != prev_hash:
                raise ChainError("persisted chain linkage broken")
            self.chain.append(block)
            prev_hash = block.block_hash
            receipts_blob = self.kv.get(
                _height_key(_RECEIPTS_DATA_PREFIX, block.header.height)
            )
            if receipts_blob is not None:
                blobs = rlp.decode(receipts_blob)
                blobs = blobs if isinstance(blobs, list) else [blobs]
                self._receipt_blobs_by_height[block.header.height] = blobs
                for tx, blob_i in zip(block.transactions, blobs):
                    self.receipts[tx.tx_hash] = blob_i
            restored += 1
        if self.chain and self.chain[-1].header.state_root != self.state_root():
            raise ChainError(
                "restored chain head disagrees with the state recomputed "
                "from storage (durability violation)"
            )
        return restored

    def header_at(self, height: int) -> BlockHeader:
        if not 1 <= height <= self.height:
            raise ChainError(f"no block at height {height}")
        return self.chain[height - 1].header

    def receipt_blobs_at(self, height: int) -> list[bytes]:
        return list(self._receipt_blobs_by_height.get(height, []))


class Consortium:
    """A running consortium: leader rotation, block propagation, and
    cross-replica verification in one object."""

    def __init__(self, nodes: list[Node], rotate_leader: bool = True):
        if not nodes:
            raise ChainError("a consortium needs nodes")
        self.nodes = nodes
        self.rotate_leader = rotate_leader
        self._round = 0

    @property
    def leader(self) -> Node:
        return self.nodes[self._round % len(self.nodes) if self.rotate_leader else 0]

    def broadcast(self, tx: Transaction) -> None:
        """Client submission: every node hears about the transaction."""
        for node in self.nodes:
            node.receive_transaction(tx)

    def run_round(self, max_bytes: int = DEFAULT_BLOCK_BYTES,
                  max_txs: int | None = None) -> AppliedBlock:
        """One consensus round: pre-verify everywhere, leader proposes,
        replicas verify + apply, all headers must agree."""
        leader = self.leader
        for node in self.nodes:
            node.preverify_pending()
        batch = leader.draft_block(max_bytes=max_bytes, max_txs=max_txs)
        applied = leader.apply_transactions(batch, proposer=leader.node_id)
        for replica in self.nodes:
            if replica is leader:
                continue
            # Replicas drop the proposed txs from their own pools.
            for tx in batch:
                replica.verified.remove(tx.tx_hash)
            replica.apply_block(applied.block)
        self._round += 1
        return applied

    def run_until_empty(self, max_rounds: int = 1000,
                        max_bytes: int = DEFAULT_BLOCK_BYTES) -> int:
        """Run rounds until no node has pending transactions."""
        rounds = 0
        while rounds < max_rounds:
            pending = any(
                len(n.unverified) or len(n.verified) for n in self.nodes
            )
            if not pending:
                return rounds
            self.run_round(max_bytes=max_bytes)
            rounds += 1
        raise ChainError("consortium did not drain within max_rounds")

    @property
    def height(self) -> int:
        return self.nodes[0].height


def build_consortium(
    num_nodes: int,
    zones: list[int] | None = None,
    config: EngineConfig = DEFAULT_CONFIG,
    lanes: int = 1,
    key_mode: str = "decentralized",
    data_dirs: list[str] | None = None,
) -> tuple[list[Node], AttestationService]:
    """Create nodes and run the K-Protocol so all engines share keys."""
    if num_nodes < 1:
        raise ChainError("need at least one node")
    zones = zones or [0] * num_nodes
    nodes = [
        Node(
            i, zone=zones[i], config=config, lanes=lanes,
            data_dir=data_dirs[i] if data_dirs else None,
        )
        for i in range(num_nodes)
    ]
    attestation = AttestationService()
    for node in nodes:
        attestation.register_platform(node.confidential.platform)
    if key_mode == "decentralized":
        bootstrap_founder(nodes[0].confidential.km)
        for joiner in nodes[1:]:
            mutual_attested_provision(
                nodes[0].confidential.km, joiner.confidential.km, attestation
            )
    elif key_mode == "centralized":
        kms = CentralizedKMS(attestation)
        for node in nodes:
            kms.provision(node.confidential.km)
    else:
        raise ChainError(f"unknown key mode '{key_mode}'")
    for node in nodes:
        node.confidential.provision_from_km()
    return nodes, attestation
