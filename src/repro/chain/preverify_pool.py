"""Off-path pre-verification worker pool (paper §5.2, made real).

"The signature verification could be processed in parallel before the
consensus" — previously the node *called* pre-verification off-path but
still ran every envelope decryption and ECDSA check on one thread.  This
pool actually fans the work out:

- **process mode** — a ``ProcessPoolExecutor``; the right choice for the
  CPU-bound ECIES + ECDSA math, which the GIL would otherwise serialize.
  Workers model in-enclave worker threads (SGX TCS entries): the CS
  enclave provisions them with ``sk_tx`` via
  ``ecall_export_worker_keys``, so in the modeled system the key never
  crosses the trust boundary (see docs/parallelism.md).
- **thread mode** — a ``ThreadPoolExecutor`` fallback; correct
  everywhere, concurrent only where the crypto releases the GIL.
- **serial mode** — workers=0; runs inline, used by the deterministic
  simulator and as the universal fallback.

Workers return plain picklable tuples; the parent folds them into
:class:`~repro.core.preprocessor.PreverifiedRecord` batches and installs
them into the owning engine with one enclave transition per batch.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.chain.transaction import (
    TX_CONFIDENTIAL,
    RawTransaction,
    Transaction,
)
from repro.core import t_protocol
from repro.core.preprocessor import PreverifiedRecord
from repro.crypto.keys import KeyPair

DEFAULT_CHUNK_SIZE = 16  # legacy fixed size; pools now adapt by default
# Adaptive chunks never shrink below this: a submission carrying fewer
# transactions than this pays more in dispatch than it wins in overlap.
_MIN_ADAPTIVE_CHUNK = 4

_MODES = ("serial", "thread", "process")


# One tx result crossing back from a worker, as a picklable tuple:
# (tx_hash, tx_type, verified, k_tx, sender, contract, is_deploy,
#  is_upgrade, decrypt_seconds, verify_seconds)
_WireResult = tuple


def _preverify_one(sk: KeyPair | None, tx_type: int,
                   payload: bytes) -> _WireResult:
    tx = Transaction(tx_type, payload)
    decrypt_elapsed = 0.0
    k_tx = b""
    if tx.is_confidential:
        started = time.perf_counter()
        try:
            if sk is None:
                raise ValueError("no envelope key provisioned")
            k_tx, body = t_protocol.open_envelope_key(sk, payload)
            raw = t_protocol.open_body(k_tx, body)
        except Exception:
            decrypt_elapsed = time.perf_counter() - started
            return (tx.tx_hash, tx_type, False, b"", b"", b"", False, False,
                    decrypt_elapsed, 0.0)
        decrypt_elapsed = time.perf_counter() - started
    else:
        try:
            raw = RawTransaction.decode(payload)
        except Exception:
            return (tx.tx_hash, tx_type, False, b"", b"", b"", False, False,
                    0.0, 0.0)
    started = time.perf_counter()
    verified = raw.verify_signature()
    verify_elapsed = time.perf_counter() - started
    return (
        tx.tx_hash, tx_type, verified, k_tx, raw.sender, raw.contract,
        raw.is_deploy, raw.is_upgrade, decrypt_elapsed, verify_elapsed,
    )


def _preverify_chunk(
    sk_bytes: bytes, chunk: list[tuple[int, bytes]]
) -> tuple[list[_WireResult], float]:
    """Worker entry point: pre-verify one batched submission.

    The whole chunk is one task — one pickle/dispatch round-trip and one
    worker wake-up amortized over every transaction in it — and
    batch-wide work is hoisted out of the per-tx loop: the envelope
    private key is parsed (and its scalar validated) once per
    submission, not once per transaction.
    """
    started = time.perf_counter()
    try:
        sk = (KeyPair.from_private(int.from_bytes(sk_bytes, "big"))
              if sk_bytes else None)
    except Exception:
        # A bad key makes confidential txs undecryptable (reported per
        # tx), it must not fail the whole submission.
        sk = None
    results = [_preverify_one(sk, tx_type, payload)
               for tx_type, payload in chunk]
    return results, time.perf_counter() - started


def _record_from_wire(wire: _WireResult) -> PreverifiedRecord:
    (tx_hash, tx_type, verified, k_tx, sender, contract, is_deploy,
     is_upgrade, decrypt_s, verify_s) = wire
    return PreverifiedRecord(
        tx_hash=tx_hash, tx_type=tx_type, verified=verified, k_tx=k_tx,
        sender=sender, contract=contract, is_deploy=is_deploy,
        is_upgrade=is_upgrade, decrypt_seconds=decrypt_s,
        verify_seconds=verify_s,
    )


@dataclass
class PoolStats:
    """Observability counters for one pool's lifetime."""

    submitted: int = 0
    verified_ok: int = 0
    verified_bad: int = 0
    undecryptable: int = 0
    batches: int = 0
    queue_depth_peak: int = 0
    busy_seconds: float = 0.0
    wall_seconds: float = 0.0
    workers: int = 0
    mode: str = "serial"

    def utilization(self) -> float:
        """Fraction of worker capacity kept busy, 0..1."""
        capacity = max(1, self.workers) * self.wall_seconds
        if capacity <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / capacity)

    def snapshot(self) -> dict:
        return {
            "mode": self.mode,
            "workers": self.workers,
            "submitted": self.submitted,
            "verified_ok": self.verified_ok,
            "verified_bad": self.verified_bad,
            "undecryptable": self.undecryptable,
            "batches": self.batches,
            "queue_depth_peak": self.queue_depth_peak,
            "busy_seconds": self.busy_seconds,
            "wall_seconds": self.wall_seconds,
            "utilization": self.utilization(),
        }


@dataclass
class PreverifyPool:
    """Fans pre-verification across workers; yields install-ready records.

    ``workers=0`` (or mode="serial") runs inline.  mode="auto" picks
    processes when more than one CPU is visible, threads otherwise —
    process-pool startup is pure overhead when there is only one core
    to schedule onto.
    """

    workers: int = 0
    mode: str = "auto"
    # None = adaptive: serial mode verifies the whole batch as one
    # submission; parallel modes split it into ~2 chunks per worker
    # (enough slack for load balancing, few enough that dispatch
    # overhead stays amortized).  An explicit size is honored as-is.
    chunk_size: int | None = None
    stats: PoolStats = field(default_factory=PoolStats)
    _executor: Executor | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        import os

        if self.mode == "auto":
            if self.workers <= 0:
                self.mode = "serial"
            elif (os.cpu_count() or 1) > 1:
                self.mode = "process"
            else:
                self.mode = "thread"
        if self.mode not in _MODES:
            raise ValueError(f"unknown preverify pool mode '{self.mode}'")
        if self.workers <= 0:
            self.mode = "serial"
        self.stats.mode = self.mode
        self.stats.workers = self.workers if self.mode != "serial" else 0

    def _ensure_executor(self) -> Executor | None:
        if self.mode == "serial":
            return None
        if self._executor is None:
            if self.mode == "process":
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="preverify",
                )
        return self._executor

    def _effective_chunk_size(self, batch_len: int) -> int:
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        if self.mode == "serial":
            return batch_len  # one inline call, zero dispatch overhead
        target_chunks = max(1, self.workers) * 2
        return max(_MIN_ADAPTIVE_CHUNK,
                   -(-batch_len // target_chunks))  # ceil division

    def run(self, txs: list[Transaction],
            sk_bytes: bytes = b"") -> list[PreverifiedRecord]:
        """Pre-verify a batch; returns records in submission order.

        ``sk_bytes`` is the envelope private key (from
        ``ConfidentialEngine.export_worker_keys``); required only when
        the batch contains confidential transactions.
        """
        if not txs:
            return []
        started = time.perf_counter()
        payloads = [(tx.tx_type, tx.payload) for tx in txs]
        chunk_size = self._effective_chunk_size(len(payloads))
        chunks = [payloads[i:i + chunk_size]
                  for i in range(0, len(payloads), chunk_size)]
        executor = self._ensure_executor()
        wire_results: list[_WireResult] = []
        if executor is None:
            for chunk in chunks:
                results, busy = _preverify_chunk(sk_bytes, chunk)
                wire_results.extend(results)
                self.stats.busy_seconds += busy
        else:
            futures = [executor.submit(_preverify_chunk, sk_bytes, chunk)
                       for chunk in chunks]
            self.stats.queue_depth_peak = max(
                self.stats.queue_depth_peak, len(futures)
            )
            for future in futures:  # submission order == block order
                results, busy = future.result()
                wire_results.extend(results)
                self.stats.busy_seconds += busy
        records = [_record_from_wire(wire) for wire in wire_results]
        self.stats.submitted += len(records)
        self.stats.batches += 1
        self.stats.wall_seconds += time.perf_counter() - started
        for record in records:
            if record.tx_type == TX_CONFIDENTIAL and not record.k_tx:
                self.stats.undecryptable += 1
            elif record.verified:
                self.stats.verified_ok += 1
            else:
                self.stats.verified_bad += 1
        return records

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "PreverifyPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
