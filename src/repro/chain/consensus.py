"""PBFT-style ordering consensus simulator.

CONFIDE's platform reaches *order* consensus before execution (§3.1), so
what matters for throughput is the ordering round latency.  The
simulator computes one round of the classic three-phase protocol over
the zoned network model:

1. **pre-prepare** — the leader sends the block to every replica;
2. **prepare**     — every replica broadcasts a prepare; a replica is
   *prepared* once it holds 2f+1 matching prepares;
3. **commit**      — every prepared replica broadcasts a commit; the
   block is ordered at a replica once it holds 2f+1 commits.

Message timing accounts for per-node uplink serialization (a node
sending to n-1 peers queues those sends), which is what reproduces the
paper's two-zone degradation as node count grows (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.network import NetworkModel
from repro.errors import ChainError
from repro.obs.trace import get_tracer

_PHASE_MSG_BYTES = 192  # header hash + signature + view metadata


@dataclass(frozen=True)
class RoundReport:
    """Latency breakdown of one ordering round."""

    preprepare_s: float
    prepared_s: float
    committed_s: float

    @property
    def total_s(self) -> float:
        return self.committed_s


class PBFTOrderer:
    """Simulates ordering rounds for a fixed membership."""

    def __init__(self, zones: list[int], model: NetworkModel, leader: int = 0):
        if len(zones) < 4:
            raise ChainError("PBFT needs at least 4 nodes (f >= 1)")
        self.zones = list(zones)
        self.model = model
        self.leader = leader
        self.n = len(zones)
        self.f = (self.n - 1) // 3
        self.quorum = 2 * self.f + 1

    def _broadcast_arrivals(
        self, sender: int, send_start: float, msg_bytes: int
    ) -> list[float]:
        """Arrival time at each node of a broadcast from `sender`.

        The sender's uplink serializes the n-1 transmissions (nearest
        zones first, a reasonable scheduler); self-delivery is free.
        """
        order = sorted(
            (i for i in range(self.n) if i != sender),
            key=lambda i: self.model.latency(self.zones[sender], self.zones[i]),
        )
        arrivals = [0.0] * self.n
        arrivals[sender] = send_start
        clock = send_start
        for receiver in order:
            clock += self.model.transfer_time(
                self.zones[sender], self.zones[receiver], msg_bytes
            )
            arrivals[receiver] = clock + self.model.latency(
                self.zones[sender], self.zones[receiver]
            )
        return arrivals

    @staticmethod
    def _quorum_time(times: list[float], quorum: int) -> float:
        return sorted(times)[quorum - 1]

    def round_latency(
        self, block_bytes: int, faulty: frozenset[int] | set[int] = frozenset()
    ) -> RoundReport:
        """Latency of ordering one block of the given size.

        `faulty` nodes are crashed: they receive but never send.  As long
        as at most f nodes are faulty (and the leader is alive), the
        round still completes — the BFT liveness guarantee; beyond f the
        round cannot gather quorums and this raises.
        """
        faulty = frozenset(faulty)
        if self.leader in faulty:
            raise ChainError("leader is faulty; a view change is required")
        if len(faulty) > self.f:
            raise ChainError(
                f"{len(faulty)} faulty nodes exceed the f={self.f} tolerance"
            )
        with get_tracer().span("consensus.round", block_bytes=block_bytes,
                               nodes=self.n, faulty=len(faulty)) as span:
            report = self._round_latency(block_bytes, faulty)
            span.set("ordered_s", report.committed_s)
        return report

    def _round_latency(
        self, block_bytes: int, faulty: frozenset[int]
    ) -> RoundReport:
        alive = [i for i in range(self.n) if i not in faulty]
        never = float("inf")
        preprepare = self._broadcast_arrivals(self.leader, 0.0, block_bytes)
        prepare_arrivals = [
            self._broadcast_arrivals(i, preprepare[i], _PHASE_MSG_BYTES)
            if i not in faulty else [never] * self.n
            for i in range(self.n)
        ]
        prepared = [
            self._quorum_time(
                [prepare_arrivals[j][i] for j in range(self.n)], self.quorum
            )
            for i in range(self.n)
        ]
        commit_arrivals = [
            self._broadcast_arrivals(i, prepared[i], _PHASE_MSG_BYTES)
            if i not in faulty else [never] * self.n
            for i in range(self.n)
        ]
        committed = [
            self._quorum_time(
                [commit_arrivals[j][i] for j in range(self.n)], self.quorum
            )
            for i in range(self.n)
        ]
        report = RoundReport(
            preprepare_s=self._quorum_time(
                [preprepare[i] for i in alive], min(self.quorum, len(alive))
            ),
            prepared_s=self._quorum_time(
                [prepared[i] for i in alive], min(self.quorum, len(alive))
            ),
            committed_s=self._quorum_time(
                [committed[i] for i in alive], min(self.quorum, len(alive))
            ),
        )
        if report.committed_s == float("inf"):
            raise ChainError("round cannot complete with these faults")
        return report

    def view_change_latency(self) -> float:
        """Latency of electing a new leader after a crash: every live
        replica broadcasts VIEW-CHANGE, the new leader gathers 2f+1 and
        broadcasts NEW-VIEW."""
        view_changes = [
            self._broadcast_arrivals(i, 0.0, _PHASE_MSG_BYTES)
            for i in range(self.n)
        ]
        new_leader = (self.leader + 1) % self.n
        gathered = self._quorum_time(
            [view_changes[j][new_leader] for j in range(self.n)], self.quorum
        )
        new_view = self._broadcast_arrivals(new_leader, gathered, _PHASE_MSG_BYTES)
        return self._quorum_time(new_view, self.quorum)

    def pipelined_block_interval(self, block_bytes: int) -> float:
        """Per-block busy time of the ordering pipeline's bottleneck.

        Consecutive blocks pipeline through the three phases, so
        steady-state ordering throughput is bounded by *bandwidth*, not
        round latency: the leader's uplink must ship the block to every
        replica, and all cross-zone traffic (pre-prepare copies plus the
        all-to-all prepare/commit messages) shares one inter-zone pipe.
        Returns seconds of pipe time consumed per block.
        """
        with get_tracer().span("consensus.pipeline", block_bytes=block_bytes,
                               nodes=self.n) as span:
            interval = self._pipelined_block_interval(block_bytes)
            span.set("interval_s", interval)
        return interval

    def _pipelined_block_interval(self, block_bytes: int) -> float:
        zones = self.zones
        leader_zone = zones[self.leader]
        # Leader uplink: n-1 block copies.
        leader_bytes = block_bytes * (self.n - 1)
        leader_time = leader_bytes * 8.0 / self.model.intra_zone_bandwidth_bps
        # Cross-zone traffic on the shared WAN pipe.
        cross_pairs = 0
        cross_preprepare = 0
        for i in range(self.n):
            if i != self.leader and zones[i] != leader_zone:
                cross_preprepare += 1
            for j in range(self.n):
                if i != j and zones[i] != zones[j]:
                    cross_pairs += 1
        wan_bytes = (
            cross_preprepare * block_bytes
            + 2 * cross_pairs * _PHASE_MSG_BYTES  # prepare + commit phases
        )
        wan_time = wan_bytes * 8.0 / self.model.inter_zone_bandwidth_bps
        return max(leader_time, wan_time)

    def verify_state_roots(self, roots: list[bytes]) -> bytes:
        """Replica agreement on the post-state: at least 2f+1 identical
        roots are required (state continuity, §3.3)."""
        counts: dict[bytes, int] = {}
        for root in roots:
            counts[root] = counts.get(root, 0) + 1
        best_root, best = max(counts.items(), key=lambda kv: kv[1])
        if best < self.quorum:
            raise ChainError(
                f"state divergence: best root has {best} votes < quorum {self.quorum}"
            )
        return best_root
