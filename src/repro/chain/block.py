"""Blocks and headers.

Each header commits to the ordered transactions (tx root), the post-state
(state root) and the execution receipts (receipts root) — the three
commitments the security argument of §3.3 leans on.  Confidential
receipts are committed in *sealed* form; determinstic receipt sealing
(synthetic nonces under ``k_tx``) makes those roots agree across
replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.transaction import Transaction
from repro.crypto.hashes import sha256
from repro.errors import ChainError
from repro.storage import rlp
from repro.storage.merkle import MerkleTree


@dataclass(frozen=True)
class BlockHeader:
    height: int
    prev_hash: bytes
    tx_root: bytes
    state_root: bytes
    receipts_root: bytes
    proposer: bytes
    timestamp: int  # logical time (ms since genesis); deterministic

    def encode(self) -> bytes:
        return rlp.encode(
            [
                rlp.encode_int(self.height),
                self.prev_hash,
                self.tx_root,
                self.state_root,
                self.receipts_root,
                self.proposer,
                rlp.encode_int(self.timestamp),
            ]
        )

    @classmethod
    def decode(cls, data: bytes) -> "BlockHeader":
        items = rlp.decode(data)
        if not isinstance(items, list) or len(items) != 7:
            raise ChainError("malformed block header")
        return cls(
            height=rlp.decode_int(items[0]),
            prev_hash=items[1],
            tx_root=items[2],
            state_root=items[3],
            receipts_root=items[4],
            proposer=items[5],
            timestamp=rlp.decode_int(items[6]),
        )

    @property
    def block_hash(self) -> bytes:
        return sha256(self.encode())


@dataclass
class Block:
    header: BlockHeader
    transactions: list[Transaction] = field(default_factory=list)

    @property
    def block_hash(self) -> bytes:
        return self.header.block_hash

    @property
    def byte_size(self) -> int:
        return len(self.header.encode()) + sum(
            len(tx.encode()) for tx in self.transactions
        )

    def verify_tx_root(self) -> bool:
        return tx_merkle_root(self.transactions) == self.header.tx_root

    def encode(self) -> bytes:
        """Full-block wire/storage encoding (header + transactions).

        Confidential transactions serialize as their sealed envelopes,
        so a persisted or broadcast block never contains plaintext.
        """
        return rlp.encode(
            [self.header.encode(), [tx.encode() for tx in self.transactions]]
        )

    @classmethod
    def decode(cls, data: bytes) -> "Block":
        items = rlp.decode(data)
        if not isinstance(items, list) or len(items) != 2 \
                or not isinstance(items[1], list):
            raise ChainError("malformed block")
        block = cls(
            header=BlockHeader.decode(items[0]),
            transactions=[Transaction.decode(item) for item in items[1]],
        )
        if not block.verify_tx_root():
            raise ChainError("decoded block fails its transaction root")
        return block


def tx_merkle_root(transactions: list[Transaction]) -> bytes:
    return MerkleTree([tx.tx_hash for tx in transactions]).root


def receipts_merkle_root(receipt_blobs: list[bytes]) -> bytes:
    """Root over receipt encodings (sealed ones for confidential txs)."""
    return MerkleTree(receipt_blobs).root


GENESIS_HASH = sha256(b"repro-confide-genesis")
