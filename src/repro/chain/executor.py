"""Block executor: real k-way parallel execution with OCC validation.

Ant Blockchain "supports smart contract paralleled execution" (§6.2).
Two mechanisms coexist here:

- **Modeled lanes** (``lane_schedule``) — the original analytical model:
  list-scheduling of measured per-transaction durations onto k lanes
  under conflict constraints.  It is kept as a *crosscheck metric*: the
  modeled makespan of a block should track what real parallel execution
  achieves on hardware with k cores.

- **Real dispatch** (``workers > 1``) — the dependency-aware scheduler
  (:mod:`repro.chain.scheduler`) plans contiguous waves of transactions
  with disjoint conflict domains; a thread pool executes each wave's
  transactions speculatively (state effects buffered in-enclave), and a
  pipelined in-order commit walks the wave: each transaction's *actual*
  read set is validated against the writes committed before it in the
  wave, and on overlap the speculation is discarded and the transaction
  re-executed against the committed prefix.  Deploys/upgrades/unknown
  profiles are barriers and run alone.

Determinism contract: commits happen strictly in block order, and any
transaction whose reads could have observed a wave-mate's writes is
re-executed serially against the fully-committed prefix — so parallel
execution produces byte-identical receipts and state to serial
execution regardless of thread timing (docs/parallelism.md).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.chain.scheduler import Wave, build_waves
from repro.chain.transaction import Transaction
from repro.core.preprocessor import TxProfile
from repro.core.receipts import ANALYSIS_SOURCE_BYTECODE, KIND_ANALYSIS
from repro.errors import ChainError
from repro.obs.collect import block_metrics_snapshot
from repro.obs.trace import get_tracer

if TYPE_CHECKING:  # imported lazily to avoid a chain <-> core import cycle
    from repro.core.engine import ConfidentialEngine, ExecutionOutcome, PublicEngine


@dataclass
class BlockExecutionReport:
    """Execution results plus the parallel-lane schedule for one block."""

    outcomes: list["ExecutionOutcome"] = field(default_factory=list)
    serial_duration_s: float = 0.0
    makespan_s: float = 0.0
    lanes: int = 1
    conflict_edges: int = 0
    analysis_rejections: int = 0  # deploys refused by the static verifier
    # Split of analysis_rejections by admission mode: did the rejected
    # deploy carry source (Pass 1 ran) or was it bytecode-only (Pass 2+3
    # were the only line of defense)?
    analysis_rejections_source: int = 0
    analysis_rejections_bytecode_only: int = 0
    # Real-dispatch facts (workers > 1; zeros on the serial path).
    workers: int = 0
    waves: int = 0
    barrier_waves: int = 0
    conflict_aborts: int = 0  # speculations discarded at validation
    reexecutions: int = 0  # conflict aborts re-run against committed state
    parallel_wall_s: float = 0.0
    # Post-block observability snapshot: cumulative engine metrics as of
    # this block's commit ("name{label=value}" -> value), from the same
    # ledgers Table 1 reads.
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.serial_duration_s / self.makespan_s if self.makespan_s else 1.0

    @property
    def measured_speedup(self) -> float:
        """Serial-equivalent work time over real parallel wall time."""
        if not self.parallel_wall_s:
            return 1.0
        return self.serial_duration_s / self.parallel_wall_s


def _conflicts(a: "ExecutionOutcome", b: "ExecutionOutcome") -> bool:
    return bool(
        a.write_set & b.write_set
        or a.write_set & b.read_set
        or a.read_set & b.write_set
    )


def lane_schedule(outcomes: list["ExecutionOutcome"], lanes: int) -> tuple[float, int]:
    """(makespan, conflict-edge count) of list-scheduling onto k lanes."""
    if lanes < 1:
        raise ChainError("need at least one execution lane")
    lane_free = [0.0] * lanes
    finish_times: list[float] = []
    conflict_edges = 0
    for index, outcome in enumerate(outcomes):
        ready = 0.0
        for prev_index in range(index):
            if _conflicts(outcomes[prev_index], outcome):
                conflict_edges += 1
                ready = max(ready, finish_times[prev_index])
        lane = min(range(lanes), key=lambda i: lane_free[i])
        start = max(lane_free[lane], ready)
        finish = start + outcome.duration
        lane_free[lane] = finish
        finish_times.append(finish)
    return (max(finish_times) if finish_times else 0.0), conflict_edges


class BlockExecutor:
    """Executes a block's transactions through the right engine."""

    def __init__(
        self,
        confidential: "ConfidentialEngine",
        public: "PublicEngine",
        lanes: int = 1,
        workers: int = 0,
    ):
        self.confidential = confidential
        self.public = public
        self.lanes = lanes
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None
        # Cumulative dispatch counters (across blocks), for metrics.
        self.total_conflict_aborts = 0
        self.total_reexecutions = 0
        self.total_waves = 0
        self.total_barrier_waves = 0

    # -- engine routing -----------------------------------------------------

    def _engine_for(self, tx: Transaction):
        return self.confidential if tx.is_confidential else self.public

    def _execute(self, tx: Transaction) -> "ExecutionOutcome":
        return self._engine_for(tx).execute(tx)

    def _execute_speculative(self, tx: Transaction):
        return self._engine_for(tx).execute_speculative(tx)

    def _profile_of(self, tx: Transaction) -> TxProfile | None:
        if tx.is_confidential:
            return self.confidential.tx_profile(tx.tx_hash)
        try:
            return TxProfile.of(tx.raw())
        except ChainError:
            return None

    # -- block execution ----------------------------------------------------

    def execute_block(self, transactions: list[Transaction]) -> BlockExecutionReport:
        parallel = self.workers > 1 and len(transactions) > 1
        with get_tracer().span("block.execute", num_txs=len(transactions),
                               workers=self.workers if parallel else 0) as span:
            report = BlockExecutionReport(lanes=self.lanes)
            if parallel:
                self._execute_parallel(transactions, report)
            else:
                for tx in transactions:
                    self._record(report, self._execute(tx))
            report.makespan_s, report.conflict_edges = lane_schedule(
                report.outcomes, self.lanes
            )
            report.metrics = block_metrics_snapshot(self.confidential, self.public)
            span.set("conflict_edges", report.conflict_edges)
            if parallel:
                span.set("waves", report.waves)
                span.set("reexecutions", report.reexecutions)
        return report

    def _record(self, report: BlockExecutionReport,
                outcome: "ExecutionOutcome") -> None:
        report.outcomes.append(outcome)
        report.serial_duration_s += outcome.duration
        if outcome.receipt.kind == KIND_ANALYSIS:
            report.analysis_rejections += 1
            if outcome.receipt.analysis_mode == ANALYSIS_SOURCE_BYTECODE:
                report.analysis_rejections_source += 1
            else:
                report.analysis_rejections_bytecode_only += 1

    def _execute_parallel(self, transactions: list[Transaction],
                          report: BlockExecutionReport) -> None:
        pool = self._ensure_pool()
        profiles = [self._profile_of(tx) for tx in transactions]
        waves = build_waves(profiles)
        report.workers = self.workers
        report.waves = len(waves)
        report.barrier_waves = sum(1 for wave in waves if wave.barrier)
        started = time.perf_counter()
        outcomes: list["ExecutionOutcome | None"] = [None] * len(transactions)
        for wave in waves:
            self._run_wave(pool, wave, transactions, outcomes, report)
        report.parallel_wall_s = time.perf_counter() - started
        for outcome in outcomes:
            assert outcome is not None
            self._record(report, outcome)
        self.total_conflict_aborts += report.conflict_aborts
        self.total_reexecutions += report.reexecutions
        self.total_waves += report.waves
        self.total_barrier_waves += report.barrier_waves

    def _run_wave(self, pool: ThreadPoolExecutor, wave: Wave,
                  transactions: list[Transaction],
                  outcomes: list, report: BlockExecutionReport) -> None:
        if wave.barrier or len(wave.indices) == 1:
            # Barriers (deploys/upgrades/unknown profiles) and singleton
            # waves take the committed serial path directly.
            index = wave.indices[0]
            outcomes[index] = self._execute(transactions[index])
            return
        with get_tracer().span("block.wave", size=len(wave.indices)):
            futures = {
                index: pool.submit(self._execute_speculative,
                                   transactions[index])
                for index in wave.indices
            }
            # Pipelined in-order commit: transaction i's validation and
            # commit overlap the still-running executions of j > i.
            wave_written: set[bytes] = set()
            for index in wave.indices:
                speculative = futures[index].result()
                engine = self._engine_for(transactions[index])
                outcome = speculative.outcome
                if outcome.read_set & wave_written:
                    # The speculation may have observed (or missed) a
                    # wave-mate's write: discard it and re-execute against
                    # the committed prefix — exactly the serial result.
                    engine.discard_speculative(speculative.token)
                    report.conflict_aborts += 1
                    report.reexecutions += 1
                    outcome = self._execute(transactions[index])
                else:
                    engine.commit_speculative(speculative.token)
                wave_written |= outcome.write_set
                outcomes[index] = outcome

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="exec"
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
