"""Block executor with k-way parallel lanes.

Ant Blockchain "supports smart contract paralleled execution" (§6.2);
transactions without state conflicts run on parallel lanes.  Python's
GIL makes real threads pointless for a CPU-bound interpreter, so the
executor does what the discrete simulation substrate does everywhere
else: it executes transactions serially (collecting per-transaction
durations and read/write sets from the engine) and then computes the
*lane schedule* a k-way executor would achieve — list scheduling with
the constraint that a transaction cannot start before every earlier
conflicting transaction finished.

The result exposes both the serial duration and the k-way makespan, so
Figure 11's "4-way ≈ 2x, 6-way ≈ 4-way" shape is a measured property of
the workload's conflict graph, not an assumed constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.chain.transaction import Transaction
from repro.errors import ChainError
from repro.obs.collect import block_metrics_snapshot
from repro.obs.trace import get_tracer

if TYPE_CHECKING:  # imported lazily to avoid a chain <-> core import cycle
    from repro.core.engine import ConfidentialEngine, ExecutionOutcome, PublicEngine


@dataclass
class BlockExecutionReport:
    """Execution results plus the parallel-lane schedule for one block."""

    outcomes: list["ExecutionOutcome"] = field(default_factory=list)
    serial_duration_s: float = 0.0
    makespan_s: float = 0.0
    lanes: int = 1
    conflict_edges: int = 0
    analysis_rejections: int = 0  # deploys refused by the static verifier
    # Post-block observability snapshot: cumulative engine metrics as of
    # this block's commit ("name{label=value}" -> value), from the same
    # ledgers Table 1 reads.
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.serial_duration_s / self.makespan_s if self.makespan_s else 1.0


def _conflicts(a: "ExecutionOutcome", b: "ExecutionOutcome") -> bool:
    return bool(
        a.write_set & b.write_set
        or a.write_set & b.read_set
        or a.read_set & b.write_set
    )


def lane_schedule(outcomes: list["ExecutionOutcome"], lanes: int) -> tuple[float, int]:
    """(makespan, conflict-edge count) of list-scheduling onto k lanes."""
    if lanes < 1:
        raise ChainError("need at least one execution lane")
    lane_free = [0.0] * lanes
    finish_times: list[float] = []
    conflict_edges = 0
    for index, outcome in enumerate(outcomes):
        ready = 0.0
        for prev_index in range(index):
            if _conflicts(outcomes[prev_index], outcome):
                conflict_edges += 1
                ready = max(ready, finish_times[prev_index])
        lane = min(range(lanes), key=lambda i: lane_free[i])
        start = max(lane_free[lane], ready)
        finish = start + outcome.duration
        lane_free[lane] = finish
        finish_times.append(finish)
    return (max(finish_times) if finish_times else 0.0), conflict_edges


class BlockExecutor:
    """Executes a block's transactions through the right engine."""

    def __init__(
        self,
        confidential: "ConfidentialEngine",
        public: "PublicEngine",
        lanes: int = 1,
    ):
        self.confidential = confidential
        self.public = public
        self.lanes = lanes

    def execute_block(self, transactions: list[Transaction]) -> BlockExecutionReport:
        with get_tracer().span("block.execute",
                               num_txs=len(transactions)) as span:
            report = BlockExecutionReport(lanes=self.lanes)
            for tx in transactions:
                if tx.is_confidential:
                    outcome = self.confidential.execute(tx)
                else:
                    outcome = self.public.execute(tx)
                report.outcomes.append(outcome)
                report.serial_duration_s += outcome.duration
                receipt = outcome.receipt
                if not receipt.success and receipt.error.startswith("analysis:"):
                    report.analysis_rejections += 1
            report.makespan_s, report.conflict_edges = lane_schedule(
                report.outcomes, self.lanes
            )
            report.metrics = block_metrics_snapshot(self.confidential, self.public)
            span.set("conflict_edges", report.conflict_edges)
        return report
