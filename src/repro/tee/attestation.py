"""Remote and local attestation for the simulated TEE.

Remote attestation mirrors the SGX EPID flow at the level CONFIDE uses it:
an enclave produces a *quote* — (measurement, report data, platform id)
signed by the platform's hardware root key — and a verifier checks the
quote against an :class:`AttestationService` that vouches for genuine
platforms (the stand-in for Intel's attestation service).

The report data field carries 64 application bytes; K-Protocol locks the
fingerprint of the enclave's transaction public key `pk_tx` into it, which
is what defeats man-in-the-middle key substitution (paper §3.2.2).

Local attestation (same-platform enclave-to-enclave, used between the KM
and CS enclaves in §5.1) is a MAC under a platform-local key.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto import ecdsa
from repro.crypto.hashes import sha256
from repro.errors import AttestationError
from repro.tee.enclave import Enclave, Measurement, Platform

REPORT_DATA_SIZE = 64


@dataclass(frozen=True)
class Quote:
    """A remotely verifiable attestation of an enclave."""

    measurement: Measurement
    report_data: bytes
    platform_id: str
    signature: ecdsa.Signature

    def signed_payload(self) -> bytes:
        return (
            self.measurement.digest
            + self.report_data
            + self.platform_id.encode()
        )


@dataclass(frozen=True)
class LocalReport:
    """A same-platform attestation report (MACed, not signed)."""

    measurement: Measurement
    report_data: bytes
    mac: bytes


def _pad_report_data(report_data: bytes) -> bytes:
    if len(report_data) > REPORT_DATA_SIZE:
        raise AttestationError(
            f"report data limited to {REPORT_DATA_SIZE} bytes, got {len(report_data)}"
        )
    return report_data + b"\x00" * (REPORT_DATA_SIZE - len(report_data))


def create_quote(enclave: Enclave, report_data: bytes = b"") -> Quote:
    """Produce a quote for the enclave, signed by the platform root key."""
    data = _pad_report_data(report_data)
    payload = enclave.measurement.digest + data + enclave.platform.platform_id.encode()
    signature = ecdsa.sign(enclave.platform.root_key.private, payload)
    return Quote(enclave.measurement, data, enclave.platform.platform_id, signature)


def create_local_report(enclave: Enclave, report_data: bytes = b"") -> LocalReport:
    """Produce a local report verifiable by enclaves on the same platform."""
    data = _pad_report_data(report_data)
    key = enclave.platform.local_report_key()
    mac = hmac.new(key, enclave.measurement.digest + data, hashlib.sha256).digest()
    return LocalReport(enclave.measurement, data, mac)


def verify_local_report(platform: Platform, report: LocalReport) -> None:
    """Verify a local report against the platform's report key."""
    key = platform.local_report_key()
    expected = hmac.new(
        key, report.measurement.digest + report.report_data, hashlib.sha256
    ).digest()
    if not hmac.compare_digest(expected, report.mac):
        raise AttestationError("local report MAC mismatch")


class AttestationService:
    """Simulated Intel attestation service.

    Knows the root public keys of genuine platforms (registration stands
    in for the EPID group-join during manufacturing).  Verification checks
    the quote signature and, optionally, an expected measurement.
    """

    def __init__(self):
        self._platforms: dict[str, Platform] = {}

    def register_platform(self, platform: Platform) -> None:
        self._platforms[platform.platform_id] = platform

    def verify(self, quote: Quote, expected_measurement: Measurement | None = None) -> None:
        platform = self._platforms.get(quote.platform_id)
        if platform is None:
            raise AttestationError(f"unknown platform '{quote.platform_id}'")
        if not ecdsa.verify(
            platform.root_key.public, quote.signed_payload(), quote.signature
        ):
            raise AttestationError("quote signature invalid")
        if expected_measurement and quote.measurement != expected_measurement:
            raise AttestationError(
                "measurement mismatch: expected "
                f"{expected_measurement.hex()[:16]}…, got {quote.measurement.hex()[:16]}…"
            )

    @staticmethod
    def report_data_for_key(public_key_bytes: bytes) -> bytes:
        """Canonical report-data binding for a public key fingerprint."""
        return sha256(public_key_bytes)[:32]
