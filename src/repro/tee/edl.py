"""EDL-style boundary interface declarations.

Intel's Enclave Definition Language annotates every pointer parameter of
an ecall/ocall with a direction ([in], [out], [in, out]) or `user_check`.
Directed buffers are copied across the boundary (the Edger8r-generated
proxy performs copy-and-check); `user_check` skips the copy and makes
memory safety the programmer's problem (paper §5.3, "Optimized data
structure").

Here an :class:`EdlInterface` registers each boundary function together
with its parameter annotations; the enclave dispatcher consults it to
decide which byte arguments to copy (and charge for).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import EnclaveError


class Direction(enum.Enum):
    IN = "in"
    OUT = "out"
    INOUT = "in,out"
    USER_CHECK = "user_check"


@dataclass(frozen=True)
class EdlParam:
    """Annotation for one parameter of a boundary function."""

    name: str
    direction: Direction = Direction.IN


@dataclass
class EdlFunction:
    """A declared ecall or ocall with its marshalling contract."""

    name: str
    handler: Callable
    params: tuple[EdlParam, ...] = ()
    is_ocall: bool = False

    def copied_sizes(self, args: tuple) -> int:
        """Total bytes the proxy would copy for this call's arguments."""
        total = 0
        for param, arg in zip(self.params, args):
            if param.direction is Direction.USER_CHECK:
                continue
            if isinstance(arg, (bytes, bytearray, memoryview)):
                total += len(arg)
        return total


@dataclass
class EdlInterface:
    """The full trusted/untrusted interface of one enclave."""

    ecalls: dict[str, EdlFunction] = field(default_factory=dict)
    ocalls: dict[str, EdlFunction] = field(default_factory=dict)

    def declare_ecall(
        self, name: str, handler: Callable, params: tuple[EdlParam, ...] = ()
    ) -> None:
        if name in self.ecalls:
            raise EnclaveError(f"duplicate ecall declaration: {name}")
        self.ecalls[name] = EdlFunction(name, handler, params, is_ocall=False)

    def declare_ocall(
        self, name: str, handler: Callable, params: tuple[EdlParam, ...] = ()
    ) -> None:
        if name in self.ocalls:
            raise EnclaveError(f"duplicate ocall declaration: {name}")
        self.ocalls[name] = EdlFunction(name, handler, params, is_ocall=True)
