"""Exit-less enclave monitoring (paper §5.3, "Improved enclave's monitor
system").

Status cannot be read out of an enclave without crossing the boundary;
doing an ocall per status line would be prohibitively expensive.  CONFIDE
implements an Eleos-style exit-less call: the enclave appends status
records into a lock-free ring buffer living in *untrusted* memory, and an
untrusted polling thread drains it asynchronously.

The simulation keeps the two cost paths honest:

- :meth:`EnclaveMonitor.emit_exitless` appends to the ring buffer without
  charging a transition;
- :meth:`EnclaveMonitor.emit_ocall` charges a full ocall, so benchmarks
  can show why the exit-less design matters.

Only error/status strings cross — never application data (paper: "The
status information contains only error messages which are not related to
any application data").  The ring buffer itself lives in
:mod:`repro.obs.ring` so the span tracer shares the identical exit-less
path; ``RingBuffer`` is re-exported here for backward compatibility, and
``RingBuffer.dropped`` is surfaced as the
``confide_monitor_ring_dropped_total`` metric by
:func:`repro.obs.collect.collect_monitor_ring`.
"""

from __future__ import annotations

from repro.obs.ring import RingBuffer
from repro.tee.enclave import Enclave

__all__ = ["EnclaveMonitor", "RingBuffer"]


class EnclaveMonitor:
    """Status pipeline between one enclave and the host monitor system."""

    def __init__(self, enclave: Enclave, capacity: int = 1024):
        self.enclave = enclave
        self.ring = RingBuffer(capacity)
        self._collected: list[str] = []
        enclave.register_ocall("monitor_emit", self._ocall_sink)

    def _ocall_sink(self, message: bytes):
        self._collected.append(message.decode())

    def emit_exitless(self, message: str) -> None:
        """In-enclave status emit via the exit-less path (no transition)."""
        self.ring.put(message)

    def emit_ocall(self, message: str) -> None:
        """In-enclave status emit via a full ocall (the expensive baseline)."""
        self.enclave.ocall("monitor_emit", message.encode())

    def poll(self) -> list[str]:
        """Untrusted poller: drain the ring into the monitor system."""
        drained = self.ring.drain()
        self._collected.extend(drained)
        return drained

    @property
    def collected(self) -> list[str]:
        return list(self._collected)
