"""Exit-less enclave monitoring (paper §5.3, "Improved enclave's monitor
system").

Status cannot be read out of an enclave without crossing the boundary;
doing an ocall per status line would be prohibitively expensive.  CONFIDE
implements an Eleos-style exit-less call: the enclave appends status
records into a lock-free ring buffer living in *untrusted* memory, and an
untrusted polling thread drains it asynchronously.

The simulation keeps the two cost paths honest:

- :meth:`EnclaveMonitor.emit_exitless` appends to the ring buffer without
  charging a transition;
- :meth:`EnclaveMonitor.emit_ocall` charges a full ocall, so benchmarks
  can show why the exit-less design matters.

Only error/status strings cross — never application data (paper: "The
status information contains only error messages which are not related to
any application data").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tee.enclave import Enclave


@dataclass
class RingBuffer:
    """Single-producer/single-consumer overwrite-oldest ring buffer."""

    capacity: int = 1024
    _slots: list[str | None] = field(default_factory=list)
    _head: int = 0  # next write position
    _tail: int = 0  # next read position
    dropped: int = 0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self._slots = [None] * self.capacity

    def __len__(self) -> int:
        return self._head - self._tail

    def put(self, item: str) -> None:
        if len(self) == self.capacity:
            self._tail += 1  # overwrite oldest
            self.dropped += 1
        self._slots[self._head % self.capacity] = item
        self._head += 1

    def get(self) -> str | None:
        if self._tail == self._head:
            return None
        item = self._slots[self._tail % self.capacity]
        self._tail += 1
        return item

    def drain(self) -> list[str]:
        out = []
        while (item := self.get()) is not None:
            out.append(item)
        return out


class EnclaveMonitor:
    """Status pipeline between one enclave and the host monitor system."""

    def __init__(self, enclave: Enclave, capacity: int = 1024):
        self.enclave = enclave
        self.ring = RingBuffer(capacity)
        self._collected: list[str] = []
        enclave.register_ocall("monitor_emit", self._ocall_sink)

    def _ocall_sink(self, message: bytes):
        self._collected.append(message.decode())

    def emit_exitless(self, message: str) -> None:
        """In-enclave status emit via the exit-less path (no transition)."""
        self.ring.put(message)

    def emit_ocall(self, message: str) -> None:
        """In-enclave status emit via a full ocall (the expensive baseline)."""
        self.enclave.ocall("monitor_emit", message.encode())

    def poll(self) -> list[str]:
        """Untrusted poller: drain the ring into the monitor system."""
        drained = self.ring.drain()
        self._collected.extend(drained)
        return drained

    @property
    def collected(self) -> list[str]:
        return list(self._collected)
