"""Software SGX-enclave simulator.

Provides the trust semantics CONFIDE relies on — isolation, measurement,
attestation, sealing — plus an explicit cost model for the hardware
effects a simulation cannot exhibit (transitions, boundary copies, EPC
paging).  See DESIGN.md for the substitution argument.
"""

from repro.tee.attestation import (
    AttestationService,
    LocalReport,
    Quote,
    create_local_report,
    create_quote,
    verify_local_report,
)
from repro.tee.edl import Direction, EdlInterface, EdlParam
from repro.tee.enclave import Enclave, Measurement, Platform
from repro.tee.epc import EPC_USABLE_BYTES, PAGE_SIZE, EpcAllocator, MemoryPool
from repro.tee.monitor import EnclaveMonitor, RingBuffer
from repro.tee.transitions import DEFAULT_COST_MODEL, CostModel, CycleAccountant

__all__ = [
    "AttestationService",
    "CostModel",
    "CycleAccountant",
    "DEFAULT_COST_MODEL",
    "Direction",
    "EPC_USABLE_BYTES",
    "EdlInterface",
    "EdlParam",
    "Enclave",
    "EnclaveMonitor",
    "EpcAllocator",
    "LocalReport",
    "Measurement",
    "MemoryPool",
    "PAGE_SIZE",
    "Platform",
    "Quote",
    "RingBuffer",
    "create_local_report",
    "create_quote",
    "verify_local_report",
]
