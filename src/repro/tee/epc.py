"""Enclave Page Cache (EPC) simulator.

SGX v1 exposes 128 MB of protected physical memory of which only about
93.5 MB is usable by enclaves (paper §5.3, citing SCONE and SPEICHER).
Memory demand beyond that triggers page swapping: a victim page is
encrypted and evicted to untrusted memory, and decrypted back on access.

The pager models exactly this: enclave allocations reserve 4 KB pages from
a fixed budget; when the budget is exceeded, least-recently-used resident
pages are evicted (each swap charged to the :class:`CycleAccountant`),
and touching an evicted allocation pages it back in.

A freelist-backed :class:`MemoryPool` mode models the paper's OPT1
"efficient memory management": pooled allocations reuse freed pages,
avoiding both fragmentation growth and per-allocation overhead.

Allocations can optionally carry *content* (:meth:`EpcAllocator.store_bytes`
/ :meth:`EpcAllocator.read_bytes`).  Content follows SGX paging
semantics: while the allocation is resident the plaintext lives inside
the protected region; on eviction it is AES-GCM-encrypted under a
per-allocator swap key and only the ciphertext sits in untrusted memory
(:meth:`EpcAllocator.evicted_blob` is the attacker's view of it); paging
back in decrypts and destroys the untrusted copy.  The fault-injection
simulator's confidentiality invariant byte-scans those evicted blobs.

Page accounting convention: ``resident_pages`` counts every page backed
by an EPC frame — live allocations *and* pages parked on the OPT1
freelist (they hold real frames until reclaimed).  ``_make_room``
reclaims freelist frames before evicting anyone, and keeps both counters
in step so ``resident_pages`` can never exceed ``budget_pages``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.crypto.entropy import token_bytes
from repro.errors import PagingError
from repro.obs.trace import get_tracer
from repro.tee.transitions import CycleAccountant

PAGE_SIZE = 4096
EPC_TOTAL_BYTES = 128 * 1024 * 1024
EPC_USABLE_BYTES = int(93.5 * 1024 * 1024)

# Without a pool, allocator metadata and fragmentation inflate the real
# footprint of each allocation (paper §5.3: the memory pool exists "to
# reduce fragmentation and improve memory utilization").
_FRAGMENTATION_FACTOR = 1.35


@dataclass
class _Allocation:
    handle: int
    pages: int
    resident: bool


class EpcAllocator:
    """Page-granular allocator with LRU eviction over a fixed EPC budget."""

    def __init__(
        self,
        accountant: CycleAccountant,
        budget_bytes: int = EPC_USABLE_BYTES,
        use_pool: bool = False,
    ):
        self._accountant = accountant
        self._budget_pages = budget_bytes // PAGE_SIZE
        self._use_pool = use_pool
        self._allocs: OrderedDict[int, _Allocation] = OrderedDict()  # LRU order
        self._next_handle = 1
        self._resident_pages = 0
        self._pool_pages_free = 0
        # Page-content model: plaintext only while resident; ciphertext
        # (the untrusted-memory copy) only while evicted.
        self._resident_bytes: dict[int, bytes] = {}
        self._evicted_bytes: dict[int, bytes] = {}
        self._swap_key = token_bytes(16)
        # One allocator serves every enclave on the platform, and the
        # parallel executor allocates from pool threads: the LRU list,
        # the freelist and the page counters move together under a lock
        # (reentrant — touch() runs inside store/read).
        self._lock = threading.RLock()

    @property
    def use_pool(self) -> bool:
        return self._use_pool

    @use_pool.setter
    def use_pool(self, enabled: bool) -> None:
        self._use_pool = enabled

    @property
    def resident_pages(self) -> int:
        return self._resident_pages

    @property
    def budget_pages(self) -> int:
        return self._budget_pages

    @property
    def pool_pages_free(self) -> int:
        """Pages parked on the OPT1 freelist (0 when the pool is off)."""
        return self._pool_pages_free

    def allocate(self, size_bytes: int) -> int:
        """Reserve pages for `size_bytes`; returns an allocation handle."""
        with self._lock:
            if size_bytes <= 0:
                raise PagingError("allocation size must be positive")
            effective = size_bytes if self._use_pool else int(size_bytes * _FRAGMENTATION_FACTOR)
            pages = max(1, (effective + PAGE_SIZE - 1) // PAGE_SIZE)
            if pages > self._budget_pages:
                raise PagingError(
                    f"allocation of {pages} pages exceeds the whole EPC budget "
                    f"of {self._budget_pages} pages"
                )
            self._accountant.charge_alloc(pooled=self._use_pool)
            if self._use_pool and self._pool_pages_free >= pages:
                # Freelist hit: pages are already resident, no paging pressure.
                self._pool_pages_free -= pages
            else:
                if self._use_pool:
                    pages_needed = pages - self._pool_pages_free
                    self._pool_pages_free = 0
                else:
                    pages_needed = pages
                self._make_room(pages_needed)
                self._resident_pages += pages_needed
            handle = self._next_handle
            self._next_handle += 1
            self._allocs[handle] = _Allocation(handle, pages, resident=True)
            return handle

    def free(self, handle: int) -> None:
        """Release an allocation (pooled pages go back to the freelist)."""
        with self._lock:
            alloc = self._allocs.pop(handle, None)
            if alloc is None:
                raise PagingError(f"unknown allocation handle {handle}")
            self._resident_bytes.pop(handle, None)
            self._evicted_bytes.pop(handle, None)
            if not alloc.resident:
                return  # evicted allocations hold no EPC frames
            if self._use_pool:
                self._pool_pages_free += alloc.pages
            else:
                self._resident_pages -= alloc.pages

    def touch(self, handle: int) -> None:
        """Access an allocation; pages it back in if it was evicted."""
        with self._lock:
            alloc = self._allocs.get(handle)
            if alloc is None:
                raise PagingError(f"unknown allocation handle {handle}")
            self._allocs.move_to_end(handle)
            if not alloc.resident:
                self._make_room(alloc.pages)
                self._accountant.charge_page_swaps(alloc.pages)  # page-in decrypt
                get_tracer().instant("epc.page_swap", pages=alloc.pages,
                                     direction="in")
                self._resident_pages += alloc.pages
                alloc.resident = True
                blob = self._evicted_bytes.pop(handle, None)
                if blob is not None:
                    self._resident_bytes[handle] = self._swap_open(handle, blob)

    # -- page content -------------------------------------------------------

    def store_bytes(self, handle: int, data: bytes) -> None:
        """Attach content to an allocation (pages it in if needed)."""
        with self._lock:
            self.touch(handle)
            self._resident_bytes[handle] = bytes(data)

    def read_bytes(self, handle: int) -> bytes:
        """Read an allocation's content back (pages it in if needed)."""
        with self._lock:
            self.touch(handle)
            return self._resident_bytes.get(handle, b"")

    def evicted_blob(self, handle: int) -> bytes | None:
        """The untrusted-memory copy of an evicted allocation's content
        (always ciphertext), or None while the allocation is resident."""
        with self._lock:
            if handle not in self._allocs:
                raise PagingError(f"unknown allocation handle {handle}")
            return self._evicted_bytes.get(handle)

    def evicted_blobs(self) -> dict[int, bytes]:
        """All untrusted-memory page copies, by handle — the complete
        attacker-visible view of swapped-out enclave memory.  The
        simulator's confidentiality invariant byte-scans these."""
        with self._lock:
            return dict(self._evicted_bytes)

    def _swap_gcm(self):
        from repro.crypto.gcm import for_key

        return for_key(self._swap_key)

    def _swap_seal(self, handle: int, plaintext: bytes) -> bytes:
        from repro.crypto.gcm import deterministic_nonce

        aad = b"epc-page:" + handle.to_bytes(8, "big")
        nonce = deterministic_nonce(self._swap_key, plaintext, aad)
        return nonce + self._swap_gcm().seal(nonce, plaintext, aad)

    def _swap_open(self, handle: int, blob: bytes) -> bytes:
        from repro.crypto.gcm import NONCE_SIZE

        aad = b"epc-page:" + handle.to_bytes(8, "big")
        nonce, body = blob[:NONCE_SIZE], blob[NONCE_SIZE:]
        return self._swap_gcm().open(nonce, body, aad)

    # -- paging -------------------------------------------------------------

    def _make_room(self, pages_needed: int) -> None:
        if pages_needed <= 0:
            return
        # resident_pages already counts freelist pages, so free frames are
        # simply budget - resident (subtracting the freelist again would
        # double-count it and report spurious exhaustion).
        free_now = self._budget_pages - self._resident_pages
        if self._use_pool and free_now < pages_needed and self._pool_pages_free:
            # Reclaim freelist frames before evicting anyone else's pages.
            reclaim = min(self._pool_pages_free, pages_needed - free_now)
            self._pool_pages_free -= reclaim
            self._resident_pages -= reclaim
            free_now += reclaim
        while free_now < pages_needed:
            victim = self._find_victim()
            if victim is None:
                raise PagingError("EPC exhausted and nothing evictable")
            victim.resident = False
            self._resident_pages -= victim.pages
            self._accountant.charge_page_swaps(victim.pages)  # encrypt + evict
            get_tracer().instant("epc.page_swap", pages=victim.pages,
                                 direction="out")
            plaintext = self._resident_bytes.pop(victim.handle, None)
            if plaintext is not None:
                self._evicted_bytes[victim.handle] = self._swap_seal(
                    victim.handle, plaintext
                )
            free_now += victim.pages

    def _find_victim(self) -> _Allocation | None:
        for alloc in self._allocs.values():  # OrderedDict: LRU first
            if alloc.resident:
                return alloc
        return None


class MemoryPool:
    """Convenience wrapper configuring an allocator in pooled (OPT1) mode."""

    def __init__(self, accountant: CycleAccountant, budget_bytes: int = EPC_USABLE_BYTES):
        self.allocator = EpcAllocator(accountant, budget_bytes, use_pool=True)

    def allocate(self, size_bytes: int) -> int:
        return self.allocator.allocate(size_bytes)

    def free(self, handle: int) -> None:
        self.allocator.free(handle)
