"""Enclave Page Cache (EPC) simulator.

SGX v1 exposes 128 MB of protected physical memory of which only about
93.5 MB is usable by enclaves (paper §5.3, citing SCONE and SPEICHER).
Memory demand beyond that triggers page swapping: a victim page is
encrypted and evicted to untrusted memory, and decrypted back on access.

The pager models exactly this: enclave allocations reserve 4 KB pages from
a fixed budget; when the budget is exceeded, least-recently-used resident
pages are evicted (each swap charged to the :class:`CycleAccountant`),
and touching an evicted allocation pages it back in.

A freelist-backed :class:`MemoryPool` mode models the paper's OPT1
"efficient memory management": pooled allocations reuse freed pages,
avoiding both fragmentation growth and per-allocation overhead.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import PagingError
from repro.obs.trace import get_tracer
from repro.tee.transitions import CycleAccountant

PAGE_SIZE = 4096
EPC_TOTAL_BYTES = 128 * 1024 * 1024
EPC_USABLE_BYTES = int(93.5 * 1024 * 1024)

# Without a pool, allocator metadata and fragmentation inflate the real
# footprint of each allocation (paper §5.3: the memory pool exists "to
# reduce fragmentation and improve memory utilization").
_FRAGMENTATION_FACTOR = 1.35


@dataclass
class _Allocation:
    handle: int
    pages: int
    resident: bool


class EpcAllocator:
    """Page-granular allocator with LRU eviction over a fixed EPC budget."""

    def __init__(
        self,
        accountant: CycleAccountant,
        budget_bytes: int = EPC_USABLE_BYTES,
        use_pool: bool = False,
    ):
        self._accountant = accountant
        self._budget_pages = budget_bytes // PAGE_SIZE
        self._use_pool = use_pool
        self._allocs: OrderedDict[int, _Allocation] = OrderedDict()  # LRU order
        self._next_handle = 1
        self._resident_pages = 0
        self._pool_pages_free = 0

    @property
    def use_pool(self) -> bool:
        return self._use_pool

    @use_pool.setter
    def use_pool(self, enabled: bool) -> None:
        self._use_pool = enabled

    @property
    def resident_pages(self) -> int:
        return self._resident_pages

    @property
    def budget_pages(self) -> int:
        return self._budget_pages

    @property
    def pool_pages_free(self) -> int:
        """Pages parked on the OPT1 freelist (0 when the pool is off)."""
        return self._pool_pages_free

    def allocate(self, size_bytes: int) -> int:
        """Reserve pages for `size_bytes`; returns an allocation handle."""
        if size_bytes <= 0:
            raise PagingError("allocation size must be positive")
        effective = size_bytes if self._use_pool else int(size_bytes * _FRAGMENTATION_FACTOR)
        pages = max(1, (effective + PAGE_SIZE - 1) // PAGE_SIZE)
        if pages > self._budget_pages:
            raise PagingError(
                f"allocation of {pages} pages exceeds the whole EPC budget "
                f"of {self._budget_pages} pages"
            )
        self._accountant.charge_alloc(pooled=self._use_pool)
        if self._use_pool and self._pool_pages_free >= pages:
            # Freelist hit: pages are already resident, no paging pressure.
            self._pool_pages_free -= pages
        else:
            if self._use_pool:
                pages_needed = pages - self._pool_pages_free
                self._pool_pages_free = 0
            else:
                pages_needed = pages
            self._make_room(pages_needed)
            self._resident_pages += pages_needed
        handle = self._next_handle
        self._next_handle += 1
        self._allocs[handle] = _Allocation(handle, pages, resident=True)
        return handle

    def free(self, handle: int) -> None:
        """Release an allocation (pooled pages go back to the freelist)."""
        alloc = self._allocs.pop(handle, None)
        if alloc is None:
            raise PagingError(f"unknown allocation handle {handle}")
        if not alloc.resident:
            return
        if self._use_pool:
            self._pool_pages_free += alloc.pages
        else:
            self._resident_pages -= alloc.pages

    def touch(self, handle: int) -> None:
        """Access an allocation; pages it back in if it was evicted."""
        alloc = self._allocs.get(handle)
        if alloc is None:
            raise PagingError(f"unknown allocation handle {handle}")
        self._allocs.move_to_end(handle)
        if not alloc.resident:
            self._make_room(alloc.pages)
            self._accountant.charge_page_swaps(alloc.pages)  # page-in decrypt
            get_tracer().instant("epc.page_swap", pages=alloc.pages,
                                 direction="in")
            self._resident_pages += alloc.pages
            alloc.resident = True

    def _make_room(self, pages_needed: int) -> None:
        if pages_needed <= 0:
            return
        free_now = self._budget_pages - self._resident_pages - self._pool_pages_free
        if self._use_pool and free_now < pages_needed and self._pool_pages_free:
            # Shrink the freelist before evicting anyone else's pages.
            reclaim = min(self._pool_pages_free, pages_needed - free_now)
            self._pool_pages_free -= reclaim
            free_now += reclaim
        while free_now < pages_needed:
            victim = self._find_victim()
            if victim is None:
                raise PagingError("EPC exhausted and nothing evictable")
            victim.resident = False
            self._resident_pages -= victim.pages
            self._accountant.charge_page_swaps(victim.pages)  # encrypt + evict
            get_tracer().instant("epc.page_swap", pages=victim.pages,
                                 direction="out")
            free_now += victim.pages

    def _find_victim(self) -> _Allocation | None:
        for alloc in self._allocs.values():  # OrderedDict: LRU first
            if alloc.resident:
                return alloc
        return None


class MemoryPool:
    """Convenience wrapper configuring an allocator in pooled (OPT1) mode."""

    def __init__(self, accountant: CycleAccountant, budget_bytes: int = EPC_USABLE_BYTES):
        self.allocator = EpcAllocator(accountant, budget_bytes, use_pool=True)

    def allocate(self, size_bytes: int) -> int:
        return self.allocator.allocate(size_bytes)

    def free(self, handle: int) -> None:
        self.allocator.free(handle)
