"""Enclave-transition and memory-overhead cost model.

SGX hardware costs cannot occur in a pure-Python simulation, so they are
*accounted*: every ecall/ocall, boundary copy, and EPC page swap accrues
modeled CPU cycles in a :class:`CycleAccountant`.  Benchmarks report
wall-clock time plus this modeled overhead, preserving the paper's cost
shape.

Constants follow the sources the paper cites:

- ocall: 8,314 cycles (cache hit) to 14,160 cycles (cache miss)
  [Weisse et al., HotCalls, ISCA'17 — paper §5.3]
- reference platform: Intel Xeon E3-1240 v6 @ 3.7 GHz, so an ocall is
  "roughly 3–4 us" (paper §5.3)
- EPC page swap: page encryption + eviction, tens of microseconds per
  4 KB page [Orenbach et al., Eleos, EuroSys'17]
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostModel:
    """Tunable hardware-cost constants, in CPU cycles unless noted."""

    cpu_ghz: float = 3.7
    ecall_cycles: int = 8_600
    ocall_cycles_hit: int = 8_314
    ocall_cycles_miss: int = 14_160
    # Fraction of transitions assumed to miss cache (deterministic model).
    ocall_miss_ratio: float = 0.5
    # Copy-and-check marshalling across the boundary, per byte.
    copy_cycles_per_byte: float = 1.5
    # EPC page swap: encrypt + evict or load + decrypt one 4 KB page.
    page_swap_cycles: int = 40_000
    # Per-allocation bookkeeping inside the enclave without a memory pool.
    malloc_cycles: int = 2_000
    # With the memory pool (OPT1) allocation is a freelist pop.
    pool_malloc_cycles: int = 120

    @property
    def ocall_cycles(self) -> float:
        """Blended ocall cost under the configured miss ratio."""
        hit, miss = self.ocall_cycles_hit, self.ocall_cycles_miss
        return hit + (miss - hit) * self.ocall_miss_ratio

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.cpu_ghz * 1e9)


DEFAULT_COST_MODEL = CostModel()


@dataclass
class CycleAccountant:
    """Accumulates modeled hardware cycles and event counters.

    Shared by every enclave on a platform, and — since the parallel block
    executor drives ecalls from pool threads — charged concurrently, so
    the read-modify-write updates are serialized under a lock.
    """

    model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    cycles: float = 0.0
    ecalls: int = 0
    ocalls: int = 0
    bytes_copied: int = 0
    pages_swapped: int = 0
    allocations: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def charge_ecall(self) -> None:
        with self._lock:
            self.ecalls += 1
            self.cycles += self.model.ecall_cycles

    def charge_ocall(self) -> None:
        with self._lock:
            self.ocalls += 1
            self.cycles += self.model.ocall_cycles

    def charge_copy(self, num_bytes: int) -> None:
        with self._lock:
            self.bytes_copied += num_bytes
            self.cycles += num_bytes * self.model.copy_cycles_per_byte

    def charge_page_swaps(self, pages: int) -> None:
        with self._lock:
            self.pages_swapped += pages
            self.cycles += pages * self.model.page_swap_cycles

    def charge_alloc(self, pooled: bool) -> None:
        with self._lock:
            self.allocations += 1
            if pooled:
                self.cycles += self.model.pool_malloc_cycles
            else:
                self.cycles += self.model.malloc_cycles

    @property
    def seconds(self) -> float:
        """Modeled overhead expressed in seconds on the reference CPU."""
        return self.model.cycles_to_seconds(self.cycles)

    def snapshot(self) -> dict[str, float]:
        return {
            "cycles": self.cycles,
            "seconds": self.seconds,
            "ecalls": self.ecalls,
            "ocalls": self.ocalls,
            "bytes_copied": self.bytes_copied,
            "pages_swapped": self.pages_swapped,
            "allocations": self.allocations,
        }

    def reset(self) -> None:
        self.cycles = 0.0
        self.ecalls = 0
        self.ocalls = 0
        self.bytes_copied = 0
        self.pages_swapped = 0
        self.allocations = 0
