"""Software enclave with an enforced trust boundary.

The simulation preserves the *semantics* SGX gives CONFIDE:

- **Isolation** — an enclave's trusted state is only reachable while
  executing inside an ecall; access from outside raises
  :class:`~repro.errors.EnclaveError` (the moral equivalent of an EPCM
  fault).
- **Measurement** — the enclave's code identity is hashed at creation;
  attestation quotes and sealing keys bind to it.
- **Costed transitions** — every ecall/ocall and every directed-buffer
  copy accrues modeled cycles in the platform's accountant, so TEE
  overhead shows up in benchmark output.
- **Paging** — enclave heap allocations go through the platform's shared
  EPC allocator.

Subclasses implement trusted behaviour as ``ecall_*`` methods and
register untrusted services as ocall handlers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.crypto.entropy import token_hex
from repro.crypto.hashes import sha256
from repro.crypto.hkdf import hkdf
from repro.crypto.keys import KeyPair
from repro.errors import EnclaveError
from repro.obs.trace import get_tracer
from repro.tee.edl import Direction, EdlInterface, EdlParam
from repro.tee.epc import EPC_USABLE_BYTES, EpcAllocator
from repro.tee.transitions import DEFAULT_COST_MODEL, CostModel, CycleAccountant


@dataclass(frozen=True)
class Measurement:
    """MRENCLAVE-like identity: hash of the enclave code."""

    digest: bytes

    @classmethod
    def of(cls, name: str, version: int, code_ids: tuple[str, ...]) -> "Measurement":
        material = f"{name}|{version}|{','.join(sorted(code_ids))}".encode()
        return cls(sha256(material))

    def hex(self) -> str:
        return self.digest.hex()


class Platform:
    """A machine that can host enclaves.

    Owns the hardware root of trust (a fused key, simulated by a keypair),
    the EPC budget shared by all enclaves on the machine, and the cycle
    accountant that benchmarks read.
    """

    def __init__(
        self,
        platform_id: str | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        epc_budget_bytes: int = EPC_USABLE_BYTES,
        use_memory_pool: bool = True,
    ):
        self.platform_id = platform_id or token_hex(8)
        self.accountant = CycleAccountant(model=cost_model)
        self.epc = EpcAllocator(
            self.accountant, budget_bytes=epc_budget_bytes, use_pool=use_memory_pool
        )
        # Simulates the fused hardware key pair used for quote signing.
        self.root_key = KeyPair.from_seed(b"platform-root:" + self.platform_id.encode())
        # Platform-local secret for local attestation / sealing derivation.
        self._local_secret = hkdf(
            self.root_key.private.to_bytes(32, "big"), info=b"platform-local-secret"
        )
        self.enclaves: list["Enclave"] = []

    def sealing_key(self, measurement: Measurement) -> bytes:
        """MRENCLAVE-policy sealing key (stable across enclave restarts)."""
        return hkdf(self._local_secret, info=b"seal:" + measurement.digest, length=16)

    def local_report_key(self) -> bytes:
        """Shared key enclaves on this platform use for local attestation."""
        return hkdf(self._local_secret, info=b"local-report", length=16)

    def local_channel_key(self, m_a: "Measurement", m_b: "Measurement") -> bytes:
        """Secure-channel key between two enclaves on this platform.

        Models the local-attestation-established channel the KM enclave
        uses to provision secrets into the CS enclave (paper §5.1); only
        code running on this platform can derive it, and it binds both
        endpoint measurements.
        """
        pair = b"|".join(sorted((m_a.digest, m_b.digest)))
        return hkdf(self._local_secret, info=b"local-channel:" + pair, length=16)


class Enclave:
    """Base class for simulated enclaves.

    Subclasses define trusted entry points as methods named ``ecall_<x>``;
    those are auto-registered. Untrusted services are attached with
    :meth:`register_ocall`. State that must stay confidential belongs in
    attributes accessed through :attr:`trusted`, which enforces the
    boundary.
    """

    VERSION = 1

    def __init__(self, platform: Platform, name: str):
        self.platform = platform
        self.name = name
        self._interface = EdlInterface()
        # Per-thread call depth models SGX TCS entries: each thread enters
        # through its own Thread Control Structure, so one thread sitting
        # in an ocall must not strip another thread's in-enclave status.
        self._tls = threading.local()
        self._destroyed = False
        self._trusted_state: dict = {}
        self._heap_handles: list[int] = []
        code_ids = tuple(m for m in dir(self) if m.startswith("ecall_"))
        self.measurement = Measurement.of(type(self).__name__, self.VERSION, code_ids)
        for method_name in code_ids:
            short = method_name[len("ecall_") :]
            self._interface.declare_ecall(short, getattr(self, method_name))
        platform.enclaves.append(self)

    # -- trust boundary ----------------------------------------------------

    @property
    def _depth(self) -> int:
        return getattr(self._tls, "depth", 0)

    @_depth.setter
    def _depth(self, value: int) -> None:
        self._tls.depth = value

    @property
    def trusted(self) -> dict:
        """Trusted in-enclave state; raises if accessed from outside."""
        if self._depth == 0:
            raise EnclaveError(
                f"attempt to read trusted memory of enclave '{self.name}' "
                "from outside an ecall"
            )
        return self._trusted_state

    @property
    def inside(self) -> bool:
        return self._depth > 0

    # -- lifecycle ----------------------------------------------------------

    def destroy(self) -> None:
        """Tear down the enclave, releasing its EPC pages (paper §5.3:
        the KM enclave 'will be destroyed as soon as possible to release
        EPC memory')."""
        if self._destroyed:
            return
        for handle in self._heap_handles:
            self.platform.epc.free(handle)
        self._heap_handles.clear()
        self._trusted_state.clear()
        self._destroyed = True

    @property
    def destroyed(self) -> bool:
        return self._destroyed

    # -- boundary calls -----------------------------------------------------

    def ecall(self, name: str, *args, user_check: bool = False):
        """Enter the enclave through a declared ecall."""
        if self._destroyed:
            raise EnclaveError(f"enclave '{self.name}' is destroyed")
        func = self._interface.ecalls.get(name)
        if func is None:
            raise EnclaveError(f"unknown ecall '{name}' on enclave '{self.name}'")
        accountant = self.platform.accountant
        accountant.charge_ecall()
        if not user_check:
            copied = sum(
                len(a) for a in args if isinstance(a, (bytes, bytearray, memoryview))
            )
            accountant.charge_copy(copied)
            args = tuple(
                bytes(a) if isinstance(a, (bytearray, memoryview)) else a for a in args
            )
        self._depth += 1
        try:
            tracer = get_tracer()
            if not tracer.enabled:
                return func.handler(*args)
            with tracer.span("tee.ecall", op=name) as span:
                cycles_before = accountant.cycles
                try:
                    return func.handler(*args)
                finally:
                    span.set("cycles", accountant.cycles - cycles_before)
        finally:
            self._depth -= 1

    def register_ocall(self, name: str, handler, params: tuple[EdlParam, ...] = ()):
        """Attach an untrusted service the enclave may call out to."""
        self._interface.declare_ocall(name, handler, params)

    def ocall(self, name: str, *args, user_check: bool = False):
        """Call out of the enclave to a registered untrusted handler."""
        if self._depth == 0:
            raise EnclaveError("ocall issued while not executing inside the enclave")
        func = self._interface.ocalls.get(name)
        if func is None:
            raise EnclaveError(f"unknown ocall '{name}' on enclave '{self.name}'")
        accountant = self.platform.accountant
        accountant.charge_ocall()
        if not user_check:
            copied = func.copied_sizes(args) if func.params else sum(
                len(a) for a in args if isinstance(a, (bytes, bytearray, memoryview))
            )
            accountant.charge_copy(copied)
        # Leave the enclave for the duration of the untrusted handler.
        depth, self._depth = self._depth, 0
        try:
            tracer = get_tracer()
            if not tracer.enabled:
                return func.handler(*args)
            with tracer.span("tee.ocall", op=name) as span:
                cycles_before = accountant.cycles
                try:
                    return func.handler(*args)
                finally:
                    span.set("cycles", accountant.cycles - cycles_before)
        finally:
            self._depth = depth

    # -- heap ----------------------------------------------------------------

    def malloc(self, size_bytes: int) -> int:
        """Allocate enclave heap (EPC-backed); returns a handle."""
        handle = self.platform.epc.allocate(size_bytes)
        self._heap_handles.append(handle)
        return handle

    def free(self, handle: int) -> None:
        self.platform.epc.free(handle)
        self._heap_handles.remove(handle)

    def touch(self, handle: int) -> None:
        self.platform.epc.touch(handle)

    # -- sealing ---------------------------------------------------------------

    def seal(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Seal data to this enclave identity on this platform."""
        from repro.crypto.gcm import AesGcm, deterministic_nonce

        key = self.platform.sealing_key(self.measurement)
        nonce = deterministic_nonce(key, plaintext, aad)
        return nonce + AesGcm(key).seal(nonce, plaintext, aad)

    def unseal(self, sealed: bytes, aad: bytes = b"") -> bytes:
        from repro.crypto.gcm import NONCE_SIZE, AesGcm

        if len(sealed) < NONCE_SIZE:
            raise EnclaveError("sealed blob too short")
        key = self.platform.sealing_key(self.measurement)
        nonce, body = sealed[:NONCE_SIZE], sealed[NONCE_SIZE:]
        return AesGcm(key).open(nonce, body, aad)


_ = Direction  # re-exported for annotation convenience
