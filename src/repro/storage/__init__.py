"""Storage substrate: pluggable KV stores, RLP, and merkle commitments."""

from repro.storage.kv import AppendLogKV, KVStore, MemoryKV, NamespacedKV
from repro.storage.lsm import LsmKV, StorageSealer
from repro.storage.merkle import (
    EMPTY_ROOT,
    MerkleProof,
    MerkleTree,
    ProofStep,
    state_root,
    verify_proof,
)
from repro.storage.rlp import decode, decode_int, encode, encode_int

__all__ = [
    "AppendLogKV",
    "EMPTY_ROOT",
    "KVStore",
    "LsmKV",
    "MemoryKV",
    "StorageSealer",
    "MerkleProof",
    "MerkleTree",
    "NamespacedKV",
    "ProofStep",
    "decode",
    "decode_int",
    "encode",
    "encode_int",
    "state_root",
    "verify_proof",
]
