"""Binary merkle trees: block transaction roots, state commitments, and
SPV inclusion proofs.

The paper's security model (§3.3) leans on two commitments:

- each block header commits to its transactions (so a single malicious
  node cannot forge history), and
- each block commits to the post-state, so "only the transactions whose
  results are computed based on the latest states can pass the consensus
  phase" — replicas cross-check state roots.

Both are served by :class:`MerkleTree`.  A *consensus read* from a
possibly-malicious node is verified with :func:`verify_proof` against a
root learned from a quorum (see :mod:`repro.chain.spv`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import sha256
from repro.errors import StorageError

EMPTY_ROOT = sha256(b"repro-empty-merkle")

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _hash_leaf(data: bytes) -> bytes:
    return sha256(_LEAF_PREFIX + data)


def _hash_node(left: bytes, right: bytes) -> bytes:
    return sha256(_NODE_PREFIX + left + right)


@dataclass(frozen=True)
class ProofStep:
    """One sibling on the path from a leaf to the root."""

    sibling: bytes
    sibling_on_left: bool


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof for one leaf."""

    leaf_index: int
    leaf_data_hash: bytes
    steps: tuple[ProofStep, ...]


class MerkleTree:
    """Binary merkle tree over a fixed list of byte leaves.

    Odd nodes are promoted (not duplicated), so the tree is well defined
    for any leaf count; the empty tree has the distinguished
    :data:`EMPTY_ROOT`.
    """

    def __init__(self, leaves: list[bytes]):
        self._leaf_hashes = [_hash_leaf(leaf) for leaf in leaves]
        self._levels: list[list[bytes]] = [list(self._leaf_hashes)]
        level = self._levels[0]
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(_hash_node(level[i], level[i + 1]))
            if len(level) & 1:
                nxt.append(level[-1])
            self._levels.append(nxt)
            level = nxt

    @property
    def root(self) -> bytes:
        if not self._leaf_hashes:
            return EMPTY_ROOT
        return self._levels[-1][0]

    def __len__(self) -> int:
        return len(self._leaf_hashes)

    def prove(self, index: int) -> MerkleProof:
        """Build an inclusion proof for the leaf at `index`."""
        if not 0 <= index < len(self._leaf_hashes):
            raise StorageError(f"leaf index {index} out of range")
        steps: list[ProofStep] = []
        pos = index
        for level in self._levels[:-1]:
            if pos ^ 1 < len(level):
                # The promoted-odd-node case has no sibling at this level.
                if (pos | 1) < len(level) or pos & 1:
                    sibling_pos = pos ^ 1
                    steps.append(
                        ProofStep(level[sibling_pos], sibling_on_left=bool(pos & 1))
                    )
            pos //= 2
        return MerkleProof(index, self._leaf_hashes[index], tuple(steps))


def verify_proof(root: bytes, leaf: bytes, proof: MerkleProof) -> bool:
    """Check that `leaf` is committed under `root` by `proof`."""
    node = _hash_leaf(leaf)
    if node != proof.leaf_data_hash:
        return False
    for step in proof.steps:
        if step.sibling_on_left:
            node = _hash_node(step.sibling, node)
        else:
            node = _hash_node(node, step.sibling)
    return node == root


def state_root(items: dict[bytes, bytes]) -> bytes:
    """Commitment to a whole KV state: merkle root over sorted pairs."""
    leaves = [
        len(k).to_bytes(4, "big") + k + v for k, v in sorted(items.items())
    ]
    return MerkleTree(leaves).root
