"""Key-value stores backing blockchain state.

Consortium blockchains let operators bring their own KV store (paper §1:
"storage module may be loosely coupled ... to allow users choose their own
KV stores"), so everything above this layer programs against
:class:`KVStore`.  Three implementations ship:

- :class:`MemoryKV` — dict-backed, for tests and in-process nodes.
- :class:`AppendLogKV` — a persistent append-only log with an in-memory
  index; used to measure realistic block-write latencies for §6.4.
- :class:`NamespacedKV` — a prefix view used to give each contract its own
  keyspace.

Stores also support write batches so a block's state delta commits
atomically.
"""

from __future__ import annotations

import os
import struct
import zlib
from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Iterator

from repro.errors import StorageError


class KVStore(ABC):
    """Minimal byte-oriented KV interface."""

    @abstractmethod
    def get(self, key: bytes) -> bytes | None:
        """Return the value for key, or None if absent."""

    @abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite key."""

    @abstractmethod
    def delete(self, key: bytes) -> None:
        """Remove key if present (no error if absent)."""

    @abstractmethod
    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Iterate all (key, value) pairs in unspecified order."""

    def has(self, key: bytes) -> bool:
        return self.get(key) is not None

    def write_batch(self, puts: dict[bytes, bytes], deletes: set[bytes] = frozenset()) -> None:
        """Apply a batch of writes; default is sequential, subclasses may
        override for atomic/efficient commits."""
        for key in deletes:
            self.delete(key)
        for key, value in puts.items():
            self.put(key, value)

    def items_with_prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        for key, value in self.items():
            if key.startswith(prefix):
                yield key, value

    @contextmanager
    def block_batch(self):
        """Scope under which every write belongs to one block commit.

        The default is a no-op (writes apply as they happen); stores
        with a write-ahead log override this to stage the scope's writes
        and commit them as a single atomic record, so crash recovery
        always lands on a block boundary.
        """
        yield self


class MemoryKV(KVStore):
    """In-memory store."""

    def __init__(self):
        self._data: dict[bytes, bytes] = {}

    def get(self, key: bytes) -> bytes | None:
        return self._data.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self._data[bytes(key)] = bytes(value)

    def delete(self, key: bytes) -> None:
        self._data.pop(key, None)

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        return iter(list(self._data.items()))

    def __len__(self) -> int:
        return len(self._data)

    def snapshot(self) -> dict[bytes, bytes]:
        return dict(self._data)


_RECORD_HEADER = struct.Struct(">IBII")  # crc32, op, key len, value len
_OP_PUT = 1
_OP_DELETE = 2
_MAX_LOG_FIELD = 1 << 28  # sanity bound for lengths read from a torn tail


class AppendLogKV(KVStore):
    """Durable append-only log store with an in-memory index.

    Records are ``(crc32, op, klen, vlen, key, value)`` where the CRC
    covers everything after itself; the full log is replayed on open.  A
    torn tail (record cut short by a crash, or failing its CRC) is
    truncated back to the last complete record rather than refusing to
    open — the prefix before it is intact and usable.  ``sync=True``
    fsyncs on every batch commit, which is what the §6.4
    block-write-latency bench measures.
    """

    def __init__(self, path: str, sync: bool = False):
        self._path = path
        self._sync = sync
        self._index: dict[bytes, bytes] = {}
        self._file = None
        self.truncated_bytes = 0
        if os.path.exists(path):
            self._replay()
        self._file = open(path, "ab")

    def _replay(self) -> None:
        with open(self._path, "rb") as f:
            data = f.read()
        pos = 0
        good_end = 0
        while pos < len(data):
            header = data[pos:pos + _RECORD_HEADER.size]
            if len(header) < _RECORD_HEADER.size:
                break  # torn header
            crc, op, klen, vlen = _RECORD_HEADER.unpack(header)
            if klen > _MAX_LOG_FIELD or vlen > _MAX_LOG_FIELD:
                break  # garbage lengths from a torn record
            body = data[pos + _RECORD_HEADER.size:
                        pos + _RECORD_HEADER.size + klen + vlen]
            if len(body) < klen + vlen:
                break  # torn body
            if zlib.crc32(header[4:] + body) != crc:
                break  # torn or bit-rotted record
            key, value = body[:klen], body[klen:]
            if op == _OP_PUT:
                self._index[key] = value
            elif op == _OP_DELETE:
                self._index.pop(key, None)
            else:
                break  # unknown op: treat as corruption, keep the prefix
            pos += _RECORD_HEADER.size + klen + vlen
            good_end = pos
        if good_end < len(data):
            self.truncated_bytes = len(data) - good_end
            with open(self._path, "r+b") as f:
                f.truncate(good_end)

    @staticmethod
    def _record(op: int, key: bytes, value: bytes) -> bytes:
        tail = struct.pack(">BII", op, len(key), len(value)) + key + value
        return struct.pack(">I", zlib.crc32(tail)) + tail

    def _append(self, op: int, key: bytes, value: bytes) -> None:
        if self._file is None:
            raise StorageError("store is closed")
        self._file.write(self._record(op, key, value))

    def get(self, key: bytes) -> bytes | None:
        return self._index.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        key, value = bytes(key), bytes(value)
        self._append(_OP_PUT, key, value)
        self._flush()
        self._index[key] = value

    def delete(self, key: bytes) -> None:
        if key in self._index:
            self._append(_OP_DELETE, key, b"")
            self._flush()
            del self._index[key]

    def write_batch(self, puts: dict[bytes, bytes], deletes: set[bytes] = frozenset()) -> None:
        # Build the whole batch first and touch the index only after the
        # flush succeeds, so a write error cannot leave the in-memory
        # view ahead of the durable log.
        records = []
        for key in deletes:
            if key in self._index:
                records.append((_OP_DELETE, bytes(key), b""))
        staged = {bytes(k): bytes(v) for k, v in puts.items()}
        records.extend((_OP_PUT, k, v) for k, v in staged.items())
        for op, key, value in records:
            self._append(op, key, value)
        self._flush()
        for key in deletes:
            self._index.pop(key, None)
        self._index.update(staged)

    def _flush(self) -> None:
        assert self._file is not None
        self._file.flush()
        if self._sync:
            os.fsync(self._file.fileno())

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        return iter(list(self._index.items()))

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "AppendLogKV":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._index)


class NamespacedKV(KVStore):
    """A prefixed view over another store (per-contract keyspaces)."""

    def __init__(self, inner: KVStore, namespace: bytes):
        self._inner = inner
        self._prefix = bytes(namespace) + b"\x00"

    def _wrap(self, key: bytes) -> bytes:
        return self._prefix + key

    def get(self, key: bytes) -> bytes | None:
        return self._inner.get(self._wrap(key))

    def put(self, key: bytes, value: bytes) -> None:
        self._inner.put(self._wrap(key), value)

    def delete(self, key: bytes) -> None:
        self._inner.delete(self._wrap(key))

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        plen = len(self._prefix)
        for key, value in self._inner.items_with_prefix(self._prefix):
            yield key[plen:], value
