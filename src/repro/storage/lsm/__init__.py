"""Persistent encrypted LSM storage engine (docs/storage.md).

A real storage backend behind the :class:`~repro.storage.kv.KVStore`
interface: a checksummed write-ahead log with atomic batch framing
(:mod:`wal`), a sorted memtable (:mod:`memtable`) flushed into immutable
SSTable segments with block indexes and bloom filters (:mod:`sstable`),
size-tiered compaction (:mod:`compaction`), a block cache (:mod:`cache`),
and a sealed monotonic root manifest that refuses rolled-back or
mix-and-match segment sets on open (:mod:`manifest`).

Confidentiality at rest follows the paper's D-Protocol posture: state
values are already sealed by the Confidential-Engine before they reach
the KV layer, and the engine adds whole-file sealing (WAL records,
SSTable blocks, the manifest) under an SDM/D-Protocol- or
platform-derived key so *nothing* the node persists — not even public
metadata, key bytes or block bodies — is readable off the disk.
"""

from repro.storage.lsm.cache import BlockCache
from repro.storage.lsm.db import LsmKV, LsmStats
from repro.storage.lsm.manifest import (
    CounterFreshness,
    PlatformFreshness,
    RootManifest,
    SegmentRecord,
)
from repro.storage.lsm.memtable import TOMBSTONE, Memtable
from repro.storage.lsm.seal import StorageSealer
from repro.storage.lsm.sstable import SSTableReader, write_sstable
from repro.storage.lsm.wal import WriteAheadLog

__all__ = [
    "BlockCache",
    "CounterFreshness",
    "LsmKV",
    "LsmStats",
    "Memtable",
    "PlatformFreshness",
    "RootManifest",
    "SSTableReader",
    "SegmentRecord",
    "StorageSealer",
    "TOMBSTONE",
    "WriteAheadLog",
    "write_sstable",
]
