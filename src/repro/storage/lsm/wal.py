"""Checksummed write-ahead log with atomic batch framing.

Every committed batch (a block's worth of puts/deletes, or a single
standalone write) becomes exactly one WAL record::

    [crc32 u32][length u32][payload]

``crc32`` covers the length field and the payload, so a torn write —
the tail of the file cut mid-record by a crash — is detected and the
file is truncated back to the last complete record on open.  Either a
whole batch is recovered or none of it is; a reader can never observe
half a block.

The payload is an RLP list ``[[op, key, value], ...]`` (op ``\\x01`` put,
``\\x02`` delete), optionally sealed: with a :class:`StorageSealer` the
record payload on disk is AES-GCM ciphertext whose AAD binds the WAL
sequence number *and the record's index within the generation*, so
records can neither be spliced between log generations nor reordered,
duplicated, or dropped within one — recovery opens record *i* under
index *i*, and any displaced record fails authentication.

A CRC/short-read failure at the tail is *torn-write tolerance*
(truncate and continue); a record whose CRC verifies but whose seal does
not open is *tampering* and raises :class:`StorageError`.

Group commit
------------
With ``sync=True``, durability is decoupled from the append: every
append writes + flushes its record under the log's I/O lock and takes a
ticket; :meth:`ensure_durable` then elects the first waiter as *leader*,
who runs one ``os.fsync`` — outside the I/O lock, so appends keep
streaming in behind it — covering every record written up to its
snapshot.  Waiters that arrive while a fsync is in flight coalesce into
the next one — N concurrent committers pay ~2 fsyncs, not N.  A failed fsync is sticky:
the log is poisoned and every later append/wait fails closed, because a
record whose durability was reported lost can never be un-reported
(the PostgreSQL fsync-retry lesson).  A serial writer degrades to
exactly one fsync per append, same as before.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib

from repro.errors import StorageError
from repro.storage import rlp
from repro.storage.lsm.seal import StorageSealer

_FRAME = struct.Struct(">II")  # crc32, payload length
OP_PUT = b"\x01"
OP_DELETE = b"\x02"

_MAX_RECORD = 1 << 28  # 256 MB sanity bound on one batch


def fsync_dir(directory: str) -> None:
    """Flush a directory entry (new file / rename) to stable storage."""
    fd = os.open(directory or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _encode_batch(puts: dict[bytes, bytes], deletes) -> bytes:
    items: list[list[bytes]] = []
    for key in sorted(deletes):
        items.append([OP_DELETE, bytes(key), b""])
    for key, value in puts.items():
        items.append([OP_PUT, bytes(key), bytes(value)])
    return rlp.encode(items)


def _decode_batch(payload: bytes) -> tuple[dict[bytes, bytes], set[bytes]]:
    items = rlp.decode(payload)
    if not isinstance(items, list):
        raise StorageError("WAL batch payload is not a list")
    puts: dict[bytes, bytes] = {}
    deletes: set[bytes] = set()
    for item in items:
        if not isinstance(item, list) or len(item) != 3:
            raise StorageError("malformed WAL batch entry")
        op, key, value = item
        if op == OP_PUT:
            puts[key] = value
        elif op == OP_DELETE:
            deletes.add(key)
        else:
            raise StorageError(f"unknown WAL op {op!r}")
    return puts, deletes


class WriteAheadLog:
    """One WAL generation (``wal-<seq>.log``)."""

    def __init__(
        self,
        path: str,
        seq: int = 0,
        sync: bool = False,
        sealer: StorageSealer | None = None,
        read_only: bool = False,
    ):
        self.path = path
        self.seq = seq
        self._sync = sync
        self._sealer = sealer
        self._read_only = read_only
        self.bytes_written = 0
        self.records_written = 0
        self.truncated_bytes = 0
        self.fsyncs = 0
        self.recovered: list[tuple[dict[bytes, bytes], set[bytes]]] = []
        # Group-commit state: tickets are per-generation append counters;
        # _durable_ticket trails _appended_ticket until a fsync catches up.
        self._io_lock = threading.Lock()
        self._sync_cond = threading.Condition(threading.Lock())
        self._appended_ticket = 0
        self._durable_ticket = 0
        self._fsync_leader = False
        self._sync_error: BaseException | None = None
        existed = os.path.exists(path)
        if existed:
            self._recover()
        # Appends continue the per-generation record index where the
        # recovered (post-truncation) prefix left off.
        self._next_index = len(self.recovered)
        if read_only:
            self._file = None
        else:
            self._file = open(path, "ab")
            if sync and not existed:
                fsync_dir(os.path.dirname(path))

    def _context(self, index: int) -> bytes:
        return (b"wal:" + self.seq.to_bytes(8, "big")
                + b":" + index.to_bytes(8, "big"))

    def _recover(self) -> None:
        """Replay complete records; truncate a torn tail in place
        (unless the log was opened ``read_only``)."""
        good_end = 0
        with open(self.path, "rb") as f:
            data = f.read()
        pos = 0
        while pos < len(data):
            frame = data[pos:pos + _FRAME.size]
            if len(frame) < _FRAME.size:
                break  # torn frame header
            crc, length = _FRAME.unpack(frame)
            if length > _MAX_RECORD:
                break  # garbage length from a torn/overwritten frame
            payload = data[pos + _FRAME.size:pos + _FRAME.size + length]
            if len(payload) < length:
                break  # torn payload
            if zlib.crc32(frame[4:] + payload) != crc:
                break  # torn or bit-rotted tail record
            if self._sealer is not None:
                # CRC says the record is complete; a seal that will not
                # open is tampering, not a torn write.  The AAD index
                # also makes reordered/dropped/duplicated interior
                # records fail here.
                payload = self._sealer.open(
                    payload, self._context(len(self.recovered))
                )
            self.recovered.append(_decode_batch(payload))
            pos += _FRAME.size + length
            good_end = pos
        if good_end < len(data):
            self.truncated_bytes = len(data) - good_end
            if not self._read_only:
                with open(self.path, "r+b") as f:
                    f.truncate(good_end)

    def append(self, puts: dict[bytes, bytes], deletes=frozenset()) -> int:
        """Durably frame one batch; returns bytes appended."""
        ticket, nbytes = self.append_async(puts, deletes)
        if self._sync:
            self.ensure_durable(ticket)
        return nbytes

    def append_async(
        self, puts: dict[bytes, bytes], deletes=frozenset()
    ) -> tuple[int, int]:
        """Write + flush one batch without waiting for durability.

        Returns ``(ticket, bytes_appended)``.  The caller must pass the
        ticket to :meth:`ensure_durable` before reporting the commit —
        this is the group-commit path: append under the store lock, wait
        for the (coalesced) fsync outside it.
        """
        with self._io_lock:
            if self._file is None:
                raise StorageError(
                    "WAL is read-only" if self._read_only else "WAL is closed"
                )
            if self._sync_error is not None:
                raise StorageError(
                    f"WAL poisoned by earlier fsync failure: {self._sync_error}"
                )
            payload = _encode_batch(puts, deletes)
            if self._sealer is not None:
                payload = self._sealer.seal(
                    payload, self._context(self._next_index)
                )
            frame = _FRAME.pack(
                zlib.crc32(struct.pack(">I", len(payload)) + payload),
                len(payload),
            )
            record = frame + payload
            self._file.write(record)
            self._file.flush()
            self.bytes_written += len(record)
            self.records_written += 1
            self._next_index += 1
            self._appended_ticket += 1
            return self._appended_ticket, len(record)

    def ensure_durable(self, ticket: int) -> None:
        """Block until every record up to ``ticket`` is fsynced.

        No-op unless the log is ``sync``.  The first waiter becomes the
        fsync leader; everyone whose record was already written rides
        the same fsync.
        """
        if not self._sync:
            return
        while True:
            with self._sync_cond:
                while True:
                    if self._sync_error is not None:
                        raise StorageError(
                            "WAL poisoned by earlier fsync failure: "
                            f"{self._sync_error}"
                        )
                    if self._durable_ticket >= ticket:
                        return
                    if not self._fsync_leader:
                        self._fsync_leader = True
                        break
                    self._sync_cond.wait()
            # Leader: snapshot the appended frontier under the I/O lock,
            # then fsync OUTSIDE both locks — appends stream in behind the
            # in-flight fsync and the next leader covers them all.  That
            # overlap window is where the coalescing comes from; fsyncing
            # under the I/O lock would stall every append and degrade to
            # one fsync per commit.
            error: BaseException | None = None
            stale_fd = False
            with self._io_lock:
                target = self._appended_ticket
                file = self._file
            if file is None:
                # Closed while we waited for leadership; close() already
                # made everything durable.
                target = max(target, ticket)
            else:
                try:
                    os.fsync(file.fileno())
                    self.fsyncs += 1
                except (OSError, ValueError) as exc:
                    # Rotation/close may have closed the fd mid-fsync.
                    with self._io_lock:
                        stale_fd = self._file is not file
                    error = exc
            with self._sync_cond:
                self._fsync_leader = False
                if error is not None and stale_fd and self._sync_error is None:
                    # A clean close() fsyncs before closing the fd, so the
                    # frontier we snapshotted is durable despite the error.
                    error = None
                if error is not None:
                    if self._sync_error is None:
                        self._sync_error = error
                    self._sync_cond.notify_all()
                    raise StorageError(
                        f"WAL fsync failed: {error}"
                    ) from error
                if target > self._durable_ticket:
                    self._durable_ticket = target
                self._sync_cond.notify_all()

    def close(self) -> None:
        """Close the log; with ``sync``, a final fsync makes every
        appended record durable first (so rotation at memtable freeze
        never strands an un-synced commit)."""
        with self._io_lock:
            if self._file is None:
                return
            if self._sync and self._sync_error is None:
                os.fsync(self._file.fileno())
                self.fsyncs += 1
            self._file.close()
            self._file = None
            durable = self._appended_ticket
        with self._sync_cond:
            self._durable_ticket = max(self._durable_ticket, durable)
            self._sync_cond.notify_all()

    def crash(self) -> None:
        """Drop the handle without any shutdown work (simulated crash)."""
        with self._io_lock:
            if self._file is not None:
                self._file.close()
                self._file = None
        with self._sync_cond:
            if self._sync_error is None:
                self._sync_error = StorageError("WAL crashed")
            self._sync_cond.notify_all()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def replay_file(
    path: str, seq: int = 0, sealer: StorageSealer | None = None
) -> list[tuple[dict[bytes, bytes], set[bytes]]]:
    """Recover a WAL file read-only (used by ``repro db verify``):
    a torn tail is skipped, not truncated, and the file is never opened
    for writing, so verifying a live WAL cannot mutate it."""
    wal = WriteAheadLog(path, seq=seq, sealer=sealer, read_only=True)
    return list(wal.recovered)
