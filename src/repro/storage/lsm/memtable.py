"""The mutable in-memory write buffer in front of the SSTable segments.

Writes land here (after the WAL framed them durably) and reads check
here first.  Deletes are recorded as :data:`TOMBSTONE` markers so they
shadow older segment entries until compaction drops them at the bottom
tier.  ``approximate_bytes`` drives the flush threshold; sorting is
deferred to flush time (one ``sorted()`` instead of per-insert work).
"""

from __future__ import annotations

from typing import Iterator

TOMBSTONE = None  # sentinel value for a delete marker

_ENTRY_OVERHEAD = 32  # rough per-entry bookkeeping cost


class Memtable:
    """Unordered dict of the newest writes; sorted on flush."""

    def __init__(self) -> None:
        self._data: dict[bytes, bytes | None] = {}
        self.approximate_bytes = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    def get(self, key: bytes) -> tuple[bool, bytes | None]:
        """(present, value) — value is TOMBSTONE for a buffered delete."""
        if key in self._data:
            return True, self._data[key]
        return False, None

    def put(self, key: bytes, value: bytes) -> None:
        self._account(key, self._data.get(key), bytes(value))
        self._data[bytes(key)] = bytes(value)

    def delete(self, key: bytes) -> None:
        self._account(key, self._data.get(key), TOMBSTONE)
        self._data[bytes(key)] = TOMBSTONE

    def _account(self, key: bytes, old: bytes | None, new: bytes | None) -> None:
        if key not in self._data:
            self.approximate_bytes += len(key) + _ENTRY_OVERHEAD
        else:
            self.approximate_bytes -= len(old) if old is not None else 0
        self.approximate_bytes += len(new) if new is not None else 0

    def apply(self, puts: dict[bytes, bytes], deletes=frozenset()) -> None:
        for key in deletes:
            self.delete(key)
        for key, value in puts.items():
            self.put(key, value)

    def items_sorted(self) -> Iterator[tuple[bytes, bytes | None]]:
        """All entries (tombstones included), sorted by key — the flush
        order an SSTable requires."""
        for key in sorted(self._data):
            yield key, self._data[key]

    def items(self) -> Iterator[tuple[bytes, bytes | None]]:
        return iter(list(self._data.items()))

    def clear(self) -> None:
        self._data.clear()
        self.approximate_bytes = 0
