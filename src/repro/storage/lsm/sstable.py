"""Immutable sorted-segment files (SSTables).

Layout::

    [block 0][block 1]...[bloom][index][footer]

- **data blocks** — runs of sorted ``[key, op, value]`` entries, RLP
  encoded, sealed as a unit when the store is confidential, and framed
  ``[crc32 u32][len u32][blob]`` so structural integrity is checkable
  without the seal key (``repro db verify``).  The CRC covers the
  on-disk (post-seal) bytes.
- **bloom filter** — double-hashed, ~10 bits/key, consulted before the
  index so absent keys usually cost zero block reads.
- **block index** — ``[first_key, offset, length]`` per block; binary
  search picks the one candidate block for a point lookup.
- **footer** — fixed-size trailer locating bloom + index, carrying the
  segment id and entry count, CRC'd.

Tombstones are real entries (op ``\\x02``): a flushed delete must shadow
live values in older segments until compaction reaches the bottom tier.
"""

from __future__ import annotations

import os
import struct
import zlib
from bisect import bisect_right
from dataclasses import dataclass

from repro.crypto.hashes import sha256
from repro.errors import StorageError
from repro.storage import rlp
from repro.storage.lsm.cache import BlockCache
from repro.storage.lsm.seal import StorageSealer
from repro.storage.lsm.wal import OP_DELETE, OP_PUT, fsync_dir

_BLOCK_FRAME = struct.Struct(">II")  # crc32, length
_FOOTER = struct.Struct(">QQIQIQII")
# segment_id, bloom_off, bloom_len, index_off, index_len, entry_count,
# version, footer_crc
_VERSION = 1
_BLOOM_BITS_PER_KEY = 10
_BLOOM_HASHES = 5

DEFAULT_BLOCK_BYTES = 4096


def _bloom_hashes(key: bytes) -> tuple[int, int]:
    digest = sha256(b"sst-bloom:" + key)
    return (
        int.from_bytes(digest[:8], "big"),
        int.from_bytes(digest[8:16], "big") | 1,
    )


class BloomFilter:
    """Double-hashing bloom filter over the segment's keys."""

    def __init__(self, bits: bytearray):
        self._bits = bits
        self._m = len(bits) * 8

    @classmethod
    def build(cls, keys: list[bytes]) -> "BloomFilter":
        m = max(64, len(keys) * _BLOOM_BITS_PER_KEY)
        bloom = cls(bytearray((m + 7) // 8))
        for key in keys:
            bloom.add(key)
        return bloom

    def add(self, key: bytes) -> None:
        h1, h2 = _bloom_hashes(key)
        for i in range(_BLOOM_HASHES):
            bit = (h1 + i * h2) % self._m
            self._bits[bit // 8] |= 1 << (bit % 8)

    def might_contain(self, key: bytes) -> bool:
        h1, h2 = _bloom_hashes(key)
        for i in range(_BLOOM_HASHES):
            bit = (h1 + i * h2) % self._m
            if not self._bits[bit // 8] & (1 << (bit % 8)):
                return False
        return True

    def encode(self) -> bytes:
        return bytes(self._bits)


def _frame(blob: bytes) -> bytes:
    return _BLOCK_FRAME.pack(zlib.crc32(blob), len(blob)) + blob


def _unframe(data: bytes, offset: int, length: int) -> bytes:
    raw = data[offset:offset + length]
    if len(raw) < _BLOCK_FRAME.size:
        raise StorageError("SSTable block frame truncated")
    crc, blob_len = _BLOCK_FRAME.unpack(raw[:_BLOCK_FRAME.size])
    blob = raw[_BLOCK_FRAME.size:]
    if len(blob) != blob_len or zlib.crc32(blob) != crc:
        raise StorageError("SSTable block checksum mismatch")
    return blob


def write_sstable(
    path: str,
    segment_id: int,
    entries,  # iterable of (key, value_or_TOMBSTONE), sorted by key
    sealer: StorageSealer | None = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    sync: bool = False,
) -> "SegmentMeta":
    """Write one immutable segment; returns its metadata.  ``sync``
    additionally fsyncs the directory so the rename survives power loss.

    Sealing is batched: blocks are chunked and RLP-encoded first, their
    on-disk offsets laid out up front (a sealed blob's size is a pure
    function of its plaintext length), then every block is sealed in
    one :meth:`StorageSealer.seal_many` pass.  Byte-identical to the
    old per-block sealing — pinned by tests/test_storage_lsm.py.
    """
    plain_blocks: list[bytes] = []
    first_keys: list[bytes] = []
    keys: list[bytes] = []
    current: list[list[bytes]] = []
    current_first: bytes | None = None
    current_size = 0
    count = 0
    last_key: bytes | None = None

    def cut_block(block_entries, first_key):
        plain_blocks.append(rlp.encode(block_entries))
        first_keys.append(first_key)

    for key, value in entries:
        key = bytes(key)
        if last_key is not None and key <= last_key:
            raise StorageError("SSTable entries must be strictly sorted")
        last_key = key
        op = OP_DELETE if value is None else OP_PUT
        entry = [key, op, b"" if value is None else bytes(value)]
        if current_first is None:
            current_first = key
        current.append(entry)
        keys.append(key)
        count += 1
        current_size += len(key) + len(entry[2]) + 8
        if current_size >= block_bytes:
            cut_block(current, current_first)
            current, current_first, current_size = [], None, 0
    if current:
        cut_block(current, current_first)

    # Lay out offsets before sealing (the block context binds each blob
    # to its offset, and sealed sizes are deterministic), then seal the
    # whole segment in one pass.
    offsets: list[int] = []
    offset = 0
    for blob in plain_blocks:
        offsets.append(offset)
        body_len = (StorageSealer.sealed_size(len(blob))
                    if sealer is not None else len(blob))
        offset += _BLOCK_FRAME.size + body_len
    if sealer is not None:
        sid = segment_id.to_bytes(8, "big")
        contexts = [b"sst:" + sid + b":" + off.to_bytes(8, "big")
                    for off in offsets]
        sealed_blocks = sealer.seal_many(plain_blocks, contexts)
    else:
        sealed_blocks = plain_blocks
    blocks = [_frame(blob) for blob in sealed_blocks]
    index = [
        [first_key, rlp.encode_int(off), rlp.encode_int(len(framed))]
        for first_key, off, framed in zip(first_keys, offsets, blocks)
    ]

    bloom_blob = BloomFilter.build(keys).encode()
    index_blob = rlp.encode(index)
    if sealer is not None:
        sid = segment_id.to_bytes(8, "big")
        bloom_blob = sealer.seal(bloom_blob, b"sst-bloom:" + sid)
        index_blob = sealer.seal(index_blob, b"sst-index:" + sid)
    bloom_framed = _frame(bloom_blob)
    index_framed = _frame(index_blob)

    bloom_off = offset
    index_off = bloom_off + len(bloom_framed)
    footer_wo_crc = _FOOTER.pack(
        segment_id, bloom_off, len(bloom_framed), index_off,
        len(index_framed), count, _VERSION, 0,
    )[:-4]
    footer = footer_wo_crc + struct.pack(">I", zlib.crc32(footer_wo_crc))

    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        for block in blocks:
            f.write(block)
        f.write(bloom_framed)
        f.write(index_framed)
        f.write(footer)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    if sync:
        fsync_dir(os.path.dirname(path))
    size = os.path.getsize(path)
    with open(path, "rb") as f:
        checksum = zlib.crc32(f.read())
    return SegmentMeta(segment_id, os.path.basename(path), size, checksum, count)


@dataclass(frozen=True)
class SegmentMeta:
    """What the manifest records about one segment file."""

    segment_id: int
    filename: str
    size: int
    checksum: int
    count: int


class SSTableReader:
    """Random and sequential access over one segment file.

    The bloom filter and block index live in memory; data blocks load on
    demand through the shared :class:`BlockCache`.
    """

    def __init__(
        self,
        path: str,
        sealer: StorageSealer | None = None,
        cache: BlockCache | None = None,
    ):
        self.path = path
        self._sealer = sealer
        self._cache = cache
        with open(path, "rb") as f:
            self._data = f.read()
        if len(self._data) < _FOOTER.size:
            raise StorageError(f"SSTable {path} too small for a footer")
        footer = self._data[-_FOOTER.size:]
        (self.segment_id, bloom_off, bloom_len, index_off, index_len,
         self.count, version, footer_crc) = _FOOTER.unpack(footer)
        if zlib.crc32(footer[:-4]) != footer_crc:
            raise StorageError(f"SSTable {path} footer checksum mismatch")
        if version != _VERSION:
            raise StorageError(f"SSTable {path} has unknown version {version}")
        sid = self.segment_id.to_bytes(8, "big")
        bloom_blob = _unframe(self._data, bloom_off, bloom_len)
        index_blob = _unframe(self._data, index_off, index_len)
        if sealer is not None:
            bloom_blob = sealer.open(bloom_blob, b"sst-bloom:" + sid)
            index_blob = sealer.open(index_blob, b"sst-index:" + sid)
        self._bloom = BloomFilter(bytearray(bloom_blob))
        self._index: list[tuple[bytes, int, int]] = [
            (entry[0], rlp.decode_int(entry[1]), rlp.decode_int(entry[2]))
            for entry in rlp.decode(index_blob)
        ]
        self._first_keys = [entry[0] for entry in self._index]

    @property
    def size(self) -> int:
        return len(self._data)

    def _load_block(self, offset: int, length: int) -> list[list[bytes]]:
        blob = _unframe(self._data, offset, length)
        if self._sealer is not None:
            context = (b"sst:" + self.segment_id.to_bytes(8, "big")
                       + b":" + offset.to_bytes(8, "big"))
            blob = self._sealer.open(blob, context)
        entries = rlp.decode(blob)
        return entries if isinstance(entries, list) else []

    def _block(self, offset: int, length: int) -> list[list[bytes]]:
        if self._cache is None:
            return self._load_block(offset, length)

        def loader():
            block = self._load_block(offset, length)
            size = sum(len(e[0]) + len(e[2]) + 16 for e in block)
            return block, size

        return self._cache.get_or_load(self.segment_id, offset, loader)

    def get(self, key: bytes) -> tuple[bool, bytes | None]:
        """(found, value) — value is None for a tombstone hit."""
        if not self._index or not self._bloom.might_contain(key):
            return False, None
        pos = bisect_right(self._first_keys, key) - 1
        if pos < 0:
            return False, None
        _, offset, length = self._index[pos]
        for entry_key, op, value in self._block(offset, length):
            if entry_key == key:
                return True, (None if op == OP_DELETE else value)
            if entry_key > key:
                break
        return False, None

    def items(self):
        """All entries in key order, tombstones as (key, None)."""
        for _, offset, length in self._index:
            for entry_key, op, value in self._block(offset, length):
                yield entry_key, (None if op == OP_DELETE else value)

    def warm(self, offset: int) -> bool:
        """Pre-load the block at ``offset`` into the shared cache.

        Used by manifest-driven cache warming on reopen; an offset that
        no longer names a block (the segment was rewritten) is ignored.
        """
        pos = bisect_right([e[1] for e in self._index], offset) - 1
        if pos < 0:
            return False
        _, block_offset, length = self._index[pos]
        if block_offset != offset:
            return False
        self._block(block_offset, length)
        return True

    def verify_blocks(self) -> int:
        """Structural check: every block frame's CRC (works sealed)."""
        checked = 0
        for _, offset, length in self._index:
            _unframe(self._data, offset, length)
            checked += 1
        return checked
