"""The sealed, monotonic root manifest — the database's trust anchor.

The manifest names the exact set of live SSTable segments (with sizes
and checksums), the current WAL generation, and an application-supplied
binding (the chain state root, for node databases).  It is the single
commit point of the store: a flush or compaction becomes visible only
when the next manifest epoch lands, via atomic write-then-rename.

Freshness (Brandenburger et al.: persisted TEE state needs rollback
protection) is enforced with a **monotonic epoch counter** kept outside
the database — on the platform object for enclave-backed stores, which
models an SGX monotonic counter / TPM NV index surviving process
crashes.  On open:

- ``epoch < counter`` → the host restored an old manifest → **refused**;
- ``epoch > counter + 1`` → a forged future manifest → **refused**;
- ``epoch == counter + 1`` → the crash window between manifest write
  and counter advance → accepted, counter re-advanced;
- a *missing* manifest while the counter is non-zero → refused (deleting
  the manifest is just rollback to epoch 0).

Mix-and-match protection: every listed segment's size and CRC must match
the file on disk, so substituting an old segment under a current
manifest fails closed.  With a :class:`StorageSealer` the manifest body
is AES-GCM sealed (AAD binds the plaintext epoch in the header), so a
host cannot forge or reshuffle the manifest itself.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage import rlp
from repro.storage.lsm.seal import StorageSealer
from repro.storage.lsm.sstable import SegmentMeta
from repro.storage.lsm.wal import fsync_dir

MANIFEST_NAME = "MANIFEST"

_HEADER = struct.Struct(">IQI")  # crc32, epoch, body length


@dataclass(frozen=True)
class SegmentRecord:
    """Manifest entry for one live segment."""

    segment_id: int
    filename: str
    size: int
    checksum: int
    count: int

    @classmethod
    def from_meta(cls, meta: SegmentMeta) -> "SegmentRecord":
        return cls(meta.segment_id, meta.filename, meta.size,
                   meta.checksum, meta.count)


@dataclass(frozen=True)
class RootManifest:
    """One committed epoch of the store."""

    epoch: int
    wal_seq: int
    segments: tuple[SegmentRecord, ...]
    extra: bytes = b""  # application binding, e.g. the chain state root

    def encode(self) -> bytes:
        return rlp.encode([
            rlp.encode_int(self.wal_seq),
            [
                [
                    rlp.encode_int(s.segment_id),
                    s.filename.encode(),
                    rlp.encode_int(s.size),
                    rlp.encode_int(s.checksum),
                    rlp.encode_int(s.count),
                ]
                for s in self.segments
            ],
            self.extra,
        ])

    @classmethod
    def decode(cls, epoch: int, blob: bytes) -> "RootManifest":
        items = rlp.decode(blob)
        if not isinstance(items, list) or len(items) != 3:
            raise StorageError("malformed manifest body")
        segments = tuple(
            SegmentRecord(
                rlp.decode_int(s[0]), s[1].decode(), rlp.decode_int(s[2]),
                rlp.decode_int(s[3]), rlp.decode_int(s[4]),
            )
            for s in items[1]
        )
        return cls(epoch, rlp.decode_int(items[0]), segments, items[2])


# ---------------------------------------------------------------------------
# Structured `extra`: application binding + block-cache warm set
# ---------------------------------------------------------------------------
#
# Historically `extra` carried only the raw chain state root.  To warm the
# block cache across restarts, the store now also persists the hot block
# keys at clean shutdown.  The structured form is magic-prefixed so legacy
# manifests (raw root bytes) keep decoding; the warm set is advisory —
# a reopen that cannot honour it just starts cold.

_EXTRA_MAGIC = b"LSMX1"
MAX_WARM_ENTRIES = 512


def encode_extra(binding: bytes, warm: list[tuple[int, int]]) -> bytes:
    """Pack the application binding + warm block keys into ``extra``."""
    if not warm:
        return bytes(binding)
    return _EXTRA_MAGIC + rlp.encode([
        bytes(binding),
        [
            [rlp.encode_int(segment_id), rlp.encode_int(offset)]
            for segment_id, offset in warm[:MAX_WARM_ENTRIES]
        ],
    ])


def decode_extra(extra: bytes) -> tuple[bytes, list[tuple[int, int]]]:
    """Unpack ``extra`` into (binding, warm keys); legacy raw bytes give
    an empty warm set."""
    if not extra.startswith(_EXTRA_MAGIC):
        return extra, []
    try:
        items = rlp.decode(extra[len(_EXTRA_MAGIC):])
        if not isinstance(items, list) or len(items) != 2:
            raise StorageError("malformed structured manifest extra")
        warm = [
            (rlp.decode_int(pair[0]), rlp.decode_int(pair[1]))
            for pair in items[1]
        ]
        return items[0], warm
    except (StorageError, IndexError, TypeError) as exc:
        raise StorageError(f"malformed structured manifest extra: {exc}")


class CounterFreshness:
    """In-memory monotonic counter (tests, standalone stores)."""

    def __init__(self, value: int = 0):
        self.value = value

    def current(self) -> int:
        return self.value

    def advance(self, epoch: int) -> None:
        self.value = max(self.value, epoch)


class PlatformFreshness:
    """Monotonic counter anchored on a TEE platform object.

    The counter dict lives on the platform (the machine), so it survives
    a process crash exactly like an SGX monotonic counter would — and a
    copied database directory arrives on another platform with no
    counter, where the sealed manifest will not open anyway.
    """

    def __init__(self, platform, name: str = "lsm"):
        self._platform = platform
        self._name = name
        if not hasattr(platform, "monotonic_counters"):
            platform.monotonic_counters = {}

    def current(self) -> int:
        return self._platform.monotonic_counters.get(self._name, 0)

    def advance(self, epoch: int) -> None:
        counters = self._platform.monotonic_counters
        counters[self._name] = max(counters.get(self._name, 0), epoch)


def _context(epoch: int) -> bytes:
    return b"manifest:" + epoch.to_bytes(8, "big")


def write_manifest(
    directory: str,
    manifest: RootManifest,
    sealer: StorageSealer | None = None,
    freshness=None,
    sync: bool = False,
) -> None:
    """Commit one epoch atomically (write tmp, fsync, rename, advance).

    With ``sync`` the directory is fsynced after the rename — without
    it, power loss can forget the rename itself and silently revert the
    store to the previous epoch.
    """
    body = manifest.encode()
    if sealer is not None:
        body = sealer.seal(body, _context(manifest.epoch))
    header_tail = struct.pack(">QI", manifest.epoch, len(body))
    blob = struct.pack(">I", zlib.crc32(header_tail + body)) + header_tail + body
    tmp = os.path.join(directory, MANIFEST_NAME + ".tmp")
    with open(tmp, "wb") as f:
        f.write(blob)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, os.path.join(directory, MANIFEST_NAME))
    if sync:
        fsync_dir(directory)
    if freshness is not None:
        freshness.advance(manifest.epoch)


def read_manifest(
    directory: str,
    sealer: StorageSealer | None = None,
    freshness=None,
) -> RootManifest | None:
    """Load and authenticate the current manifest; enforce freshness.

    Returns None only for a genuinely fresh directory (no manifest *and*
    a zero counter).  Every tampered, torn, rolled-back or
    forged-future manifest raises :class:`StorageError`.
    """
    path = os.path.join(directory, MANIFEST_NAME)
    expected = freshness.current() if freshness is not None else None
    if not os.path.exists(path):
        if expected:
            raise StorageError(
                f"storage rollback detected: manifest missing but the "
                f"monotonic counter says epoch {expected} was committed"
            )
        return None
    with open(path, "rb") as f:
        blob = f.read()
    if len(blob) < _HEADER.size:
        raise StorageError("manifest truncated")
    crc, epoch, body_len = _HEADER.unpack(blob[:_HEADER.size])
    body = blob[_HEADER.size:]
    if len(body) != body_len or zlib.crc32(blob[4:]) != crc:
        raise StorageError("manifest checksum mismatch")
    if expected is not None:
        if epoch < expected:
            raise StorageError(
                f"storage rollback detected: manifest epoch {epoch} is "
                f"older than the monotonic counter ({expected})"
            )
        if epoch > expected + 1:
            raise StorageError(
                f"manifest epoch {epoch} is ahead of the monotonic "
                f"counter ({expected}); refusing a forged future state"
            )
    if sealer is not None:
        body = sealer.open(body, _context(epoch))
    manifest = RootManifest.decode(epoch, body)
    if freshness is not None:
        freshness.advance(epoch)
    return manifest


def verify_segments(directory: str, manifest: RootManifest) -> None:
    """Mix-and-match guard: every listed segment must exist with the
    exact size and checksum the manifest committed."""
    for record in manifest.segments:
        path = os.path.join(directory, record.filename)
        if not os.path.exists(path):
            raise StorageError(
                f"segment {record.filename} named by the manifest is missing"
            )
        size = os.path.getsize(path)
        if size != record.size:
            raise StorageError(
                f"segment {record.filename} size {size} does not match the "
                f"manifest ({record.size}); mixed segment set refused"
            )
        with open(path, "rb") as f:
            checksum = zlib.crc32(f.read())
        if checksum != record.checksum:
            raise StorageError(
                f"segment {record.filename} checksum mismatch; mixed or "
                "substituted segment set refused"
            )
