"""Size-tiered compaction.

Segments are bucketed by size tier (powers of ``tier_base`` over the
flush size); when a tier accumulates ``fanin`` segments they are merged
into one, newest value per key winning.  Tombstones are dropped only
when the merge includes the oldest live segment (nothing older can hold
a value the tombstone still needs to shadow).

Compaction runs opportunistically, piggybacked on flush commits — there
is no background thread, so the store stays deterministic for the fault
simulator while the amortized behavior matches a background compactor.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.storage.lsm.manifest import SegmentRecord


@dataclass(frozen=True)
class CompactionPlan:
    """Which segments to merge, and whether tombstones may drop."""

    segment_ids: tuple[int, ...]
    drop_tombstones: bool


def _tier(size: int, flush_bytes: int, tier_base: int) -> int:
    tier = 0
    threshold = max(flush_bytes, 1)
    while size > threshold:
        tier += 1
        threshold *= tier_base
    return tier


def plan_compaction(
    segments: list[SegmentRecord],
    flush_bytes: int,
    fanin: int = 4,
    tier_base: int = 4,
) -> CompactionPlan | None:
    """Pick the fullest overfull tier (lowest first, so small merges
    happen before they cascade)."""
    if len(segments) < fanin:
        return None
    tiers: dict[int, list[SegmentRecord]] = {}
    for segment in segments:
        tiers.setdefault(
            _tier(segment.size, flush_bytes, tier_base), []
        ).append(segment)
    oldest_id = min(s.segment_id for s in segments)
    for tier in sorted(tiers):
        group = tiers[tier]
        if len(group) >= fanin:
            chosen = sorted(group, key=lambda s: s.segment_id)[:fanin]
            chosen_ids = tuple(s.segment_id for s in chosen)
            return CompactionPlan(
                chosen_ids, drop_tombstones=oldest_id in chosen_ids
            )
    return None


def merge_entries(readers, drop_tombstones: bool):
    """K-way merge of sorted segment iterators, newest segment winning.

    ``readers`` are (segment_id, iterator-of-(key, value_or_None)); the
    output is strictly sorted and ready for :func:`write_sstable`.
    """
    counter = itertools.count()  # heap tiebreaker; values never compare
    heap: list[tuple[bytes, int, int, bytes | None, object]] = []

    def push(neg_id: int, iterator) -> None:
        for key, value in iterator:
            heapq.heappush(heap, (key, neg_id, next(counter), value, iterator))
            return

    for segment_id, iterator in readers:
        # Higher segment_id == newer; negated so the newest version of a
        # key pops first.
        push(-segment_id, iter(iterator))
    while heap:
        key, neg_id, _, value, iterator = heapq.heappop(heap)
        # Discard every older version of the same key, advancing the
        # iterators they came from.
        while heap and heap[0][0] == key:
            _, stale_neg_id, _, _, stale_iter = heapq.heappop(heap)
            push(stale_neg_id, stale_iter)
        if not (value is None and drop_tombstones):
            yield key, value
        push(neg_id, iterator)
