"""Size-tiered compaction.

Segment **recency is manifest order**, not segment id: a flush appends
the newest segment at the end of the manifest list, and a compaction
replaces a contiguous run of segments with its merge *in place*, so the
list stays sorted oldest-to-newest even though merge outputs carry
fresh (high) segment ids.  Reads and merges must therefore rank
segments by manifest position — ranking by id would let a merge output
shadow newer unmerged segments.

Segments are bucketed by size tier (powers of ``tier_base`` over the
flush size); when a tier accumulates ``fanin`` *age-contiguous*
segments they are merged into one, newest version per key winning.
Contiguity is required for correctness: merging around an interleaved
segment from another tier would fold values older and newer than it
into one output, destroying the age ordering the read path relies on.
Tombstones are dropped only when the run starts at the oldest live
segment (nothing older can hold a value the tombstone still needs to
shadow).

Compaction runs opportunistically, piggybacked on flush commits — there
is no background thread, so the store stays deterministic for the fault
simulator while the amortized behavior matches a background compactor.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.storage.lsm.manifest import SegmentRecord


@dataclass(frozen=True)
class CompactionPlan:
    """Which segments to merge, where the merge output lands in the
    manifest order, and whether tombstones may drop."""

    segment_ids: tuple[int, ...]
    position: int  # manifest index of the oldest merged segment
    drop_tombstones: bool


def _tier(size: int, flush_bytes: int, tier_base: int) -> int:
    tier = 0
    threshold = max(flush_bytes, 1)
    while size > threshold:
        tier += 1
        threshold *= tier_base
    return tier


def plan_compaction(
    segments: list[SegmentRecord],
    flush_bytes: int,
    fanin: int = 4,
    tier_base: int = 4,
) -> CompactionPlan | None:
    """Pick the oldest ``fanin`` segments of the lowest overfull
    age-contiguous same-tier run (lowest tier first, so small merges
    happen before they cascade).

    ``segments`` must be in manifest (oldest-to-newest) order.
    """
    if len(segments) < fanin:
        return None
    tiers = [_tier(s.size, flush_bytes, tier_base) for s in segments]
    # Maximal runs of adjacent same-tier segments: (tier, start, length).
    runs: list[tuple[int, int, int]] = []
    start = 0
    for i in range(1, len(segments) + 1):
        if i == len(segments) or tiers[i] != tiers[start]:
            runs.append((tiers[start], start, i - start))
            start = i
    candidates = [run for run in runs if run[2] >= fanin]
    if not candidates:
        return None
    _, start, _ = min(candidates)  # lowest tier, then oldest run
    chosen = segments[start:start + fanin]
    return CompactionPlan(
        segment_ids=tuple(s.segment_id for s in chosen),
        position=start,
        # Only the oldest-prefix run has nothing older to shadow.
        drop_tombstones=start == 0,
    )


def merge_entries(readers, drop_tombstones: bool):
    """K-way merge of sorted segment iterators, newest segment winning.

    ``readers`` are (recency_rank, iterator-of-(key, value_or_None))
    where a higher rank means a newer segment — the caller passes
    manifest positions, since segment ids do not track age across
    compactions.  The output is strictly sorted and ready for
    :func:`write_sstable`.
    """
    counter = itertools.count()  # heap tiebreaker; values never compare
    heap: list[tuple[bytes, int, int, bytes | None, object]] = []

    def push(neg_rank: int, iterator) -> None:
        for key, value in iterator:
            heapq.heappush(heap, (key, neg_rank, next(counter), value, iterator))
            return

    for rank, iterator in readers:
        # Higher rank == newer; negated so the newest version of a key
        # pops first.
        push(-rank, iter(iterator))
    while heap:
        key, neg_rank, _, value, iterator = heapq.heappop(heap)
        # Discard every older version of the same key, advancing the
        # iterators they came from.
        while heap and heap[0][0] == key:
            _, stale_neg_rank, _, _, stale_iter = heapq.heappop(heap)
            push(stale_neg_rank, stale_iter)
        if not (value is None and drop_tombstones):
            yield key, value
        push(neg_rank, iterator)
