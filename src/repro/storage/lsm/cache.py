"""LRU block cache over decoded SSTable blocks.

Keys are ``(segment_id, block_offset)``; values are the decoded entry
lists, so a cache hit skips the disk read, the unseal *and* the RLP
decode.  The budget is expressed in (approximate plaintext) bytes, the
same way RocksDB's block cache is sized.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable


class BlockCache:
    """Byte-budgeted LRU of decoded blocks, shared by all segments."""

    def __init__(self, capacity_bytes: int = 1 << 20):
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[tuple[int, int], tuple[object, int]] = (
            OrderedDict()
        )
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_load(
        self, segment_id: int, offset: int,
        loader: Callable[[], tuple[object, int]],
    ):
        """Return the cached block, or load/insert it.  ``loader`` returns
        ``(block, approximate_bytes)``."""
        key = (segment_id, offset)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached[0]
        self.misses += 1
        block, size = loader()
        self._entries[key] = (block, size)
        self._used += size
        while self._used > self.capacity_bytes and len(self._entries) > 1:
            _, (_, evicted_size) = self._entries.popitem(last=False)
            self._used -= evicted_size
            self.evictions += 1
        return block

    def drop_segment(self, segment_id: int) -> None:
        """Invalidate every block of a compacted-away segment."""
        stale = [key for key in self._entries if key[0] == segment_id]
        for key in stale:
            _, size = self._entries.pop(key)
            self._used -= size

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
