"""LRU block cache over decoded SSTable blocks.

Keys are ``(segment_id, block_offset)``; values are the decoded entry
lists, so a cache hit skips the disk read, the unseal *and* the RLP
decode.  The budget is expressed in (approximate plaintext) bytes, the
same way RocksDB's block cache is sized.

The cache is shared by every :class:`SSTableReader` of a store and is
hit concurrently — speculative-execution threads, the serve gateway's
request pool, and the LSM background flush/compaction worker — so all
LRU mutation happens under one lock.  Loads run outside the lock (an
unseal is milliseconds; serializing it would make the cache a reader
bottleneck), which means two racing readers may both load the same
block; the second insert simply wins, costing a duplicate load but
never corrupting accounting.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable


class BlockCache:
    """Byte-budgeted LRU of decoded blocks, shared by all segments."""

    def __init__(self, capacity_bytes: int = 1 << 20):
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[tuple[int, int], tuple[object, int]] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_load(
        self, segment_id: int, offset: int,
        loader: Callable[[], tuple[object, int]],
    ):
        """Return the cached block, or load/insert it.  ``loader`` returns
        ``(block, approximate_bytes)``."""
        key = (segment_id, offset)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return cached[0]
            self.misses += 1
        block, size = loader()
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._used -= previous[1]
            self._entries[key] = (block, size)
            self._used += size
            while self._used > self.capacity_bytes and len(self._entries) > 1:
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._used -= evicted_size
                self.evictions += 1
        return block

    def drop_segment(self, segment_id: int) -> None:
        """Invalidate every block of a compacted-away segment."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == segment_id]
            for key in stale:
                _, size = self._entries.pop(key)
                self._used -= size
                self.evictions += 1

    def hot_keys(self, limit: int) -> list[tuple[int, int]]:
        """Up to ``limit`` cached block keys, most-recently-used first.

        This is the hot set the store persists at close so a reopen can
        pre-load it (block-cache warming).
        """
        with self._lock:
            keys = list(self._entries.keys())
        keys.reverse()
        return keys[:limit]

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
