"""At-rest sealing for storage files.

Everything the LSM engine writes to disk (WAL records, SSTable blocks,
the root manifest) can be sealed with AES-GCM under a key that never
touches the disk itself.  Two derivations are supported:

- **D-Protocol derived** (:meth:`StorageSealer.from_state_cipher`): an
  HKDF subkey of ``k_states``, the same root the SDM seals individual
  state values with (paper §4.3).  Every replica derives the same key,
  so a re-provisioned node can read segments produced before a restart.
- **Platform derived** (:meth:`StorageSealer.from_platform`): SGX
  sealing semantics — the key comes from the platform secret and a
  measured identity, so the database is bound to the machine (and
  enclave identity) that wrote it; a copied directory cannot be opened
  elsewhere.

The AAD of every sealed blob carries a context string (file kind,
segment id, block offset, manifest epoch), so blobs cannot be swapped
between files or repositioned within one — a host shuffling SSTable
blocks produces authentication failures, not silent corruption.

Nonces are synthetic (derived from key, AAD and plaintext, exactly like
the D-Protocol's :class:`~repro.core.d_protocol.StateCipher`), keeping
the on-disk bytes a pure function of the logical content — which the
deterministic simulator relies on.
"""

from __future__ import annotations

from repro.crypto.gcm import NONCE_SIZE, TAG_SIZE, AesGcm, deterministic_nonce
from repro.crypto.hkdf import hkdf
from repro.errors import AuthenticationError, StorageError

STORAGE_SEAL_INFO = b"d-protocol-storage-seal"


class StorageSealer:
    """AEAD wrapper used for whole-file sealing of storage artifacts."""

    def __init__(self, key: bytes, identity: bytes = b""):
        if len(key) not in (16, 32):
            raise StorageError("storage seal key must be an AES key")
        self._key = bytes(key)
        self._gcm = AesGcm(self._key)
        # Mixed into every AAD: the measured identity the data is bound to.
        self.identity = bytes(identity)

    @classmethod
    def from_state_cipher(cls, cipher) -> "StorageSealer":
        """Derive from the D-Protocol root key ``k_states`` (every
        replica derives the same sealer)."""
        return cls(cipher.storage_seal_key(), identity=b"d-protocol")

    @classmethod
    def from_platform(cls, platform, label: bytes = b"lsm-storage") -> "StorageSealer":
        """Derive from the platform sealing secret (machine-bound)."""
        from repro.tee.enclave import Measurement

        measurement = Measurement.of(label.decode(), 1, ())
        key = platform.sealing_key(measurement)
        return cls(key, identity=measurement.digest)

    def _aad(self, context: bytes) -> bytes:
        return self.identity + b"|" + context

    def seal(self, plaintext: bytes, context: bytes) -> bytes:
        aad = self._aad(context)
        nonce = deterministic_nonce(self._key, plaintext, aad)
        return nonce + self._gcm.seal(nonce, plaintext, aad)

    def seal_many(
        self, blobs: list[bytes], contexts: list[bytes]
    ) -> list[bytes]:
        """Seal a batch in one pass, byte-identical to per-blob
        :meth:`seal` calls (the nonce is a pure function of key, AAD and
        plaintext, so batching cannot change the output).  Hoists the
        per-call key/identity setup, which is where the constant cost of
        sealing many small blocks goes.
        """
        if len(blobs) != len(contexts):
            raise StorageError("seal_many needs one context per blob")
        key, gcm, identity = self._key, self._gcm, self.identity
        sealed: list[bytes] = []
        for blob, context in zip(blobs, contexts):
            aad = identity + b"|" + context
            nonce = deterministic_nonce(key, blob, aad)
            sealed.append(nonce + gcm.seal(nonce, blob, aad))
        return sealed

    @staticmethod
    def sealed_size(plaintext_len: int) -> int:
        """On-disk size of a sealed blob: nonce + ciphertext + tag.
        Deterministic, so writers can lay out offsets before sealing."""
        return NONCE_SIZE + plaintext_len + TAG_SIZE

    def open(self, sealed: bytes, context: bytes) -> bytes:
        if len(sealed) < NONCE_SIZE:
            raise StorageError("sealed storage blob too short")
        nonce, body = sealed[:NONCE_SIZE], sealed[NONCE_SIZE:]
        try:
            return self._gcm.open(nonce, body, self._aad(context))
        except AuthenticationError as exc:
            # A blob whose frame CRC verified but whose seal will not
            # open is tampering (wrong key, identity, or context — e.g.
            # a repositioned block), never a torn write: fail closed.
            raise StorageError(
                f"sealed storage blob failed authentication "
                f"(context {context!r}): {exc}"
            ) from exc


def storage_seal_key(k_states: bytes) -> bytes:
    """The D-Protocol storage-seal subkey (see docs/storage.md)."""
    return hkdf(k_states, info=STORAGE_SEAL_INFO, length=16)
