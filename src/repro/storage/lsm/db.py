"""The LSM key-value store behind the :class:`KVStore` interface.

Write path: WAL append (one framed record per batch, group-committed
fsyncs — see :mod:`repro.storage.lsm.wal`) → memtable.  When the
memtable passes its threshold it is **frozen**: the store swaps in a
fresh memtable + a fresh WAL generation and hands the frozen one to a
background worker, so commits never stall behind an SSTable seal or a
compaction merge.  The worker writes the segment, commits a manifest
epoch naming it (+ the new WAL generation), deletes superseded WAL
files, and runs size-tiered compaction — all off the commit path.

Ordering rules for the background pipeline:

- at most ONE frozen memtable exists; a commit that needs to freeze
  while a flush is in flight blocks (natural backpressure, counted in
  ``flush_stall_seconds``);
- the frozen WAL generation stays on disk until the manifest epoch that
  covers its contents lands, so a crash at ANY point replays the
  contiguous run of WAL generations ``>= manifest.wal_seq`` in order —
  recovery still lands exactly on a block boundary;
- a background failure is sticky and **fail-closed**: the error is
  re-raised by the next commit/flush/close, never swallowed;
- a simulated :meth:`crash` drains the worker, which aborts *before*
  publishing a manifest, leaving the directory exactly as the last
  committed WAL record/manifest epoch wrote it.

Read path: active block buffer → memtable → frozen memtable → segments
newest-to-oldest (bloom filter, then block index, through the shared
thread-safe block cache).  At clean shutdown the hot block-key set is
persisted in the manifest's ``extra`` next to the application binding,
and pre-loaded on reopen (block-cache warming).

**Atomic block commits** (:meth:`block_batch`): everything a node writes
while applying one block — every SDM ``kv_set`` ocall, the engine's
scope commits, the block body and receipts — is buffered and lands in
*one* WAL record.  Recovery therefore always lands exactly on a block
boundary: a torn tail can lose the last block(s), never half of one.

Everything on disk can be sealed (see :mod:`repro.storage.lsm.seal`)
and the manifest enforces freshness + segment-set integrity (see
:mod:`repro.storage.lsm.manifest`).
"""

from __future__ import annotations

import glob
import os
import re
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import StorageError
from repro.storage.kv import KVStore
from repro.storage.lsm.cache import BlockCache
from repro.storage.lsm.compaction import merge_entries, plan_compaction
from repro.storage.lsm.manifest import (
    MANIFEST_NAME,
    MAX_WARM_ENTRIES,
    RootManifest,
    SegmentRecord,
    decode_extra,
    encode_extra,
    read_manifest,
    verify_segments,
    write_manifest,
)
from repro.storage.lsm.memtable import TOMBSTONE, Memtable
from repro.storage.lsm.seal import StorageSealer
from repro.storage.lsm.sstable import SSTableReader, write_sstable
from repro.storage.lsm.wal import WriteAheadLog, replay_file

_WAL_PATTERN = "wal-*.log"
_WAL_RE = re.compile(r"^wal-(\d{8})\.log$")
_SEG_PATTERN = "seg-*.sst"


def _wal_path(directory: str, seq: int) -> str:
    return os.path.join(directory, f"wal-{seq:08d}.log")


def _segment_path(directory: str, segment_id: int) -> str:
    return os.path.join(directory, f"seg-{segment_id:08d}.sst")


@dataclass
class LsmStats:
    """Cumulative engine counters (absorbed by ``obs.collect``)."""

    wal_bytes_written: int = 0
    wal_records_written: int = 0
    wal_truncated_bytes: int = 0
    wal_recovered_batches: int = 0
    wal_fsyncs: int = 0
    flushes: int = 0
    flush_bytes: int = 0
    freezes: int = 0
    flush_stall_seconds: float = 0.0
    compactions: int = 0
    compacted_bytes: int = 0
    recovery_seconds: float = 0.0
    warmed_blocks: int = 0
    gets: int = 0
    puts: int = 0
    block_commits: int = 0

    def snapshot(self) -> dict[str, float]:
        return dict(self.__dict__)


@dataclass
class _BlockBuffer:
    """Writes staged inside one :meth:`LsmKV.block_batch`."""

    puts: dict[bytes, bytes] = field(default_factory=dict)
    deletes: set[bytes] = field(default_factory=set)

    def put(self, key: bytes, value: bytes) -> None:
        self.deletes.discard(key)
        self.puts[bytes(key)] = bytes(value)

    def delete(self, key: bytes) -> None:
        self.puts.pop(key, None)
        self.deletes.add(bytes(key))


class LsmKV(KVStore):
    """Persistent, optionally sealed, crash-consistent KV store."""

    def __init__(
        self,
        directory: str,
        *,
        sealer: StorageSealer | None = None,
        freshness=None,
        sync: bool = False,
        memtable_bytes: int = 256 * 1024,
        block_bytes: int = 4096,
        cache_bytes: int = 1 << 20,
        compaction_fanin: int = 4,
        auto_compact: bool = True,
    ):
        self.directory = directory
        self._sealer = sealer
        self._freshness = freshness
        self._sync = sync
        self._memtable_bytes = memtable_bytes
        self._block_bytes = block_bytes
        self._compaction_fanin = compaction_fanin
        self._auto_compact = auto_compact
        self.stats = LsmStats()
        self.cache = BlockCache(cache_bytes)
        self._lock = threading.RLock()
        self._bg_cond = threading.Condition(self._lock)
        self._memtable = Memtable()
        self._buffer: _BlockBuffer | None = None
        self._closed = False
        self._closing = False  # close() in progress: final flush only
        # Background flush/compaction worker state.
        self._frozen: Memtable | None = None
        self._frozen_wal: WriteAheadLog | None = None
        self._bg_thread: threading.Thread | None = None
        self._bg_busy = False
        self._bg_stop = False
        self._bg_error: BaseException | None = None
        self._crashed = False
        self._retired_wal_fsyncs = 0
        os.makedirs(directory, exist_ok=True)

        started = time.perf_counter()
        manifest = read_manifest(directory, sealer, freshness)
        if manifest is None:
            manifest = RootManifest(epoch=1, wal_seq=0, segments=())
            write_manifest(directory, manifest, sealer, freshness, sync=sync)
        else:
            verify_segments(directory, manifest)
        self._manifest = manifest
        self._binding, warm_keys = decode_extra(manifest.extra)
        self._readers: dict[int, SSTableReader] = {}
        for record in manifest.segments:
            self._readers[record.segment_id] = SSTableReader(
                os.path.join(directory, record.filename), sealer, self.cache
            )
        self._next_segment_id = 1 + max(
            (r.segment_id for r in manifest.segments), default=0
        )
        # Stray segment files not named by the manifest are leftovers of a
        # crash between a background SSTable write and its manifest commit
        # (or between a compaction commit and the old-file unlink).
        live_files = {record.filename for record in manifest.segments}
        for stray in glob.glob(os.path.join(directory, _SEG_PATTERN)):
            if os.path.basename(stray) not in live_files:
                os.remove(stray)
        for stray in glob.glob(os.path.join(directory, _SEG_PATTERN + ".tmp")):
            os.remove(stray)

        # WAL recovery.  With rotate-at-freeze there can be several live
        # generations: the frozen one(s) whose flush never committed, plus
        # the generation commits moved on to.  Replay the contiguous run
        # starting at manifest.wal_seq, oldest first; generations below it
        # are fully covered by segments and are deleted.
        wal_seqs: list[int] = []
        for path in glob.glob(os.path.join(directory, _WAL_PATTERN)):
            match = _WAL_RE.match(os.path.basename(path))
            if match is None:
                os.remove(path)
                continue
            seq = int(match.group(1))
            if seq < manifest.wal_seq:
                os.remove(path)
            else:
                wal_seqs.append(seq)
        wal_seqs.sort()
        if wal_seqs:
            expected = list(range(manifest.wal_seq, manifest.wal_seq + len(wal_seqs)))
            if wal_seqs != expected:
                raise StorageError(
                    f"WAL generation gap: found {wal_seqs}, manifest expects a "
                    f"contiguous run from {manifest.wal_seq}; refusing partial "
                    "recovery"
                )
        live_seq = wal_seqs[-1] if wal_seqs else manifest.wal_seq
        recovered_batches = 0
        for seq in wal_seqs[:-1]:
            interior = WriteAheadLog(
                _wal_path(directory, seq), seq=seq, sealer=sealer,
                read_only=True,
            )
            if interior.truncated_bytes:
                raise StorageError(
                    f"WAL generation {seq} has a torn tail but later "
                    "generations exist; refusing mid-sequence data loss"
                )
            for puts, deletes in interior.recovered:
                self._memtable.apply(puts, deletes)
            recovered_batches += len(interior.recovered)
        self._wal = WriteAheadLog(
            _wal_path(directory, live_seq),
            seq=live_seq, sync=sync, sealer=sealer,
        )
        for puts, deletes in self._wal.recovered:
            self._memtable.apply(puts, deletes)
        self.stats.wal_recovered_batches = (
            recovered_batches + len(self._wal.recovered)
        )
        self.stats.wal_truncated_bytes = self._wal.truncated_bytes
        # Block-cache warming: pre-load the hot set the last clean close
        # persisted (LRU→MRU so recency ordering survives the restart).
        warmed = 0
        for segment_id, offset in reversed(warm_keys):
            reader = self._readers.get(segment_id)
            if reader is not None and reader.warm(offset):
                warmed += 1
        self.stats.warmed_blocks = warmed
        self.stats.recovery_seconds = time.perf_counter() - started

    # -- properties ------------------------------------------------------

    @property
    def manifest_epoch(self) -> int:
        return self._manifest.epoch

    @property
    def live_segments(self) -> int:
        return len(self._readers)

    @property
    def sealed(self) -> bool:
        return self._sealer is not None

    def _require_open(self) -> None:
        if self._closed:
            raise StorageError("LSM store is closed")

    def _raise_bg_error(self) -> None:
        if self._bg_error is not None:
            raise StorageError(
                f"background flush/compaction failed: {self._bg_error}"
            ) from self._bg_error

    # -- KVStore interface -----------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        with self._lock:
            self._require_open()
            self.stats.gets += 1
            key = bytes(key)
            if self._buffer is not None:
                if key in self._buffer.puts:
                    return self._buffer.puts[key]
                if key in self._buffer.deletes:
                    return None
            present, value = self._memtable.get(key)
            if present:
                return value if value is not TOMBSTONE else None
            if self._frozen is not None:
                present, value = self._frozen.get(key)
                if present:
                    return value if value is not TOMBSTONE else None
            # Manifest order is age order; segment ids are not (a merge
            # output has a fresh id but old content).
            for record in reversed(self._manifest.segments):
                found, value = self._readers[record.segment_id].get(key)
                if found:
                    return value
            return None

    def put(self, key: bytes, value: bytes) -> None:
        with self._lock:
            self._require_open()
            self.stats.puts += 1
            if self._buffer is not None:
                self._buffer.put(key, value)
                return
            token = self._commit({bytes(key): bytes(value)}, set())
        self._await_durable(token)

    def delete(self, key: bytes) -> None:
        with self._lock:
            self._require_open()
            if self._buffer is not None:
                self._buffer.delete(key)
                return
            token = self._commit({}, {bytes(key)})
        self._await_durable(token)

    def write_batch(self, puts: dict[bytes, bytes], deletes: set[bytes] = frozenset()) -> None:
        with self._lock:
            self._require_open()
            self.stats.puts += len(puts)
            if self._buffer is not None:
                for key in deletes:
                    self._buffer.delete(key)
                for key, value in puts.items():
                    self._buffer.put(key, value)
                return
            token = self._commit(
                {bytes(k): bytes(v) for k, v in puts.items()},
                {bytes(k) for k in deletes},
            )
        self._await_durable(token)

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        with self._lock:
            self._require_open()
            merged: dict[bytes, bytes | None] = {}
            for record in self._manifest.segments:  # oldest first
                for key, value in self._readers[record.segment_id].items():
                    merged[key] = value
            if self._frozen is not None:
                for key, value in self._frozen.items():
                    merged[key] = value
            for key, value in self._memtable.items():
                merged[key] = value
            if self._buffer is not None:
                for key in self._buffer.deletes:
                    merged[key] = None
                for key, value in self._buffer.puts.items():
                    merged[key] = value
            return iter([
                (k, v) for k, v in merged.items() if v is not None
            ])

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    # -- atomic block commits --------------------------------------------

    @contextmanager
    def block_batch(self):
        """Stage every write until exit, then commit them as ONE WAL
        record; on exception nothing is committed (see module doc)."""
        with self._lock:
            self._require_open()
            if self._buffer is not None:
                raise StorageError("block_batch does not nest")
            self._buffer = _BlockBuffer()
        try:
            yield self
        except BaseException:
            with self._lock:
                self._buffer = None
            raise
        else:
            token = None
            with self._lock:
                buffer, self._buffer = self._buffer, None
                if buffer.puts or buffer.deletes:
                    token = self._commit(buffer.puts, buffer.deletes)
                    self.stats.block_commits += 1
            self._await_durable(token)

    # -- write machinery -------------------------------------------------

    def _commit(
        self, puts: dict[bytes, bytes], deletes: set[bytes]
    ) -> tuple[WriteAheadLog, int] | None:
        """Append + apply one batch (caller holds the lock).  Returns a
        durability token to be awaited OUTSIDE the lock, so concurrent
        commits group-commit their fsyncs."""
        self._raise_bg_error()
        wal = self._wal
        ticket, nbytes = wal.append_async(puts, deletes)
        self.stats.wal_bytes_written += nbytes
        self.stats.wal_records_written += 1
        self._memtable.apply(puts, deletes)
        if self._memtable.approximate_bytes >= self._memtable_bytes:
            self._freeze_locked()
            return None  # freeze closed `wal` with a final fsync
        return (wal, ticket) if self._sync else None

    def _await_durable(self, token: tuple[WriteAheadLog, int] | None) -> None:
        if token is not None:
            wal, ticket = token
            wal.ensure_durable(ticket)

    def _freeze_locked(self) -> None:
        """Swap the memtable + WAL generation and hand the frozen pair to
        the background worker.  Blocks while a previous flush is still in
        flight (single-slot backpressure)."""
        if not len(self._memtable):
            return
        stall_started = None
        while (self._frozen is not None and self._bg_error is None
               and not self._crashed and not self._closed):
            if stall_started is None:
                stall_started = time.perf_counter()
            self._bg_cond.wait()
        if stall_started is not None:
            self.stats.flush_stall_seconds += (
                time.perf_counter() - stall_started
            )
        self._require_open()
        self._raise_bg_error()
        old_wal = self._wal
        old_wal.close()  # final fsync (when sync): frozen records durable
        self._frozen = self._memtable
        self._frozen_wal = old_wal
        self._memtable = Memtable()
        new_seq = old_wal.seq + 1
        self._wal = WriteAheadLog(
            _wal_path(self.directory, new_seq),
            seq=new_seq, sync=self._sync, sealer=self._sealer,
        )
        self.stats.freezes += 1
        self._ensure_bg_thread()
        self._bg_cond.notify_all()

    def _ensure_bg_thread(self) -> None:
        if self._bg_thread is None or not self._bg_thread.is_alive():
            self._bg_thread = threading.Thread(
                target=self._bg_loop,
                name=f"lsm-bg-{os.path.basename(self.directory)}",
                daemon=True,
            )
            self._bg_thread.start()

    def _bg_loop(self) -> None:
        while True:
            with self._bg_cond:
                while (self._frozen is None and not self._bg_stop
                       and not self._crashed):
                    self._bg_cond.wait()
                if self._crashed or self._frozen is None:
                    self._bg_busy = False
                    self._bg_cond.notify_all()
                    return
                self._bg_busy = True
                frozen = self._frozen
                frozen_wal = self._frozen_wal
                segment_id = self._next_segment_id
                self._next_segment_id += 1
            error: BaseException | None = None
            try:
                published = self._bg_flush(frozen, frozen_wal, segment_id)
                # No auto-compaction during close(): compaction rewrites
                # the segment set and drops its cache entries, which would
                # empty the hot set right before close persists it for
                # warming.  The next open compacts in the background.
                if published and self._auto_compact and not self._closing:
                    self._bg_compact()
            except BaseException as exc:  # noqa: BLE001 - sticky fail-closed
                error = exc
            with self._bg_cond:
                self._bg_busy = False
                if error is not None and not self._crashed:
                    self._bg_error = error
                self._bg_cond.notify_all()

    def _bg_flush(
        self, frozen: Memtable, frozen_wal: WriteAheadLog, segment_id: int
    ) -> bool:
        """Worker half of a flush: seal the segment OUTSIDE the lock,
        publish the manifest under it.  Returns False on crash-abort."""
        path = _segment_path(self.directory, segment_id)
        meta = write_sstable(
            path, segment_id, frozen.items_sorted(),
            self._sealer, self._block_bytes, sync=self._sync,
        )
        with self._bg_cond:
            if self._crashed:
                # Never publish past a simulated crash: the directory must
                # look exactly as the committed WAL/manifest left it.
                try:
                    os.remove(path)
                except OSError:
                    pass
                return False
            segments = tuple(self._manifest.segments) + (
                SegmentRecord.from_meta(meta),
            )
            self._publish_manifest(segments, frozen_wal.seq + 1)
            self._retired_wal_fsyncs += frozen_wal.fsyncs
            self._readers[segment_id] = SSTableReader(
                path, self._sealer, self.cache,
            )
            self._frozen = None
            self._frozen_wal = None
            self.stats.flushes += 1
            self.stats.flush_bytes += meta.size
            self._bg_cond.notify_all()
        return True

    def _bg_compact(self) -> None:
        """Size-tiered compaction rounds, merge work outside the lock.

        Only the background worker mutates the segment set, so the plan
        taken under the lock stays valid across the unlocked merge."""
        while True:
            with self._bg_cond:
                if (self._crashed or self._closed or self._closing
                        or self._bg_error is not None):
                    return
                plan = plan_compaction(
                    list(self._manifest.segments), self._memtable_bytes,
                    self._compaction_fanin,
                )
                if plan is None:
                    return
                chosen = {
                    chosen_id: self._readers[chosen_id]
                    for chosen_id in plan.segment_ids
                }
                segment_id = self._next_segment_id
                self._next_segment_id += 1
                merged_bytes = sum(r.size for r in chosen.values())
            readers = [
                (rank, chosen[chosen_id].items())
                for rank, chosen_id in enumerate(plan.segment_ids)
            ]
            path = _segment_path(self.directory, segment_id)
            meta = write_sstable(
                path, segment_id,
                merge_entries(readers, plan.drop_tombstones),
                self._sealer, self._block_bytes, sync=self._sync,
            )
            with self._bg_cond:
                if self._crashed:
                    try:
                        os.remove(path)
                    except OSError:
                        pass
                    return
                # The merged output takes the run's slot in the manifest
                # order, keeping the list sorted oldest-to-newest.
                old = self._manifest.segments
                survivors = (
                    old[:plan.position]
                    + (SegmentRecord.from_meta(meta),)
                    + old[plan.position + len(plan.segment_ids):]
                )
                self._publish_manifest(survivors, self._manifest.wal_seq)
                for stale_id in plan.segment_ids:
                    self._readers.pop(stale_id)
                    self.cache.drop_segment(stale_id)
                    os.remove(_segment_path(self.directory, stale_id))
                self._readers[segment_id] = SSTableReader(
                    path, self._sealer, self.cache,
                )
                self.stats.compactions += 1
                self.stats.compacted_bytes += merged_bytes

    def flush(self) -> bool:
        """Freeze the memtable and wait for the background worker to land
        it (and any follow-on compaction).  Synchronous from the caller's
        point of view, exactly like the historical inline flush."""
        with self._bg_cond:
            self._require_open()
            self._raise_bg_error()
            pending = self._frozen is not None or self._bg_busy
            froze = False
            if len(self._memtable):
                self._freeze_locked()
                froze = True
            while ((self._frozen is not None or self._bg_busy)
                   and self._bg_error is None and not self._crashed):
                self._bg_cond.wait()
            self._raise_bg_error()
            return froze or pending

    def _publish_manifest(self, segments: tuple[SegmentRecord, ...],
                          wal_seq: int, extra: bytes | None = None) -> None:
        """Commit one manifest epoch (caller holds the lock) and delete
        WAL generations it supersedes."""
        manifest = RootManifest(
            epoch=self._manifest.epoch + 1,
            wal_seq=wal_seq,
            segments=segments,
            extra=self._manifest.extra if extra is None else extra,
        )
        write_manifest(self.directory, manifest, self._sealer,
                       self._freshness, sync=self._sync)
        self._manifest = manifest
        for path in glob.glob(os.path.join(self.directory, _WAL_PATTERN)):
            match = _WAL_RE.match(os.path.basename(path))
            if match is not None and int(match.group(1)) < wal_seq:
                os.remove(path)

    def note_state_root(self, state_root: bytes) -> None:
        """Record the chain state root to bind into the next manifest
        commit (surfaces in ``repro db stats``)."""
        with self._lock:
            self._binding = bytes(state_root)
            self._manifest = RootManifest(
                self._manifest.epoch, self._manifest.wal_seq,
                self._manifest.segments, bytes(state_root),
            )

    @property
    def manifest_extra(self) -> bytes:
        return self._binding

    def compact(self) -> bool:
        """Run compaction to quiescence; returns True if anything merged."""
        with self._bg_cond:
            self._require_open()
            self._raise_bg_error()
            before = self.stats.compactions
        self._bg_compact()
        with self._bg_cond:
            self._raise_bg_error()
            return self.stats.compactions > before

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Clean shutdown: flush the memtable so reopen skips WAL replay,
        persist the hot cache-key set for warming, release every handle."""
        with self._bg_cond:
            if self._closed:
                return
            if self._buffer is not None:
                raise StorageError("cannot close inside a block_batch")
            self._closing = True
        self.flush()
        with self._bg_cond:
            self._bg_stop = True
            self._bg_cond.notify_all()
            thread = self._bg_thread
        if thread is not None:
            thread.join()
        with self._bg_cond:
            self._raise_bg_error()
            if self._manifest.segments and len(self.cache):
                live = {r.segment_id for r in self._manifest.segments}
                warm = [
                    (segment_id, offset)
                    for segment_id, offset in self.cache.hot_keys(
                        MAX_WARM_ENTRIES)
                    if segment_id in live
                ]
                extra = encode_extra(self._binding, warm)
                if extra != self._manifest.extra:
                    self._publish_manifest(
                        self._manifest.segments, self._manifest.wal_seq,
                        extra=extra,
                    )
            self._wal.close()
            self._closed = True

    def crash(self) -> None:
        """Simulated process death: drop handles, flush *nothing*.

        The directory is left exactly as the last committed WAL record /
        manifest epoch wrote it: the background worker is drained and
        aborts before any manifest publish; a segment file it was mid-way
        through writing is removed.  A fresh :class:`LsmKV` recovers from
        the directory (replaying every surviving WAL generation).
        """
        with self._bg_cond:
            self._crashed = True
            self._closed = True
            self._bg_stop = True
            self._buffer = None
            self._bg_cond.notify_all()
            thread = self._bg_thread
        if thread is not None:
            thread.join()
        with self._bg_cond:
            self._wal.crash()
            if self._frozen_wal is not None:
                self._frozen_wal.crash()

    def __enter__(self) -> "LsmKV":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- tooling ---------------------------------------------------------

    def verify(self) -> dict[str, int]:
        """Structural integrity sweep (works without the seal key only
        for frame CRCs; sealed stores verify fully since we hold keys)."""
        with self._lock:
            self._require_open()
            blocks = 0
            for reader in self._readers.values():
                blocks += reader.verify_blocks()
            verify_segments(self.directory, self._manifest)
            return {
                "segments": len(self._readers),
                "blocks_checked": blocks,
                "manifest_epoch": self._manifest.epoch,
                "wal_records": len(replay_file(
                    self._wal.path, self._wal.seq, self._sealer
                )) if os.path.exists(self._wal.path) else 0,
            }

    def stats_snapshot(self) -> dict[str, float]:
        with self._lock:
            snap = self.stats.snapshot()
            fsyncs = self._retired_wal_fsyncs + self._wal.fsyncs
            if self._frozen_wal is not None:
                fsyncs += self._frozen_wal.fsyncs
            snap.update({
                "wal_fsyncs": fsyncs,
                "manifest_epoch": self._manifest.epoch,
                "segments_live": len(self._readers),
                "segment_bytes": sum(
                    r.size for r in self._readers.values()
                ),
                "memtable_bytes": self._memtable.approximate_bytes,
                "memtable_entries": len(self._memtable),
                "flush_pending": int(self._frozen is not None),
                "cache_hits": self.cache.hits,
                "cache_misses": self.cache.misses,
                "cache_evictions": self.cache.evictions,
                "cache_used_bytes": self.cache.used_bytes,
                "cache_hit_rate": self.cache.hit_rate(),
                "sealed": int(self.sealed),
            })
            return snap
