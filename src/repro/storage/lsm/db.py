"""The LSM key-value store behind the :class:`KVStore` interface.

Write path: WAL append (durable, one framed record per batch) →
memtable.  When the memtable passes its threshold it flushes into an
immutable SSTable segment, the manifest commits a new epoch naming the
segment set + a fresh WAL generation, old WAL files are removed, and
size-tiered compaction runs if a tier overflowed.

Read path: active block buffer → memtable → segments newest-to-oldest
(bloom filter, then block index, through the shared block cache).

**Atomic block commits** (:meth:`block_batch`): everything a node writes
while applying one block — every SDM ``kv_set`` ocall, the engine's
scope commits, the block body and receipts — is buffered and lands in
*one* WAL record.  Recovery therefore always lands exactly on a block
boundary: a torn tail can lose the last block(s), never half of one.

Everything on disk can be sealed (see :mod:`repro.storage.lsm.seal`)
and the manifest enforces freshness + segment-set integrity (see
:mod:`repro.storage.lsm.manifest`).
"""

from __future__ import annotations

import glob
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import StorageError
from repro.storage.kv import KVStore
from repro.storage.lsm.cache import BlockCache
from repro.storage.lsm.compaction import merge_entries, plan_compaction
from repro.storage.lsm.manifest import (
    MANIFEST_NAME,
    RootManifest,
    SegmentRecord,
    read_manifest,
    verify_segments,
    write_manifest,
)
from repro.storage.lsm.memtable import TOMBSTONE, Memtable
from repro.storage.lsm.seal import StorageSealer
from repro.storage.lsm.sstable import SSTableReader, write_sstable
from repro.storage.lsm.wal import WriteAheadLog, replay_file

_WAL_PATTERN = "wal-*.log"


def _wal_path(directory: str, seq: int) -> str:
    return os.path.join(directory, f"wal-{seq:08d}.log")


def _segment_path(directory: str, segment_id: int) -> str:
    return os.path.join(directory, f"seg-{segment_id:08d}.sst")


@dataclass
class LsmStats:
    """Cumulative engine counters (absorbed by ``obs.collect``)."""

    wal_bytes_written: int = 0
    wal_records_written: int = 0
    wal_truncated_bytes: int = 0
    wal_recovered_batches: int = 0
    flushes: int = 0
    flush_bytes: int = 0
    compactions: int = 0
    compacted_bytes: int = 0
    recovery_seconds: float = 0.0
    gets: int = 0
    puts: int = 0
    block_commits: int = 0

    def snapshot(self) -> dict[str, float]:
        return dict(self.__dict__)


@dataclass
class _BlockBuffer:
    """Writes staged inside one :meth:`LsmKV.block_batch`."""

    puts: dict[bytes, bytes] = field(default_factory=dict)
    deletes: set[bytes] = field(default_factory=set)

    def put(self, key: bytes, value: bytes) -> None:
        self.deletes.discard(key)
        self.puts[bytes(key)] = bytes(value)

    def delete(self, key: bytes) -> None:
        self.puts.pop(key, None)
        self.deletes.add(bytes(key))


class LsmKV(KVStore):
    """Persistent, optionally sealed, crash-consistent KV store."""

    def __init__(
        self,
        directory: str,
        *,
        sealer: StorageSealer | None = None,
        freshness=None,
        sync: bool = False,
        memtable_bytes: int = 256 * 1024,
        block_bytes: int = 4096,
        cache_bytes: int = 1 << 20,
        compaction_fanin: int = 4,
        auto_compact: bool = True,
    ):
        self.directory = directory
        self._sealer = sealer
        self._freshness = freshness
        self._sync = sync
        self._memtable_bytes = memtable_bytes
        self._block_bytes = block_bytes
        self._compaction_fanin = compaction_fanin
        self._auto_compact = auto_compact
        self.stats = LsmStats()
        self.cache = BlockCache(cache_bytes)
        self._lock = threading.RLock()
        self._memtable = Memtable()
        self._buffer: _BlockBuffer | None = None
        self._closed = False
        os.makedirs(directory, exist_ok=True)

        started = time.perf_counter()
        manifest = read_manifest(directory, sealer, freshness)
        if manifest is None:
            manifest = RootManifest(epoch=1, wal_seq=0, segments=())
            write_manifest(directory, manifest, sealer, freshness, sync=sync)
        else:
            verify_segments(directory, manifest)
        self._manifest = manifest
        self._readers: dict[int, SSTableReader] = {}
        for record in manifest.segments:
            self._readers[record.segment_id] = SSTableReader(
                os.path.join(directory, record.filename), sealer, self.cache
            )
        self._next_segment_id = 1 + max(
            (r.segment_id for r in manifest.segments), default=0
        )
        # Recover the current WAL generation into the memtable; stray WAL
        # files from other generations (a crash between manifest commit
        # and unlink) are removed — their contents are already in
        # segments or belong to an uncommitted future.
        for stray in glob.glob(os.path.join(directory, _WAL_PATTERN)):
            if stray != _wal_path(directory, manifest.wal_seq):
                os.remove(stray)
        self._wal = WriteAheadLog(
            _wal_path(directory, manifest.wal_seq),
            seq=manifest.wal_seq, sync=sync, sealer=sealer,
        )
        for puts, deletes in self._wal.recovered:
            self._memtable.apply(puts, deletes)
        self.stats.wal_recovered_batches = len(self._wal.recovered)
        self.stats.wal_truncated_bytes = self._wal.truncated_bytes
        self.stats.recovery_seconds = time.perf_counter() - started

    # -- properties ------------------------------------------------------

    @property
    def manifest_epoch(self) -> int:
        return self._manifest.epoch

    @property
    def live_segments(self) -> int:
        return len(self._readers)

    @property
    def sealed(self) -> bool:
        return self._sealer is not None

    def _require_open(self) -> None:
        if self._closed:
            raise StorageError("LSM store is closed")

    # -- KVStore interface -----------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        with self._lock:
            self._require_open()
            self.stats.gets += 1
            key = bytes(key)
            if self._buffer is not None:
                if key in self._buffer.puts:
                    return self._buffer.puts[key]
                if key in self._buffer.deletes:
                    return None
            present, value = self._memtable.get(key)
            if present:
                return value if value is not TOMBSTONE else None
            # Manifest order is age order; segment ids are not (a merge
            # output has a fresh id but old content).
            for record in reversed(self._manifest.segments):
                found, value = self._readers[record.segment_id].get(key)
                if found:
                    return value
            return None

    def put(self, key: bytes, value: bytes) -> None:
        with self._lock:
            self._require_open()
            self.stats.puts += 1
            if self._buffer is not None:
                self._buffer.put(key, value)
                return
            self._commit({bytes(key): bytes(value)}, set())

    def delete(self, key: bytes) -> None:
        with self._lock:
            self._require_open()
            if self._buffer is not None:
                self._buffer.delete(key)
                return
            self._commit({}, {bytes(key)})

    def write_batch(self, puts: dict[bytes, bytes], deletes: set[bytes] = frozenset()) -> None:
        with self._lock:
            self._require_open()
            self.stats.puts += len(puts)
            if self._buffer is not None:
                for key in deletes:
                    self._buffer.delete(key)
                for key, value in puts.items():
                    self._buffer.put(key, value)
                return
            self._commit(
                {bytes(k): bytes(v) for k, v in puts.items()},
                {bytes(k) for k in deletes},
            )

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        with self._lock:
            self._require_open()
            merged: dict[bytes, bytes | None] = {}
            for record in self._manifest.segments:  # oldest first
                for key, value in self._readers[record.segment_id].items():
                    merged[key] = value
            for key, value in self._memtable.items():
                merged[key] = value
            if self._buffer is not None:
                for key in self._buffer.deletes:
                    merged[key] = None
                for key, value in self._buffer.puts.items():
                    merged[key] = value
            return iter([
                (k, v) for k, v in merged.items() if v is not None
            ])

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    # -- atomic block commits --------------------------------------------

    @contextmanager
    def block_batch(self):
        """Stage every write until exit, then commit them as ONE WAL
        record; on exception nothing is committed (see module doc)."""
        with self._lock:
            self._require_open()
            if self._buffer is not None:
                raise StorageError("block_batch does not nest")
            self._buffer = _BlockBuffer()
        try:
            yield self
        except BaseException:
            with self._lock:
                self._buffer = None
            raise
        else:
            with self._lock:
                buffer, self._buffer = self._buffer, None
                if buffer.puts or buffer.deletes:
                    self._commit(buffer.puts, buffer.deletes)
                    self.stats.block_commits += 1

    # -- write machinery -------------------------------------------------

    def _commit(self, puts: dict[bytes, bytes], deletes: set[bytes]) -> None:
        appended = self._wal.append(puts, deletes)
        self.stats.wal_bytes_written += appended
        self.stats.wal_records_written += 1
        self._memtable.apply(puts, deletes)
        if self._memtable.approximate_bytes >= self._memtable_bytes:
            self.flush()

    def flush(self) -> bool:
        """Flush the memtable into a new segment + manifest epoch."""
        with self._lock:
            self._require_open()
            if not len(self._memtable):
                return False
            segment_id = self._next_segment_id
            self._next_segment_id += 1
            meta = write_sstable(
                _segment_path(self.directory, segment_id), segment_id,
                self._memtable.items_sorted(), self._sealer, self._block_bytes,
                sync=self._sync,
            )
            segments = tuple(self._manifest.segments) + (
                SegmentRecord.from_meta(meta),
            )
            self._commit_manifest(segments, self._manifest.wal_seq + 1)
            self._readers[segment_id] = SSTableReader(
                _segment_path(self.directory, segment_id),
                self._sealer, self.cache,
            )
            self._memtable.clear()
            self.stats.flushes += 1
            self.stats.flush_bytes += meta.size
            if self._auto_compact:
                self.compact()
            return True

    def _commit_manifest(self, segments: tuple[SegmentRecord, ...],
                         wal_seq: int, extra: bytes | None = None) -> None:
        old_wal = self._wal
        manifest = RootManifest(
            epoch=self._manifest.epoch + 1,
            wal_seq=wal_seq,
            segments=segments,
            extra=self._manifest.extra if extra is None else extra,
        )
        write_manifest(self.directory, manifest, self._sealer,
                       self._freshness, sync=self._sync)
        self._manifest = manifest
        if wal_seq != old_wal.seq:
            old_wal.close()
            self._wal = WriteAheadLog(
                _wal_path(self.directory, wal_seq),
                seq=wal_seq, sync=self._sync, sealer=self._sealer,
            )
            os.remove(old_wal.path)

    def note_state_root(self, state_root: bytes) -> None:
        """Record the chain state root to bind into the next manifest
        commit (surfaces in ``repro db stats``)."""
        with self._lock:
            self._manifest = RootManifest(
                self._manifest.epoch, self._manifest.wal_seq,
                self._manifest.segments, bytes(state_root),
            )

    @property
    def manifest_extra(self) -> bytes:
        return self._manifest.extra

    def compact(self) -> bool:
        """Run one size-tiered compaction round if a tier overflowed."""
        with self._lock:
            self._require_open()
            plan = plan_compaction(
                list(self._manifest.segments), self._memtable_bytes,
                self._compaction_fanin,
            )
            if plan is None:
                return False
            readers = [
                (rank, self._readers[chosen_id].items())
                for rank, chosen_id in enumerate(plan.segment_ids)
            ]
            segment_id = self._next_segment_id
            self._next_segment_id += 1
            merged_bytes = sum(
                self._readers[s].size for s in plan.segment_ids
            )
            meta = write_sstable(
                _segment_path(self.directory, segment_id), segment_id,
                merge_entries(readers, plan.drop_tombstones),
                self._sealer, self._block_bytes, sync=self._sync,
            )
            # The merged output takes the run's slot in the manifest
            # order, keeping the list sorted oldest-to-newest.
            old = self._manifest.segments
            survivors = (
                old[:plan.position]
                + (SegmentRecord.from_meta(meta),)
                + old[plan.position + len(plan.segment_ids):]
            )
            self._commit_manifest(survivors, self._manifest.wal_seq)
            for stale_id in plan.segment_ids:
                self._readers.pop(stale_id)
                self.cache.drop_segment(stale_id)
                os.remove(_segment_path(self.directory, stale_id))
            self._readers[segment_id] = SSTableReader(
                _segment_path(self.directory, segment_id),
                self._sealer, self.cache,
            )
            self.stats.compactions += 1
            self.stats.compacted_bytes += merged_bytes
            return True

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Clean shutdown: flush the memtable so reopen skips WAL replay,
        then release every file handle."""
        with self._lock:
            if self._closed:
                return
            if self._buffer is not None:
                raise StorageError("cannot close inside a block_batch")
            self.flush()
            self._wal.close()
            self._closed = True

    def crash(self) -> None:
        """Simulated process death: drop handles, flush *nothing*.

        The directory is left exactly as the last committed WAL record /
        manifest epoch wrote it; a fresh :class:`LsmKV` recovers from it.
        """
        with self._lock:
            self._wal.crash()
            self._buffer = None
            self._closed = True

    def __enter__(self) -> "LsmKV":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- tooling ---------------------------------------------------------

    def verify(self) -> dict[str, int]:
        """Structural integrity sweep (works without the seal key only
        for frame CRCs; sealed stores verify fully since we hold keys)."""
        with self._lock:
            self._require_open()
            blocks = 0
            for reader in self._readers.values():
                blocks += reader.verify_blocks()
            verify_segments(self.directory, self._manifest)
            return {
                "segments": len(self._readers),
                "blocks_checked": blocks,
                "manifest_epoch": self._manifest.epoch,
                "wal_records": len(replay_file(
                    self._wal.path, self._wal.seq, self._sealer
                )) if os.path.exists(self._wal.path) else 0,
            }

    def stats_snapshot(self) -> dict[str, float]:
        with self._lock:
            snap = self.stats.snapshot()
            snap.update({
                "manifest_epoch": self._manifest.epoch,
                "segments_live": len(self._readers),
                "segment_bytes": sum(
                    r.size for r in self._readers.values()
                ),
                "memtable_bytes": self._memtable.approximate_bytes,
                "memtable_entries": len(self._memtable),
                "cache_hits": self.cache.hits,
                "cache_misses": self.cache.misses,
                "cache_evictions": self.cache.evictions,
                "cache_used_bytes": self.cache.used_bytes,
                "cache_hit_rate": self.cache.hit_rate(),
                "sealed": int(self.sealed),
            })
            return snap
