"""Recursive Length Prefix (RLP) serialization.

The paper (§5.3) names RLP as the light serialization protocol used when
complex structures cross the enclave boundary; transactions, receipts and
block headers in this reproduction are RLP-encoded the same way.

The value domain is bytes and (recursively) lists of values, exactly as in
Ethereum's spec.  :func:`encode_int`/:func:`decode_int` give the canonical
big-endian-minimal integer convention.
"""

from __future__ import annotations

from repro.errors import StorageError

RlpValue = bytes | list  # recursive: list[RlpValue]


def encode(value) -> bytes:
    """RLP-encode bytes or a (nested) list of bytes."""
    if isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        if len(data) == 1 and data[0] < 0x80:
            return data
        return _encode_length(len(data), 0x80) + data
    if isinstance(value, (list, tuple)):
        payload = b"".join(encode(item) for item in value)
        return _encode_length(len(payload), 0xC0) + payload
    raise StorageError(f"cannot RLP-encode {type(value).__name__}")


def _encode_length(length: int, offset: int) -> bytes:
    if length < 56:
        return bytes([offset + length])
    length_bytes = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([offset + 55 + len(length_bytes)]) + length_bytes


def decode(data: bytes):
    """Decode one RLP item; raises on trailing bytes."""
    item, consumed = _decode_item(memoryview(data), 0)
    if consumed != len(data):
        raise StorageError(f"trailing bytes after RLP item ({len(data) - consumed})")
    return item


def _decode_item(data: memoryview, pos: int):
    if pos >= len(data):
        raise StorageError("RLP input exhausted")
    prefix = data[pos]
    if prefix < 0x80:
        return bytes(data[pos : pos + 1]), pos + 1
    if prefix < 0xB8:
        length = prefix - 0x80
        end = pos + 1 + length
        _check_bounds(data, end)
        payload = bytes(data[pos + 1 : end])
        if length == 1 and payload[0] < 0x80:
            raise StorageError("non-canonical single-byte RLP encoding")
        return payload, end
    if prefix < 0xC0:
        length, start = _decode_long_length(data, pos, 0xB7)
        end = start + length
        _check_bounds(data, end)
        return bytes(data[start:end]), end
    if prefix < 0xF8:
        length = prefix - 0xC0
        end = pos + 1 + length
        _check_bounds(data, end)
        return _decode_list(data, pos + 1, end), end
    length, start = _decode_long_length(data, pos, 0xF7)
    end = start + length
    _check_bounds(data, end)
    return _decode_list(data, start, end), end


def _decode_long_length(data: memoryview, pos: int, offset: int) -> tuple[int, int]:
    nbytes = data[pos] - offset
    end = pos + 1 + nbytes
    _check_bounds(data, end)
    raw = bytes(data[pos + 1 : end])
    if raw and raw[0] == 0:
        raise StorageError("non-canonical RLP length (leading zero)")
    length = int.from_bytes(raw, "big")
    if length < 56:
        raise StorageError("non-canonical RLP length (should be short form)")
    return length, end


def _decode_list(data: memoryview, start: int, end: int) -> list:
    items = []
    pos = start
    while pos < end:
        item, pos = _decode_item(data, pos)
        items.append(item)
    if pos != end:
        raise StorageError("RLP list payload length mismatch")
    return items


def _check_bounds(data: memoryview, end: int) -> None:
    if end > len(data):
        raise StorageError("RLP input truncated")


def encode_int(value: int) -> bytes:
    """Canonical RLP integer payload: big-endian without leading zeros."""
    if value < 0:
        raise StorageError("RLP integers must be non-negative")
    if value == 0:
        return b""
    return value.to_bytes((value.bit_length() + 7) // 8, "big")


def decode_int(data: bytes) -> int:
    if data and data[0] == 0:
        raise StorageError("non-canonical RLP integer (leading zero)")
    return int.from_bytes(data, "big")
