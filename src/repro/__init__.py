"""repro — a full reproduction of CONFIDE (SIGMOD 2020).

"Confidentiality Support over Financial Grade Consortium Blockchain",
Yan et al., Ant Financial, SIGMOD 2020.

The package is organised as the paper's system plus every substrate it
depends on:

- :mod:`repro.crypto`    pure-Python AES-GCM / secp256k1 / Keccak / HKDF
- :mod:`repro.tee`       software SGX-enclave simulator (EPC, ecall/ocall,
  attestation, exit-less monitoring)
- :mod:`repro.storage`   KV stores, RLP, merkle trees
- :mod:`repro.vm`        CONFIDE-VM (wasm-like) and an EVM baseline
- :mod:`repro.lang`      CWScript contract language compiling to both VMs
- :mod:`repro.ccle`      Confidential Contract Language extension (IDL)
- :mod:`repro.core`      the Confidential-Engine and T/D/K protocols
- :mod:`repro.chain`     consortium-blockchain substrate
- :mod:`repro.workloads` the paper's evaluation workloads
- :mod:`repro.bench`     harness utilities for the tables/figures
"""

__version__ = "1.0.0"
