"""Pass 3 — bytecode-level confidentiality flow analysis.

Pass 1 (``repro.analysis.taint``) needs CWScript *source*; a byzantine
peer gossiping a sourceless artifact used to get only the structural
checks of Pass 2.  This pass closes that hole: an abstract interpreter
over both deployable artifact formats — CONFIDE-VM modules (analyzed in
their *fused* OPT4 form, superinstructions included, because that is
what executes) and EVM bytecode — tracks a confidentiality lattice
through the operand stack, locals, linear memory and storage/host-call
effects.

sources
    ``storage_get`` under a key whose statically-resolved byte prefix
    the policy classifies confidential.  Without source there are no
    ``//@confidential-keys`` directives, so the bytecode policy is
    seeded from the CCLe schema's confidential key classes (the
    ``ccle:`` prefix) plus explicit extras
    (``EngineConfig.bytecode_confidential_prefixes`` / CLI flags).

sinks
    ``storage_set`` under a key not provably confidential, ``log`` /
    ``LOG0`` (the public event stream), ``output`` / ``RETURN`` (return
    data), ``abort`` / ``REVERT`` (revert payloads), and
    ``call_contract`` arguments.  Unlike the source pass, return data
    and revert payloads *are* sinks here: a sourceless artifact may be
    deployed to the Public-Engine, where receipts travel in plaintext.

declassify
    The ``declassify(ptr, len)`` host call (a runtime no-op) is the
    audited escape hatch: the analyzer clears the region's taint and
    records the site.  Source-level ``declassify(expr)`` is erased by
    the compiler before codegen, which is why Pass 3 does not re-check
    the source-directive prefixes — Pass 1 already checked those with
    declassify fidelity.

Alongside the lattice the pass computes per-function static resource
bounds (max operand-stack depth, memory high-water, a worst-case cycle
estimate priced with the CycleAccountant cost table) and records a
:class:`PathConstraints` table — per-branch comparison operands
symbolically traced to inputs — the hook the ROADMAP's coverage-guided
fuzzer consumes.

Documented imprecision (mirrors Pass 1's spirit):

- reads under keys the interpreter cannot resolve to a byte prefix are
  NOT sources; writes under such keys with tainted values ARE findings;
- a store through an unknown address folds its taint into a memory-wide
  "blanket" that every later load absorbs (sound, and free of false
  positives on artifacts with no confidential sources);
- implicit flows are coarse: once a branch condition is tainted, every
  later sink in that function carries the condition's taint;
- call inlining is depth-capped; past the cap the callee is havocked
  (memory knowledge dropped, result unknown) without findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import (
    FLOW_CALL_CONTRACT,
    FLOW_LOG,
    FLOW_OUTPUT,
    FLOW_REVERT,
    FLOW_STORAGE_SET,
    AnalysisReport,
    Declassification,
    Finding,
    FunctionResources,
)
from repro.analysis.taint import CCLE_PREFIX, KEY_CONFIDENTIAL, KEY_PUBLIC, Policy
from repro.errors import VMError
from repro.tee.transitions import DEFAULT_COST_MODEL
from repro.vm import host as host_mod
from repro.vm.disasm import evm_instruction_window, wasm_instruction_window
from repro.vm.evm import opcodes as evm_op
from repro.vm.wasm import opcodes as op
from repro.vm.wasm.module import Module, decode_module
from repro.vm.wasm.optimizer import fuse_module

_EMPTY: frozenset = frozenset()

#: value-set cap: beyond this many possible concrete values, "unknown"
_CONST_CAP = 8
#: recursion guard for call inlining
_MAX_INLINE_DEPTH = 12
#: per-pc join/revisit cap before widening to unknown
_MAX_VISITS = 64
#: overall abstract-step budget per analyzed entry
_MAX_STEPS = 200_000

_M64 = (1 << 64) - 1
_M256 = (1 << 256) - 1

_OCALL = int(DEFAULT_COST_MODEL.ocall_cycles)
_ECALL = int(DEFAULT_COST_MODEL.ecall_cycles)


# ---------------------------------------------------------------------------
# Symbolic expressions (rendered for PathConstraints)
# ---------------------------------------------------------------------------

def render_sym(sym) -> str:
    """Human/fuzzer-readable rendering of a symbolic expression tree."""
    if sym is None:
        return "?"
    tag = sym[0]
    if tag == "const":
        return str(sym[1])
    if tag == "input":
        return f"input[{sym[1]}:{sym[1] + sym[2]}]"
    if tag == "input_size":
        return "input_size"
    if tag == "storage":
        return f"storage('{sym[1]}')[{sym[2]}:{sym[2] + sym[3]}]"
    if tag == "storage_len":
        return f"storage_len('{sym[1]}')"
    if tag == "caller":
        return "caller"
    if tag == "bin":
        return f"({sym[1]} {render_sym(sym[2])} {render_sym(sym[3])})"
    if tag == "cmp":
        return f"({sym[1]} {render_sym(sym[2])} {render_sym(sym[3])})"
    return "?"


def sym_to_json(sym) -> dict | None:
    """Structured (JSON-stable) form of a symbolic expression tree.

    This is the machine-readable companion to :func:`render_sym`: one
    record per node with an explicit ``op`` discriminator, so the
    fuzzer's constraint solver and external tools consume the same
    format ``repro analyze --bytecode --json`` emits.
    """
    if sym is None:
        return None
    tag = sym[0]
    if tag == "const":
        return {"op": "const", "value": sym[1]}
    if tag == "input":
        return {"op": "input", "offset": sym[1], "len": sym[2]}
    if tag == "input_size":
        return {"op": "input_size"}
    if tag == "storage":
        return {"op": "storage", "tag": sym[1], "offset": sym[2],
                "len": sym[3]}
    if tag == "storage_len":
        return {"op": "storage_len", "tag": sym[1]}
    if tag == "caller":
        return {"op": "caller"}
    if tag == "bin":
        return {"op": "bin", "fn": sym[1],
                "args": [sym_to_json(sym[2]), sym_to_json(sym[3])]}
    if tag == "cmp":
        return {"op": "cmp", "kind": sym[1],
                "args": [sym_to_json(sym[2]), sym_to_json(sym[3])]}
    return {"op": "unknown"}


def sym_input_bytes(sym) -> set[tuple[int, int]]:
    """All ``(offset, length)`` input-byte ranges a sym tree reads."""
    if sym is None:
        return set()
    tag = sym[0]
    if tag == "input":
        return {(sym[1], sym[2])}
    if tag in ("bin", "cmp"):
        return sym_input_bytes(sym[2]) | sym_input_bytes(sym[3])
    return set()


_CMP_KIND_NAMES = {
    op.CMP_EQ: "eq", op.CMP_NE: "ne",
    op.CMP_LT_S: "lt_s", op.CMP_LT_U: "lt_u",
    op.CMP_GT_S: "gt_s", op.CMP_GT_U: "gt_u",
    op.CMP_LE_S: "le_s", op.CMP_LE_U: "le_u",
    op.CMP_GE_S: "ge_s", op.CMP_GE_U: "ge_u",
}

_CMP_INVERT_NAMES = {
    "eq": "ne", "ne": "eq", "lt_s": "ge_s", "lt_u": "ge_u",
    "gt_s": "le_s", "gt_u": "le_u", "le_s": "gt_s", "le_u": "gt_u",
    "ge_s": "lt_s", "ge_u": "lt_u", "truthy": "falsy", "falsy": "truthy",
}


@dataclass(frozen=True)
class PathConstraint:
    """One conditional branch: the comparison guarding the *taken* edge.

    ``lhs``/``rhs`` are symbolic operand renderings traced back to the
    inputs that produced them (``input[0:8]``, ``const``s, storage
    reads); ``lhs_sym``/``rhs_sym`` carry the raw symbolic trees —
    exactly what a coverage-guided fuzzer needs to solve for the
    branch.  ``kind`` always describes the relation that holds on the
    *taken* edge (JMP_IFZ kinds arrive pre-inverted).
    """

    function: str
    pc: int
    kind: str   # eq/ne/lt_s/... or truthy/falsy
    lhs: str
    rhs: str
    taken: int        # branch-taken target (instr index / byte offset)
    fallthrough: int
    lhs_sym: tuple | None = None
    rhs_sym: tuple | None = None

    def input_bytes(self) -> list[tuple[int, int]]:
        """Sorted ``(offset, length)`` input ranges both sides read."""
        return sorted(sym_input_bytes(self.lhs_sym)
                      | sym_input_bytes(self.rhs_sym))

    def to_dict(self) -> dict:
        return {
            "function": self.function,
            "pc": self.pc,
            "kind": self.kind,
            "lhs": self.lhs,
            "rhs": self.rhs,
            "taken": self.taken,
            "fallthrough": self.fallthrough,
            "lhs_sym": sym_to_json(self.lhs_sym),
            "rhs_sym": sym_to_json(self.rhs_sym),
            "input_bytes": [list(r) for r in self.input_bytes()],
        }


@dataclass
class PathConstraints:
    """All branch constraints recovered from one artifact."""

    constraints: list[PathConstraint] = field(default_factory=list)

    def for_function(self, function: str) -> list[PathConstraint]:
        return [c for c in self.constraints if c.function == function]

    def to_list(self) -> list[dict]:
        return [c.to_dict() for c in self.constraints]


# ---------------------------------------------------------------------------
# Abstract values and memory
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AbsVal:
    """One abstract stack/local slot: taint x value-set x symbolic expr."""

    taint: frozenset = _EMPTY
    consts: frozenset | None = None  # possible concrete values, None = any
    sym: tuple | None = None

    def const(self) -> int | None:
        if self.consts is not None and len(self.consts) == 1:
            return next(iter(self.consts))
        return None


_UNKNOWN = AbsVal()


def _cv(value: int) -> AbsVal:
    return AbsVal(consts=frozenset([value]), sym=("const", value))


def _join_val(a: AbsVal, b: AbsVal) -> AbsVal:
    if a is b:
        return a
    if a.consts is None or b.consts is None:
        consts = None
    else:
        merged = a.consts | b.consts
        consts = merged if len(merged) <= _CONST_CAP else None
    return AbsVal(
        taint=a.taint | b.taint,
        consts=consts,
        sym=a.sym if a.sym == b.sym else None,
    )


def _binop(name, a: AbsVal, b: AbsVal, fn, mask: int) -> AbsVal:
    consts = None
    if a.consts is not None and b.consts is not None:
        out = set()
        for x in a.consts:
            for y in b.consts:
                try:
                    out.add(fn(x, y) & mask)
                except (ZeroDivisionError, OverflowError):
                    out = None
                    break
                if len(out) > _CONST_CAP:
                    out = None
                    break
            if out is None:
                break
        consts = frozenset(out) if out is not None else None
    sym = None
    if a.sym is not None and b.sym is not None:
        sym = ("bin", name, a.sym, b.sym)
    return AbsVal(taint=a.taint | b.taint, consts=consts, sym=sym)


class AbsMemory:
    """Abstract linear memory: known bytes, per-byte taint, and symbolic
    regions for input/storage-derived buffers.

    Absent ``known`` entries read as zero (linear memory is zero
    initialised) until ``havoc`` is set by a store through an unknown
    address, after which absent entries are unknown and ``blanket``
    carries the taint such stores may have deposited anywhere.
    """

    __slots__ = ("known", "taint", "blanket", "regions", "havoc")

    def __init__(self):
        self.known: dict[int, int] = {}
        self.taint: dict[int, frozenset] = {}
        self.blanket: frozenset = _EMPTY
        # (kind, mem_start, origin_offset_or_tag, length)
        self.regions: list[tuple] = []
        self.havoc: bool = False

    def copy(self) -> "AbsMemory":
        out = AbsMemory()
        out.known = dict(self.known)
        out.taint = dict(self.taint)
        out.blanket = self.blanket
        out.regions = list(self.regions)
        out.havoc = self.havoc
        return out

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, AbsMemory)
            and self.known == other.known
            and self.taint == other.taint
            and self.blanket == other.blanket
            and self.regions == other.regions
            and self.havoc == other.havoc
        )

    # -- reads ----------------------------------------------------------

    def read_byte(self, addr: int) -> int | None:
        value = self.known.get(addr)
        if value is None and not self.havoc:
            return 0
        return value

    def read_bytes(self, addr: int, length: int) -> bytes | None:
        out = bytearray()
        for i in range(length):
            value = self.read_byte(addr + i)
            if value is None:
                return None
            out.append(value)
        return bytes(out)

    def read_prefix(self, addr: int, length: int) -> bytes:
        """Leading run of statically-known bytes (may be shorter than
        ``length``) — enough for prefix classification."""
        out = bytearray()
        for i in range(length):
            value = self.read_byte(addr + i)
            if value is None:
                break
            out.append(value)
        return bytes(out)

    def read_taint(self, addr: int, length: int) -> frozenset:
        out = set(self.blanket)
        for i in range(length):
            out |= self.taint.get(addr + i, _EMPTY)
        return frozenset(out)

    def region_sym(self, addr: int, width: int) -> tuple | None:
        """Symbolic value for a load fully inside a tracked region."""
        for kind, start, origin, length in self.regions:
            if start <= addr and addr + width <= start + length:
                off = addr - start
                if kind == "input":
                    return ("input", origin + off, width)
                return ("storage", origin, off, width)
        return None

    # -- writes ---------------------------------------------------------

    def _clear_regions(self, addr: int, length: int) -> None:
        kept = []
        for region in self.regions:
            _kind, start, _origin, rlen = region
            if start + rlen <= addr or addr + length <= start:
                kept.append(region)
        self.regions = kept

    def write_bytes(self, addr: int, data: bytes, taint: frozenset) -> None:
        self._clear_regions(addr, len(data))
        for i, byte in enumerate(data):
            self.known[addr + i] = byte
            if taint:
                self.taint[addr + i] = self.taint.get(addr + i, _EMPTY) | taint
            else:
                self.taint.pop(addr + i, None)

    def write_unknown(self, addr: int, length: int, taint: frozenset) -> None:
        """Store of statically-unknown *values* at a known address."""
        self._clear_regions(addr, length)
        for i in range(length):
            self.known.pop(addr + i, None)
            if taint:
                self.taint[addr + i] = self.taint.get(addr + i, _EMPTY) | taint
            else:
                self.taint.pop(addr + i, None)
        if self.havoc:
            # absent known entries are already "unknown"; nothing else to do
            pass

    def write_unknown_addr(self, taint: frozenset) -> None:
        """Store through an address the analyzer cannot resolve."""
        self.havoc = True
        self.known.clear()
        self.regions = []
        self.blanket = self.blanket | taint

    def add_region(self, kind: str, start: int, origin, length: int) -> None:
        if length <= 0:
            return
        self._clear_regions(start, length)
        self.regions.append((kind, start, origin, length))

    def clear_taint(self, addr: int, length: int) -> None:
        for i in range(length):
            self.taint.pop(addr + i, None)

    def all_taint(self) -> frozenset:
        out = set(self.blanket)
        for t in self.taint.values():
            out |= t
        return frozenset(out)

    @staticmethod
    def join(a: "AbsMemory", b: "AbsMemory") -> "AbsMemory":
        out = AbsMemory()
        out.havoc = a.havoc or b.havoc
        for addr in set(a.known) | set(b.known):
            va, vb = a.read_byte(addr), b.read_byte(addr)
            if va is not None and va == vb:
                out.known[addr] = va
        for addr in set(a.taint) | set(b.taint):
            merged = a.taint.get(addr, _EMPTY) | b.taint.get(addr, _EMPTY)
            if merged:
                out.taint[addr] = merged
        out.blanket = a.blanket | b.blanket
        out.regions = [r for r in a.regions if r in b.regions]
        return out


# ---------------------------------------------------------------------------
# Shared analysis context
# ---------------------------------------------------------------------------

class _Ctx:
    """Findings/constraints/resources accumulated across one artifact."""

    def __init__(self, policy: Policy, public_outputs: bool = True):
        self.policy = policy
        # Whether return data / revert payloads are public sinks.  True
        # for the Public-Engine (plaintext receipts) and the strict CLI
        # default; False for Confidential-Engine admission, where
        # receipts are sealed under k_tx and only the transaction owner
        # can read them (T-Protocol).
        self.public_outputs = public_outputs
        self.findings: dict[tuple, Finding] = {}
        self.declass: dict[tuple, Declassification] = {}
        self.sources: set[str] = set()
        self.constraints: dict[tuple, PathConstraint] = {}
        self.steps = 0
        # per-function-label resource tracking
        self.max_stack: dict[str, int] = {}
        self.mem_high: dict[str, int] = {}
        self.cycle_cost: dict[str, dict[int, int]] = {}  # label -> pc -> cost
        self.has_loops: dict[str, bool] = {}

    def budget_ok(self) -> bool:
        self.steps += 1
        return self.steps <= _MAX_STEPS

    def note_stack(self, label: str, depth: int) -> None:
        if depth > self.max_stack.get(label, 0):
            self.max_stack[label] = depth

    def note_mem(self, label: str, high: int) -> None:
        if high > self.mem_high.get(label, 0):
            self.mem_high[label] = high

    def note_cost(self, label: str, pc: int, cost: int) -> None:
        self.cycle_cost.setdefault(label, {})[pc] = cost

    def note_loop(self, label: str) -> None:
        self.has_loops[label] = True

    def sink(self, kind: str, message: str, function: str, pc: int,
             window: str, detail: str, taint: frozenset) -> None:
        if not taint:
            return
        if kind in (FLOW_OUTPUT, FLOW_REVERT) and not self.public_outputs:
            return
        tags = ",".join(sorted(taint))
        key = (kind, function, pc, tags)
        if key in self.findings:
            return
        self.findings[key] = Finding(
            kind=kind, message=message, function=function,
            detail=detail or tags, pc=pc, window=window,
        )

    def declassify(self, function: str, pc: int) -> None:
        self.declass[(function, pc)] = Declassification(function, pc, 0)

    def constraint(self, c: PathConstraint) -> None:
        self.constraints.setdefault(
            (c.function, c.pc, c.kind, c.lhs, c.rhs), c
        )

    def resources(self) -> list[FunctionResources]:
        labels = (set(self.max_stack) | set(self.mem_high)
                  | set(self.cycle_cost) | set(self.has_loops))
        out = []
        for label in sorted(labels):
            cycles = _ECALL + sum(self.cycle_cost.get(label, {}).values())
            out.append(FunctionResources(
                function=label,
                max_stack=self.max_stack.get(label, 0),
                memory_high_water=self.mem_high.get(label, 0),
                cycle_estimate=cycles,
                has_loops=self.has_loops.get(label, False),
            ))
        return out


def _classify(policy: Policy, tag: bytes | None) -> str:
    return policy.classify_key(tag)


def _tag_str(tag: bytes) -> str:
    return tag.decode("latin-1")


# ---------------------------------------------------------------------------
# CONFIDE-VM (wasm) abstract interpreter
# ---------------------------------------------------------------------------

_WASM_BIN_OPS = {
    op.ADD: ("add", lambda x, y: x + y),
    op.SUB: ("sub", lambda x, y: x - y),
    op.MUL: ("mul", lambda x, y: x * y),
    op.AND: ("and", lambda x, y: x & y),
    op.OR: ("or", lambda x, y: x | y),
    op.XOR: ("xor", lambda x, y: x ^ y),
    op.SHL: ("shl", lambda x, y: x << (y & 63)),
    op.SHR_U: ("shr_u", lambda x, y: x >> (y & 63)),
}

_WASM_CMP_OPS = {
    op.EQ: "eq", op.NE: "ne", op.LT_S: "lt_s", op.LT_U: "lt_u",
    op.GT_S: "gt_s", op.GT_U: "gt_u", op.LE_S: "le_s", op.LE_U: "le_u",
    op.GE_S: "ge_s", op.GE_U: "ge_u",
}

_LOAD_WIDTHS = {op.LOAD8_U: 1, op.LOAD16_U: 2, op.LOAD32_U: 4, op.LOAD64: 8}
_STORE_WIDTHS = {op.STORE8: 1, op.STORE16: 2, op.STORE32: 4, op.STORE64: 8}


@dataclass
class _WasmState:
    stack: list
    locals: list
    mem: AbsMemory
    pc_taint: frozenset

    def copy(self) -> "_WasmState":
        return _WasmState(list(self.stack), list(self.locals),
                          self.mem.copy(), self.pc_taint)


def _join_wasm_states(a: _WasmState, b: _WasmState) -> _WasmState | None:
    if len(a.stack) != len(b.stack):
        return None  # structurally invalid; Pass 2 reports it
    return _WasmState(
        [_join_val(x, y) for x, y in zip(a.stack, b.stack)],
        [_join_val(x, y) for x, y in zip(a.locals, b.locals)],
        AbsMemory.join(a.mem, b.mem),
        a.pc_taint | b.pc_taint,
    )


def _wasm_states_eq(a: _WasmState, b: _WasmState) -> bool:
    return (a.stack == b.stack and a.locals == b.locals
            and a.mem == b.mem and a.pc_taint == b.pc_taint)


class _WasmAnalyzer:
    def __init__(self, module: Module, ctx: _Ctx):
        self.module = module
        self.ctx = ctx
        self.labels = {}
        exports = {idx: name for name, idx in module.exports.items()}
        for fidx in range(len(module.functions)):
            self.labels[fidx] = exports.get(fidx, f"func_{fidx}")

    # -- entry ----------------------------------------------------------

    def analyze_export(self, fidx: int) -> None:
        mem = AbsMemory()
        for seg in self.module.data:
            mem.write_bytes(seg.offset, seg.data, _EMPTY)
        func = self.module.functions[fidx]
        args = [_cv(0)] * func.nparams
        self._run_function(fidx, args, mem, _EMPTY, 0)

    # -- one function instance ------------------------------------------

    def _run_function(self, fidx: int, args, mem: AbsMemory,
                      pc_taint: frozenset, depth: int):
        """Fixpoint over one body; returns (result AbsVal | None, memory)
        joined over all RETURN sites."""
        func = self.module.functions[fidx]
        label = self.labels[fidx]
        if depth > _MAX_INLINE_DEPTH:
            self.ctx.note_loop(label)
            out = mem.copy()
            out.write_unknown_addr(
                frozenset().union(*(a.taint for a in args)) if args else _EMPTY
            )
            return (_UNKNOWN if func.nresults else None), out
        nvars = func.nparams + func.nlocals
        locals0 = list(args) + [_cv(0)] * (nvars - len(args))
        entry = _WasmState([], locals0, mem.copy(), pc_taint)
        states: dict[int, _WasmState] = {0: entry}
        visits: dict[int, int] = {}
        work = [0]
        exit_val: AbsVal | None = None
        exit_mem: AbsMemory | None = None
        has_result = bool(func.nresults)
        code = func.code
        size = len(code)
        while work:
            pc = work.pop()
            if pc >= size or not self.ctx.budget_ok():
                continue
            visits[pc] = visits.get(pc, 0) + 1
            if visits[pc] > _MAX_VISITS:
                continue  # widened away: stop exploring this pc
            state = states[pc].copy()
            self.ctx.note_stack(label, len(state.stack))
            result = self._step(fidx, label, pc, code, state, depth)
            if result is None:
                continue
            kind, payload = result
            if kind == "return":
                value, rmem = payload
                if has_result:
                    exit_val = (value if exit_val is None
                                else _join_val(exit_val, value))
                exit_mem = (rmem if exit_mem is None
                            else AbsMemory.join(exit_mem, rmem))
                continue
            for succ, succ_state in payload:
                if succ >= size:
                    continue
                if succ <= pc:
                    self.ctx.note_loop(label)
                known = states.get(succ)
                if known is None:
                    states[succ] = succ_state
                    work.append(succ)
                else:
                    joined = _join_wasm_states(known, succ_state)
                    if joined is not None and not _wasm_states_eq(joined, known):
                        states[succ] = joined
                        work.append(succ)
        if exit_mem is None:
            exit_mem = mem.copy()  # no RETURN reached (abort-only paths)
        if has_result and exit_val is None:
            exit_val = _UNKNOWN
        return exit_val, exit_mem

    # -- single instruction ---------------------------------------------

    def _step(self, fidx, label, pc, code, state, depth):
        """Returns ("return", (val, mem)) | ("next", [(succ, state)...])
        | None (terminal/trap)."""
        opcode, a, b = code[pc]
        stack = state.stack
        mem = state.mem

        def pop() -> AbsVal:
            return stack.pop() if stack else _UNKNOWN

        def push(value: AbsVal) -> None:
            stack.append(value)

        cost = 1
        if opcode in (op.CALL_HOST,):
            cost = _OCALL
        self.ctx.note_cost(label, (fidx << 20) | pc, cost)

        window = lambda: wasm_instruction_window(code, pc)  # noqa: E731

        if opcode == op.RETURN:
            value = pop() if self.module.functions[fidx].nresults else None
            return ("return", (value, mem))
        if opcode == op.UNREACHABLE:
            return None
        if opcode == op.NOP:
            return ("next", [(pc + 1, state)])
        if opcode == op.CONST:
            push(_cv(a & _M64))
            return ("next", [(pc + 1, state)])
        if opcode == op.DROP:
            pop()
            return ("next", [(pc + 1, state)])
        if opcode == op.LOCAL_GET:
            push(state.locals[a] if a < len(state.locals) else _UNKNOWN)
            return ("next", [(pc + 1, state)])
        if opcode == op.LOCAL_SET:
            value = pop()
            if a < len(state.locals):
                state.locals[a] = value
            return ("next", [(pc + 1, state)])
        if opcode == op.LOCAL_TEE:
            if stack and a < len(state.locals):
                state.locals[a] = stack[-1]
            return ("next", [(pc + 1, state)])
        if opcode == op.SELECT:
            cond = pop()
            if_false = pop()
            if_true = pop()
            merged = _join_val(if_true, if_false)
            push(AbsVal(taint=merged.taint | cond.taint,
                        consts=merged.consts, sym=None))
            return ("next", [(pc + 1, state)])
        if opcode == op.JMP:
            return ("next", [(a, state)])
        if opcode in (op.JMP_IF, op.JMP_IFZ):
            cond = pop()
            self._branch_constraint(label, pc, opcode, cond, a, pc + 1)
            if cond.taint:
                state.pc_taint = state.pc_taint | cond.taint
            taken = cond.const()
            if taken is not None:
                truthy = bool(taken)
                if opcode == op.JMP_IFZ:
                    truthy = not truthy
                return ("next", [(a if truthy else pc + 1, state)])
            return ("next", [(a, state), (pc + 1, state.copy())])
        if opcode == op.CMP_BR:
            rhs = pop()
            lhs = pop()
            kind = _CMP_KIND_NAMES.get(b, "truthy")
            self.ctx.constraint(PathConstraint(
                function=label, pc=pc, kind=kind,
                lhs=render_sym(lhs.sym), rhs=render_sym(rhs.sym),
                taken=a, fallthrough=pc + 1,
                lhs_sym=lhs.sym, rhs_sym=rhs.sym,
            ))
            if lhs.taint or rhs.taint:
                state.pc_taint = state.pc_taint | lhs.taint | rhs.taint
            return ("next", [(a, state), (pc + 1, state.copy())])
        if opcode == op.CALL:
            callee = self.module.functions[a]
            nargs = callee.nparams
            args = [pop() for _ in range(nargs)]
            args.reverse()
            value, new_mem = self._run_function(
                a, args, mem, state.pc_taint, depth + 1
            )
            state.mem = new_mem
            if callee.nresults:
                push(value if value is not None else _UNKNOWN)
            return ("next", [(pc + 1, state)])
        if opcode == op.CALL_HOST:
            if a >= len(self.module.hosts):
                return None
            imp = self.module.hosts[a]
            args = [pop() for _ in range(imp.nparams)]
            args.reverse()
            return self._host_call(fidx, label, pc, code, imp.name,
                                   imp.nresults, args, state, window)
        if opcode in _WASM_BIN_OPS:
            name, fn = _WASM_BIN_OPS[opcode]
            rhs = pop()
            lhs = pop()
            push(_binop(name, lhs, rhs, fn, _M64))
            return ("next", [(pc + 1, state)])
        if opcode in (op.DIV_S, op.DIV_U, op.REM_S, op.REM_U, op.SHR_S):
            rhs = pop()
            lhs = pop()
            push(AbsVal(taint=lhs.taint | rhs.taint))
            return ("next", [(pc + 1, state)])
        if opcode in _WASM_CMP_OPS:
            rhs = pop()
            lhs = pop()
            sym = None
            if lhs.sym is not None and rhs.sym is not None:
                sym = ("cmp", _WASM_CMP_OPS[opcode], lhs.sym, rhs.sym)
            push(AbsVal(taint=lhs.taint | rhs.taint, sym=sym))
            return ("next", [(pc + 1, state)])
        if opcode == op.EQZ:
            value = pop()
            sym = None
            if value.sym is not None:
                sym = ("cmp", "eq", value.sym, ("const", 0))
            push(AbsVal(taint=value.taint, sym=sym))
            return ("next", [(pc + 1, state)])
        if opcode in _LOAD_WIDTHS:
            addr = pop()
            self._load(state, addr, a, _LOAD_WIDTHS[opcode], label, push)
            return ("next", [(pc + 1, state)])
        if opcode in _STORE_WIDTHS:
            value = pop()
            addr = pop()
            self._store(state, addr, a, _STORE_WIDTHS[opcode], value, label)
            return ("next", [(pc + 1, state)])
        if opcode == op.MEMCOPY:
            length = pop()
            src = pop()
            dst = pop()
            self._memcopy(state, dst, src, length, label)
            return ("next", [(pc + 1, state)])
        if opcode == op.MEMFILL:
            length = pop()
            byte = pop()
            dst = pop()
            dstc, lenc, bytec = dst.const(), length.const(), byte.const()
            taint = byte.taint | dst.taint | length.taint | state.pc_taint
            if dstc is not None and lenc is not None and lenc >= 0:
                self.ctx.note_mem(label, dstc + lenc)
                if bytec is not None:
                    mem.write_bytes(dstc, bytes([bytec & 0xFF]) * lenc, taint)
                else:
                    mem.write_unknown(dstc, lenc, taint)
            else:
                mem.write_unknown_addr(taint)
            return ("next", [(pc + 1, state)])
        if opcode == op.MEMSIZE:
            push(_cv(self.module.memory_bytes))
            return ("next", [(pc + 1, state)])
        # superinstructions ------------------------------------------------
        if opcode == op.GETGET:
            push(state.locals[a] if a < len(state.locals) else _UNKNOWN)
            push(state.locals[b] if b < len(state.locals) else _UNKNOWN)
            return ("next", [(pc + 1, state)])
        if opcode == op.GETCONST:
            push(state.locals[a] if a < len(state.locals) else _UNKNOWN)
            push(_cv(b & _M64))
            return ("next", [(pc + 1, state)])
        if opcode == op.ADDI:
            value = pop()
            push(_binop("add", value, _cv(a & _M64), lambda x, y: x + y, _M64))
            return ("next", [(pc + 1, state)])
        if opcode == op.INCL:
            if a < len(state.locals):
                state.locals[a] = _binop(
                    "add", state.locals[a], _cv(b & _M64),
                    lambda x, y: x + y, _M64,
                )
            return ("next", [(pc + 1, state)])
        if opcode == op.GETADD:
            value = pop()
            local = state.locals[a] if a < len(state.locals) else _UNKNOWN
            push(_binop("add", value, local, lambda x, y: x + y, _M64))
            return ("next", [(pc + 1, state)])
        if opcode == op.MOVL:
            if a < len(state.locals) and b < len(state.locals):
                state.locals[b] = state.locals[a]
            return ("next", [(pc + 1, state)])
        if opcode == op.LOAD8_LOCAL:
            base = state.locals[a] if a < len(state.locals) else _UNKNOWN
            self._load(state, base, b, 1, label, push)
            return ("next", [(pc + 1, state)])
        # unknown opcode: Pass 2 reports it; stop the path here
        return None

    # -- memory helpers --------------------------------------------------

    def _load(self, state, addr: AbsVal, offset: int, width: int,
              label: str, push) -> None:
        mem = state.mem
        base = addr.const()
        if base is None:
            push(AbsVal(taint=addr.taint | mem.all_taint()))
            self.ctx.note_mem(label, self.module.memory_bytes)
            return
        location = base + offset
        self.ctx.note_mem(label, location + width)
        taint = mem.read_taint(location, width) | addr.taint
        sym = mem.region_sym(location, width)
        raw = mem.read_bytes(location, width)
        consts = None
        if raw is not None:
            value = int.from_bytes(raw, "big")
            consts = frozenset([value])
            if sym is None:
                sym = ("const", value)
        push(AbsVal(taint=taint, consts=consts, sym=sym))

    def _store(self, state, addr: AbsVal, offset: int, width: int,
               value: AbsVal, label: str) -> None:
        mem = state.mem
        taint = value.taint | addr.taint | state.pc_taint
        base = addr.const()
        if base is None:
            mem.write_unknown_addr(taint)
            self.ctx.note_mem(label, self.module.memory_bytes)
            return
        location = base + offset
        self.ctx.note_mem(label, location + width)
        known = value.const()
        if known is not None:
            mem.write_bytes(location, (known & ((1 << (8 * width)) - 1))
                            .to_bytes(width, "big"), taint)
        else:
            mem.write_unknown(location, width, taint)
            if value.sym is not None and value.sym[0] == "input":
                mem.add_region("input", location, value.sym[1], width)

    def _memcopy(self, state, dst: AbsVal, src: AbsVal, length: AbsVal,
                 label: str) -> None:
        mem = state.mem
        dstc, srcc, lenc = dst.const(), src.const(), length.const()
        extra = dst.taint | src.taint | length.taint | state.pc_taint
        if dstc is None or lenc is None or lenc < 0:
            mem.write_unknown_addr(extra | mem.all_taint())
            self.ctx.note_mem(label, self.module.memory_bytes)
            return
        self.ctx.note_mem(label, dstc + lenc)
        if srcc is None:
            mem.write_unknown(dstc, lenc, extra | mem.all_taint())
            return
        taint = mem.read_taint(srcc, lenc) | extra
        raw = mem.read_bytes(srcc, lenc)
        if raw is not None:
            mem.write_bytes(dstc, raw, taint)
        else:
            mem.write_unknown(dstc, lenc, taint)
        sym = mem.region_sym(srcc, lenc)
        if sym is not None and sym[0] == "input":
            mem.add_region("input", dstc, sym[1], lenc)

    # -- host transfer ---------------------------------------------------

    def _host_call(self, fidx, label, pc, code, name, nresults, args,
                   state, window):
        mem = state.mem
        policy = self.ctx.policy

        def region_taint(ptr: AbsVal, length: AbsVal) -> frozenset:
            ptrc, lenc = ptr.const(), length.const()
            base = ptr.taint | length.taint
            if ptrc is None or lenc is None or lenc < 0:
                return base | mem.all_taint()
            self.ctx.note_mem(label, ptrc + lenc)
            return base | mem.read_taint(ptrc, lenc)

        next_state = ("next", [(pc + 1, state)])

        if name == "input_size":
            state.stack.append(AbsVal(sym=("input_size",)))
            return next_state
        if name == "input_read":
            dst, off, length = args[0], args[1], args[2]
            dstc, offc, lenc = dst.const(), off.const(), length.const()
            if dstc is not None and lenc is not None and lenc >= 0:
                self.ctx.note_mem(label, dstc + lenc)
                mem.write_unknown(dstc, lenc, _EMPTY)
                if offc is not None:
                    mem.add_region("input", dstc, offc, lenc)
            else:
                mem.write_unknown_addr(_EMPTY)
            state.stack.append(AbsVal(sym=("input_size",)))
            return next_state
        if name == "storage_get":
            key_ptr, key_len, dst, cap = args
            kp, kl = key_ptr.const(), key_len.const()
            tag = mem.read_prefix(kp, kl) if (kp is not None and kl is not None
                                              and kl >= 0) else b""
            classification = _classify(policy, tag if tag else None)
            dstc, capc = dst.const(), cap.const()
            if classification == KEY_CONFIDENTIAL:
                tag_s = _tag_str(tag)
                self.ctx.sources.add(tag_s)
                taint = frozenset([tag_s])
                if dstc is not None and capc is not None and capc >= 0:
                    self.ctx.note_mem(label, dstc + capc)
                    mem.write_unknown(dstc, capc, taint)
                    mem.add_region("storage", dstc, tag_s, capc)
                else:
                    mem.write_unknown_addr(taint)
                state.stack.append(AbsVal(taint=taint,
                                          sym=("storage_len", tag_s)))
            else:
                if dstc is not None and capc is not None and capc >= 0:
                    self.ctx.note_mem(label, dstc + capc)
                    mem.write_unknown(dstc, capc, _EMPTY)
                else:
                    mem.write_unknown_addr(_EMPTY)
                state.stack.append(_UNKNOWN)
            return next_state
        if name == "storage_set":
            key_ptr, key_len, val_ptr, val_len = args
            kp, kl = key_ptr.const(), key_len.const()
            tag = mem.read_prefix(kp, kl) if (kp is not None and kl is not None
                                              and kl >= 0) else b""
            classification = _classify(policy, tag if tag else None)
            if classification != KEY_CONFIDENTIAL:
                taint = (region_taint(val_ptr, val_len)
                         | key_ptr.taint | key_len.taint
                         | ((mem.read_taint(kp, kl) if kp is not None
                             and kl is not None and kl >= 0
                             else mem.all_taint()))
                         | state.pc_taint)
                if classification == KEY_PUBLIC:
                    message = ("confidential data written under public "
                               f"storage key '{_tag_str(tag)}'")
                else:
                    message = ("confidential data written under a storage "
                               "key the analyzer cannot prove confidential")
                self.ctx.sink(FLOW_STORAGE_SET, message, label, pc, window(),
                              "", taint)
            return next_state
        if name == "log":
            taint = region_taint(args[0], args[1]) | state.pc_taint
            self.ctx.sink(
                FLOW_LOG,
                "confidential data reaches the public event stream",
                label, pc, window(), "", taint,
            )
            return next_state
        if name == "output":
            taint = region_taint(args[0], args[1]) | state.pc_taint
            self.ctx.sink(
                FLOW_OUTPUT,
                "confidential data reaches the return data",
                label, pc, window(), "", taint,
            )
            return next_state
        if name == "abort":
            taint = region_taint(args[0], args[1]) | state.pc_taint
            self.ctx.sink(
                FLOW_REVERT,
                "confidential data reaches the revert payload",
                label, pc, window(), "", taint,
            )
            return None  # abort never returns
        if name == "call_contract":
            taint = set(state.pc_taint)
            for i in (0, 2, 4):
                taint |= region_taint(args[i], args[i + 1])
            taint |= args[6].taint | args[7].taint
            self.ctx.sink(
                FLOW_CALL_CONTRACT,
                "confidential data escapes via call_contract arguments",
                label, pc, window(), "", frozenset(taint),
            )
            dstc, capc = args[6].const(), args[7].const()
            if dstc is not None and capc is not None and capc >= 0:
                mem.write_unknown(dstc, capc, _EMPTY)
            else:
                mem.write_unknown_addr(_EMPTY)
            state.stack.append(_UNKNOWN)
            return next_state
        if name in ("sha256", "keccak256"):
            ptr, length, dst = args
            taint = region_taint(ptr, length)
            dstc = dst.const()
            if dstc is not None:
                self.ctx.note_mem(label, dstc + 32)
                mem.write_unknown(dstc, 32, taint)
            else:
                mem.write_unknown_addr(taint)
            return next_state
        if name == "caller":
            dstc = args[0].const()
            if dstc is not None:
                self.ctx.note_mem(label, dstc + 20)
                mem.write_unknown(dstc, 20, _EMPTY)
            else:
                mem.write_unknown_addr(_EMPTY)
            return next_state
        if name == "declassify":
            ptrc, lenc = args[0].const(), args[1].const()
            if ptrc is not None and lenc is not None and lenc >= 0:
                mem.clear_taint(ptrc, lenc)
            self.ctx.declassify(label, pc)
            return next_state
        # unknown host import: Pass 2 rejects it; havoc and continue
        mem.write_unknown_addr(_EMPTY)
        if nresults:
            state.stack.append(_UNKNOWN)
        return next_state

    def _branch_constraint(self, label, pc, opcode, cond: AbsVal,
                           taken: int, fallthrough: int) -> None:
        sym = cond.sym
        if sym is not None and sym[0] == "cmp":
            kind = sym[1]
            lhs_sym, rhs_sym = sym[2], sym[3]
        else:
            kind = "truthy"
            lhs_sym, rhs_sym = sym, ("const", 0)
        if opcode == op.JMP_IFZ:
            kind = _CMP_INVERT_NAMES.get(kind, kind)
        self.ctx.constraint(PathConstraint(
            function=label, pc=pc, kind=kind,
            lhs=render_sym(lhs_sym), rhs=render_sym(rhs_sym),
            taken=taken, fallthrough=fallthrough,
            lhs_sym=lhs_sym, rhs_sym=rhs_sym,
        ))


# ---------------------------------------------------------------------------
# EVM abstract interpreter
# ---------------------------------------------------------------------------

_EVM_BIN_OPS = {
    evm_op.ADD: ("add", lambda x, y: x + y),
    evm_op.SUB: ("sub", lambda x, y: x - y),
    evm_op.MUL: ("mul", lambda x, y: x * y),
    evm_op.AND: ("and", lambda x, y: x & y),
    evm_op.OR: ("or", lambda x, y: x | y),
    evm_op.XOR: ("xor", lambda x, y: x ^ y),
}

_EVM_CMP_OPS = {
    evm_op.LT: "lt_u", evm_op.GT: "gt_u",
    evm_op.SLT: "lt_s", evm_op.SGT: "gt_s", evm_op.EQ: "eq",
}


@dataclass
class _EvmState:
    stack: list
    mem: AbsMemory
    pc_taint: frozenset

    def copy(self) -> "_EvmState":
        return _EvmState(list(self.stack), self.mem.copy(), self.pc_taint)


def _join_evm_states(a: _EvmState, b: _EvmState) -> _EvmState | None:
    if len(a.stack) != len(b.stack):
        return None
    return _EvmState(
        [_join_val(x, y) for x, y in zip(a.stack, b.stack)],
        AbsMemory.join(a.mem, b.mem),
        a.pc_taint | b.pc_taint,
    )


def _evm_states_eq(a: _EvmState, b: _EvmState) -> bool:
    return (a.stack == b.stack and a.mem == b.mem
            and a.pc_taint == b.pc_taint)


class _EvmAnalyzer:
    def __init__(self, code: bytes, ctx: _Ctx):
        self.code = code
        self.ctx = ctx

    def analyze_entry(self, label: str, entry: int) -> None:
        code = self.code
        ctx = self.ctx
        states: dict[int, _EvmState] = {entry: _EvmState([], AbsMemory(), _EMPTY)}
        visits: dict[int, int] = {}
        work = [entry]
        while work:
            pc = work.pop()
            if pc >= len(code) or not ctx.budget_ok():
                continue
            visits[pc] = visits.get(pc, 0) + 1
            if visits[pc] > _MAX_VISITS:
                continue
            state = states[pc].copy()
            ctx.note_stack(label, len(state.stack))
            successors = self._step(label, pc, state)
            if not successors:
                continue
            for succ, succ_state in successors:
                if succ >= len(code):
                    continue
                if succ <= pc:
                    ctx.note_loop(label)
                known = states.get(succ)
                if known is None:
                    states[succ] = succ_state
                    work.append(succ)
                else:
                    joined = _join_evm_states(known, succ_state)
                    if joined is not None and not _evm_states_eq(joined, known):
                        states[succ] = joined
                        work.append(succ)

    def _step(self, label, pc, state):
        code = self.code
        ctx = self.ctx
        stack = state.stack
        mem = state.mem
        opcode = code[pc]

        def pop() -> AbsVal:
            return stack.pop() if stack else _UNKNOWN

        def push(value: AbsVal) -> None:
            stack.append(value)

        cost = evm_op.GAS_TABLE.get(opcode, 1)
        if opcode == evm_op.HOSTCALL:
            cost = _OCALL
        ctx.note_cost(label, pc, cost)

        window = lambda: evm_instruction_window(code, pc)  # noqa: E731

        if evm_op.PUSH1 <= opcode <= evm_op.PUSH1 + 31:
            width = opcode - evm_op.PUSH1 + 1
            push(_cv(int.from_bytes(code[pc + 1 : pc + 1 + width], "big")))
            return [(pc + 1 + width, state)]
        nxt = pc + 1
        if evm_op.DUP1 <= opcode <= evm_op.DUP1 + 15:
            depth = opcode - evm_op.DUP1 + 1
            push(stack[-depth] if len(stack) >= depth else _UNKNOWN)
            return [(nxt, state)]
        if evm_op.SWAP1 <= opcode <= evm_op.SWAP1 + 15:
            depth = opcode - evm_op.SWAP1 + 1
            if len(stack) > depth:
                stack[-1], stack[-1 - depth] = stack[-1 - depth], stack[-1]
            return [(nxt, state)]
        if opcode == evm_op.POP:
            pop()
            return [(nxt, state)]
        if opcode == evm_op.JUMPDEST:
            return [(nxt, state)]
        if opcode in _EVM_BIN_OPS:
            name, fn = _EVM_BIN_OPS[opcode]
            lhs = pop()
            rhs = pop()
            push(_binop(name, lhs, rhs, fn, _M256))
            return [(nxt, state)]
        if opcode in (evm_op.DIV, evm_op.SDIV, evm_op.MOD, evm_op.SMOD,
                      evm_op.EXP, evm_op.SIGNEXTEND, evm_op.BYTE,
                      evm_op.SHL, evm_op.SHR, evm_op.SAR):
            lhs = pop()
            rhs = pop()
            push(AbsVal(taint=lhs.taint | rhs.taint))
            return [(nxt, state)]
        if opcode == evm_op.NOT:
            value = pop()
            push(AbsVal(taint=value.taint))
            return [(nxt, state)]
        if opcode in _EVM_CMP_OPS:
            lhs = pop()
            rhs = pop()
            sym = None
            if lhs.sym is not None and rhs.sym is not None:
                sym = ("cmp", _EVM_CMP_OPS[opcode], lhs.sym, rhs.sym)
            consts = None
            if opcode == evm_op.EQ and lhs.consts is not None \
                    and rhs.consts is not None \
                    and len(lhs.consts) == 1 and len(rhs.consts) == 1:
                consts = frozenset(
                    [1 if lhs.consts == rhs.consts else 0]
                )
            push(AbsVal(taint=lhs.taint | rhs.taint, consts=consts, sym=sym))
            return [(nxt, state)]
        if opcode == evm_op.ISZERO:
            value = pop()
            sym = None
            if value.sym is not None:
                sym = ("cmp", "eq", value.sym, ("const", 0))
            consts = None
            known = value.const()
            if known is not None:
                consts = frozenset([0 if known else 1])
            push(AbsVal(taint=value.taint, consts=consts, sym=sym))
            return [(nxt, state)]
        if opcode == evm_op.MLOAD:
            addr = pop()
            base = addr.const()
            if base is None:
                push(AbsVal(taint=addr.taint | mem.all_taint()))
                return [(nxt, state)]
            ctx.note_mem(label, base + 32)
            taint = mem.read_taint(base, 32) | addr.taint
            sym = mem.region_sym(base, 32)
            raw = mem.read_bytes(base, 32)
            consts = None
            if raw is not None:
                value = int.from_bytes(raw, "big")
                consts = frozenset([value])
                if sym is None:
                    sym = ("const", value)
            push(AbsVal(taint=taint, consts=consts, sym=sym))
            return [(nxt, state)]
        if opcode in (evm_op.MSTORE, evm_op.MSTORE8):
            addr = pop()
            value = pop()
            width = 32 if opcode == evm_op.MSTORE else 1
            taint = value.taint | addr.taint | state.pc_taint
            base = addr.const()
            if base is None:
                mem.write_unknown_addr(taint)
                return [(nxt, state)]
            ctx.note_mem(label, base + width)
            known = value.const()
            if known is not None:
                mem.write_bytes(
                    base,
                    (known & ((1 << (8 * width)) - 1)).to_bytes(width, "big"),
                    taint,
                )
            else:
                mem.write_unknown(base, width, taint)
                if value.sym is not None and value.sym[0] == "input":
                    mem.add_region("input", base, value.sym[1], width)
            return [(nxt, state)]
        if opcode == evm_op.CALLDATALOAD:
            off = pop()
            offc = off.const()
            sym = ("input", offc, 32) if offc is not None else None
            push(AbsVal(taint=off.taint, sym=sym))
            return [(nxt, state)]
        if opcode == evm_op.CALLDATASIZE:
            push(AbsVal(sym=("input_size",)))
            return [(nxt, state)]
        if opcode == evm_op.CALLDATACOPY:
            dst = pop()
            src = pop()
            length = pop()
            dstc, srcc, lenc = dst.const(), src.const(), length.const()
            if dstc is not None and lenc is not None and lenc >= 0:
                ctx.note_mem(label, dstc + lenc)
                mem.write_unknown(dstc, lenc, _EMPTY)
                if srcc is not None:
                    mem.add_region("input", dstc, srcc, lenc)
            else:
                mem.write_unknown_addr(_EMPTY)
            return [(nxt, state)]
        if opcode == evm_op.CODECOPY:
            dst = pop()
            src = pop()
            length = pop()
            dstc, srcc, lenc = dst.const(), src.const(), length.const()
            if dstc is not None and lenc is not None and lenc >= 0:
                ctx.note_mem(label, dstc + lenc)
                if srcc is not None:
                    chunk = code[srcc : srcc + lenc]
                    chunk = chunk + bytes(lenc - len(chunk))
                    mem.write_bytes(dstc, chunk, _EMPTY)
                else:
                    mem.write_unknown(dstc, lenc, _EMPTY)
            else:
                mem.write_unknown_addr(_EMPTY)
            return [(nxt, state)]
        if opcode == evm_op.KECCAK256:
            off = pop()
            length = pop()
            offc, lenc = off.const(), length.const()
            if offc is not None and lenc is not None and lenc >= 0:
                taint = mem.read_taint(offc, lenc)
            else:
                taint = mem.all_taint()
            push(AbsVal(taint=taint | off.taint | length.taint))
            return [(nxt, state)]
        if opcode == evm_op.CALLER:
            push(AbsVal(sym=("caller",)))
            return [(nxt, state)]
        if opcode == evm_op.SLOAD:
            key = pop()
            # Slotted keys are hashes: never provably confidential, so
            # SLOAD is not a source (documented imprecision).
            push(AbsVal(taint=key.taint))
            return [(nxt, state)]
        if opcode == evm_op.SSTORE:
            key = pop()
            value = pop()
            taint = value.taint | key.taint | state.pc_taint
            self.ctx.sink(
                FLOW_STORAGE_SET,
                "confidential data written under a storage key the "
                "analyzer cannot prove confidential",
                label, pc, window(), "", taint,
            )
            return [(nxt, state)]
        if opcode == evm_op.LOG0:
            off = pop()
            length = pop()
            taint = (self._region_taint(label, mem, off, length)
                     | state.pc_taint)
            self.ctx.sink(
                FLOW_LOG,
                "confidential data reaches the public event stream",
                label, pc, window(), "", taint,
            )
            return [(nxt, state)]
        if opcode == evm_op.RETURN:
            off = pop()
            length = pop()
            taint = (self._region_taint(label, mem, off, length)
                     | state.pc_taint)
            self.ctx.sink(
                FLOW_OUTPUT,
                "confidential data reaches the return data",
                label, pc, window(), "", taint,
            )
            return []
        if opcode == evm_op.REVERT:
            off = pop()
            length = pop()
            taint = (self._region_taint(label, mem, off, length)
                     | state.pc_taint)
            self.ctx.sink(
                FLOW_REVERT,
                "confidential data reaches the revert payload",
                label, pc, window(), "", taint,
            )
            return []
        if opcode == evm_op.STOP:
            return []
        if opcode == evm_op.INVALID:
            return []
        if opcode == evm_op.JUMP:
            dest = pop()
            if dest.consts is None:
                return []  # unresolvable jump: path abandoned (documented)
            if dest.taint:
                state.pc_taint = state.pc_taint | dest.taint
            return [(d, state.copy()) for d in sorted(dest.consts)]
        if opcode == evm_op.JUMPI:
            dest = pop()
            cond = pop()
            self._branch_constraint(label, pc, cond, dest, nxt)
            if cond.taint:
                state.pc_taint = state.pc_taint | cond.taint
            known = cond.const()
            successors = []
            if known is None or known:
                if dest.consts is not None:
                    successors.extend(
                        (d, state.copy()) for d in sorted(dest.consts)
                    )
            if known is None or not known:
                successors.append((nxt, state.copy()))
            return successors
        if opcode == evm_op.HOSTCALL:
            index = pop()
            idx = index.const()
            if idx is None or not 0 <= idx < len(host_mod.HOST_TABLE):
                mem.write_unknown_addr(_EMPTY)
                return [(nxt, state)]
            imp = host_mod.HOST_TABLE[idx]
            args = [pop() for _ in range(imp.nparams)]
            args.reverse()
            return self._hostcall(label, pc, imp.name, imp.nresults,
                                  args, state, window, nxt)
        if opcode in (evm_op.PC, evm_op.MSIZE, evm_op.GAS):
            push(_UNKNOWN)
            return [(nxt, state)]
        # unimplemented/invalid opcode: Pass 2 reports; stop this path
        return []

    def _region_taint(self, label, mem: AbsMemory, ptr: AbsVal,
                      length: AbsVal) -> frozenset:
        ptrc, lenc = ptr.const(), length.const()
        base = ptr.taint | length.taint
        if ptrc is None or lenc is None or lenc < 0:
            return base | mem.all_taint()
        self.ctx.note_mem(label, ptrc + lenc)
        return base | mem.read_taint(ptrc, lenc)

    def _hostcall(self, label, pc, name, nresults, args, state, window, nxt):
        """Same canonical host table as the wasm machine."""
        mem = state.mem
        ctx = self.ctx
        policy = ctx.policy
        push = state.stack.append

        def key_tag(key_ptr: AbsVal, key_len: AbsVal) -> bytes:
            kp, kl = key_ptr.const(), key_len.const()
            if kp is None or kl is None or kl < 0:
                return b""
            return mem.read_prefix(kp, kl)

        if name == "input_size":
            push(AbsVal(sym=("input_size",)))
            return [(nxt, state)]
        if name == "input_read":
            dst, off, length = args
            dstc, offc, lenc = dst.const(), off.const(), length.const()
            if dstc is not None and lenc is not None and lenc >= 0:
                ctx.note_mem(label, dstc + lenc)
                mem.write_unknown(dstc, lenc, _EMPTY)
                if offc is not None:
                    mem.add_region("input", dstc, offc, lenc)
            else:
                mem.write_unknown_addr(_EMPTY)
            push(AbsVal(sym=("input_size",)))
            return [(nxt, state)]
        if name == "storage_get":
            key_ptr, key_len, dst, cap = args
            tag = key_tag(key_ptr, key_len)
            classification = _classify(policy, tag if tag else None)
            dstc, capc = dst.const(), cap.const()
            if classification == KEY_CONFIDENTIAL:
                tag_s = _tag_str(tag)
                ctx.sources.add(tag_s)
                taint = frozenset([tag_s])
                if dstc is not None and capc is not None and capc >= 0:
                    ctx.note_mem(label, dstc + capc)
                    mem.write_unknown(dstc, capc, taint)
                    mem.add_region("storage", dstc, tag_s, capc)
                else:
                    mem.write_unknown_addr(taint)
                push(AbsVal(taint=taint, sym=("storage_len", tag_s)))
            else:
                if dstc is not None and capc is not None and capc >= 0:
                    ctx.note_mem(label, dstc + capc)
                    mem.write_unknown(dstc, capc, _EMPTY)
                else:
                    mem.write_unknown_addr(_EMPTY)
                push(_UNKNOWN)
            return [(nxt, state)]
        if name == "storage_set":
            key_ptr, key_len, val_ptr, val_len = args
            tag = key_tag(key_ptr, key_len)
            classification = _classify(policy, tag if tag else None)
            if classification != KEY_CONFIDENTIAL:
                taint = (self._region_taint(label, mem, val_ptr, val_len)
                         | key_ptr.taint | key_len.taint | state.pc_taint)
                if classification == KEY_PUBLIC:
                    message = ("confidential data written under public "
                               f"storage key '{_tag_str(tag)}'")
                else:
                    message = ("confidential data written under a storage "
                               "key the analyzer cannot prove confidential")
                ctx.sink(FLOW_STORAGE_SET, message, label, pc, window(),
                         "", taint)
            return [(nxt, state)]
        if name == "log":
            taint = (self._region_taint(label, mem, args[0], args[1])
                     | state.pc_taint)
            ctx.sink(
                FLOW_LOG,
                "confidential data reaches the public event stream",
                label, pc, window(), "", taint,
            )
            return [(nxt, state)]
        if name == "output":
            taint = (self._region_taint(label, mem, args[0], args[1])
                     | state.pc_taint)
            ctx.sink(
                FLOW_OUTPUT,
                "confidential data reaches the return data",
                label, pc, window(), "", taint,
            )
            return [(nxt, state)]
        if name == "abort":
            taint = (self._region_taint(label, mem, args[0], args[1])
                     | state.pc_taint)
            ctx.sink(
                FLOW_REVERT,
                "confidential data reaches the revert payload",
                label, pc, window(), "", taint,
            )
            return []
        if name == "call_contract":
            taint = set(state.pc_taint)
            for i in (0, 2, 4):
                taint |= self._region_taint(label, mem, args[i], args[i + 1])
            taint |= args[6].taint | args[7].taint
            ctx.sink(
                FLOW_CALL_CONTRACT,
                "confidential data escapes via call_contract arguments",
                label, pc, window(), "", frozenset(taint),
            )
            dstc, capc = args[6].const(), args[7].const()
            if dstc is not None and capc is not None and capc >= 0:
                mem.write_unknown(dstc, capc, _EMPTY)
            else:
                mem.write_unknown_addr(_EMPTY)
            push(_UNKNOWN)
            return [(nxt, state)]
        if name in ("sha256", "keccak256"):
            ptr, length, dst = args
            taint = self._region_taint(label, mem, ptr, length)
            dstc = dst.const()
            if dstc is not None:
                ctx.note_mem(label, dstc + 32)
                mem.write_unknown(dstc, 32, taint)
            else:
                mem.write_unknown_addr(taint)
            return [(nxt, state)]
        if name == "caller":
            dstc = args[0].const()
            if dstc is not None:
                ctx.note_mem(label, dstc + 20)
                mem.write_unknown(dstc, 20, _EMPTY)
            else:
                mem.write_unknown_addr(_EMPTY)
            return [(nxt, state)]
        if name == "declassify":
            ptrc, lenc = args[0].const(), args[1].const()
            if ptrc is not None and lenc is not None and lenc >= 0:
                mem.clear_taint(ptrc, lenc)
            ctx.declassify(label, pc)
            return [(nxt, state)]
        if nresults:
            push(_UNKNOWN)
        return [(nxt, state)]

    def _branch_constraint(self, label, pc, cond: AbsVal, dest: AbsVal,
                           fallthrough: int) -> None:
        sym = cond.sym
        if sym is not None and sym[0] == "cmp":
            kind = sym[1]
            lhs_sym, rhs_sym = sym[2], sym[3]
        else:
            kind = "truthy"
            lhs_sym, rhs_sym = sym, ("const", 0)
        taken = dest.const()
        self.ctx.constraint(PathConstraint(
            function=label, pc=pc, kind=kind,
            lhs=render_sym(lhs_sym), rhs=render_sym(rhs_sym),
            taken=taken if taken is not None else -1,
            fallthrough=fallthrough,
            lhs_sym=lhs_sym, rhs_sym=rhs_sym,
        ))


# ---------------------------------------------------------------------------
# Front doors
# ---------------------------------------------------------------------------

@dataclass
class BytecodeFlowResult:
    """Report + path constraints from one bytecode-flow analysis."""

    report: AnalysisReport
    constraints: PathConstraints


def build_bytecode_policy(schema=None, extra_confidential=()) -> Policy:
    """Policy for artifacts deployed without source: the CCLe schema's
    confidential key classes (``ccle:``) plus explicit extra prefixes.
    Source directives are Pass 1 vocabulary — the compiler erases the
    ``declassify`` annotations they pair with, so re-checking them here
    would re-flag audited flows."""
    prefixes: list[bytes] = []
    for extra in extra_confidential:
        encoded = (extra.encode("latin-1") if isinstance(extra, str)
                   else bytes(extra))
        if encoded not in prefixes:
            prefixes.append(encoded)
    if schema is not None and schema.confidential_paths():
        if CCLE_PREFIX not in prefixes:
            prefixes.append(CCLE_PREFIX)
    return Policy(tuple(prefixes), frozenset())


def _finish(ctx: _Ctx, contract_name: str,
            functions_analyzed: int) -> BytecodeFlowResult:
    report = AnalysisReport(contract=contract_name)
    report.functions_analyzed = functions_analyzed
    report.findings = sorted(
        ctx.findings.values(),
        key=lambda f: (f.function, f.pc, f.kind, f.message),
    )
    report.declassifications = [
        ctx.declass[k] for k in sorted(ctx.declass)
    ]
    report.sources_seen = sorted(ctx.sources)
    report.resources = ctx.resources()
    constraints = PathConstraints(sorted(
        ctx.constraints.values(),
        key=lambda c: (c.function, c.pc, c.kind, c.lhs, c.rhs),
    ))
    return BytecodeFlowResult(report=report, constraints=constraints)


def analyze_wasm_module(module: Module, policy: Policy,
                        contract_name: str = "",
                        public_outputs: bool = True) -> BytecodeFlowResult:
    """Analyze a decoded CONFIDE-VM module (fused or unfused)."""
    ctx = _Ctx(policy, public_outputs)
    analyzer = _WasmAnalyzer(module, ctx)
    for name in sorted(module.exports):
        fidx = module.exports[name]
        if 0 <= fidx < len(module.functions):
            analyzer.analyze_export(fidx)
    return _finish(ctx, contract_name, len(module.functions))


def analyze_evm_bytecode(code: bytes, entries: dict[str, int], policy: Policy,
                         contract_name: str = "",
                         public_outputs: bool = True) -> BytecodeFlowResult:
    """Analyze EVM bytecode from its method entry offsets."""
    ctx = _Ctx(policy, public_outputs)
    analyzer = _EvmAnalyzer(code, ctx)
    for name in sorted(entries):
        entry = entries[name]
        if 0 <= entry < len(code):
            analyzer.analyze_entry(name, entry)
    return _finish(ctx, contract_name, len(entries))


def analyze_artifact(
    artifact,
    schema=None,
    contract_name: str = "",
    extra_confidential=(),
    policy: Policy | None = None,
    public_outputs: bool = True,
) -> BytecodeFlowResult:
    """Run the bytecode confidentiality-flow pass over one artifact.

    Wasm modules are analyzed in their fused (OPT4) form — the shape
    that actually executes, superinstructions included.  Returns a
    result whose report never raises; artifacts that do not decode
    yield an empty report (Pass 2 owns that rejection).

    ``public_outputs`` selects the sink model for return data and revert
    payloads: True where receipts travel in plaintext (Public-Engine,
    strict CLI default), False where they are sealed under ``k_tx``
    (Confidential-Engine admission — only the transaction owner can
    read them, so ``output``/``abort`` are not public sinks there).
    """
    if policy is None:
        policy = build_bytecode_policy(schema, extra_confidential)
    name = contract_name or f"<{artifact.target}>"
    if artifact.target == "wasm":
        try:
            module = fuse_module(decode_module(artifact.code))
        except (VMError, ValueError, IndexError, KeyError,
                UnicodeDecodeError):
            return BytecodeFlowResult(AnalysisReport(contract=name),
                                      PathConstraints())
        return analyze_wasm_module(module, policy, name, public_outputs)
    if artifact.target == "evm":
        return analyze_evm_bytecode(artifact.code, artifact.entries,
                                    policy, name, public_outputs)
    return BytecodeFlowResult(AnalysisReport(contract=name),
                              PathConstraints())


def flow_verify_artifact(
    artifact,
    schema=None,
    contract_name: str = "",
    extra_confidential=(),
    public_outputs: bool = True,
) -> BytecodeFlowResult:
    """Like :func:`analyze_artifact` but raises :class:`AnalysisError`
    when the flow pass finds a confidential-to-public leak."""
    from repro.errors import AnalysisError

    result = analyze_artifact(artifact, schema=schema,
                              contract_name=contract_name,
                              extra_confidential=extra_confidential,
                              public_outputs=public_outputs)
    report = result.report
    if not report.clean:
        first = report.findings[0]
        extra = len(report.findings) - 1
        suffix = f" (+{extra} more)" if extra else ""
        raise AnalysisError(
            f"bytecode confidentiality leak at {first.location()}: "
            f"{first.message}{suffix}",
            tuple(report.findings),
        )
    return result
