"""Deploy-time static analysis (taint + bytecode verification + flow).

Three cooperating passes guard deploy admission:

- :mod:`repro.analysis.taint` — Pass 1: confidentiality information-flow
  analysis over CWScript source (paper §4's ``confidential`` promise,
  enforced on the *code*);
- :mod:`repro.analysis.verifier` — Pass 2: structural verification of
  untrusted WASM/EVM artifacts (the compile-time ``validate_module``
  guarantees, re-established against byzantine deploy blobs);
- :mod:`repro.analysis.bytecode_flow` — Pass 3: confidentiality-flow
  abstract interpretation over the artifacts themselves, so sourceless
  deploys still get leak analysis (plus static resource bounds and the
  ``PathConstraints`` fuzzer hook).

Run them from the CLI with ``repro analyze`` (``--bytecode`` for
Pass 2+3 standalone); the engines run them automatically inside deploy
admission (see ``core/engine.py``).
"""

from repro.analysis.bytecode_flow import (
    BytecodeFlowResult,
    PathConstraint,
    PathConstraints,
    analyze_artifact,
    analyze_evm_bytecode,
    analyze_wasm_module,
    build_bytecode_policy,
    flow_verify_artifact,
)
from repro.analysis.report import (
    FLOW_CALL_CONTRACT,
    FLOW_KINDS,
    FLOW_LOG,
    FLOW_OUTPUT,
    FLOW_REVERT,
    FLOW_STORAGE_SET,
    KIND_BYTECODE,
    SINK_CALL_CONTRACT,
    SINK_LOG,
    SINK_QUERY_OUTPUT,
    SINK_QUERY_RETURN,
    SINK_STORAGE_SET,
    AnalysisReport,
    Declassification,
    Finding,
    FunctionResources,
)
from repro.analysis.taint import (
    CCLE_PREFIX,
    Policy,
    TaintAnalyzer,
    analyze_program,
    analyze_source,
    build_policy,
    extract_directives,
)
from repro.analysis.verifier import (
    HOST_WHITELIST,
    check_artifact,
    verify_artifact,
    verify_evm,
    verify_module,
)
from repro.errors import AnalysisError

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "BytecodeFlowResult",
    "CCLE_PREFIX",
    "Declassification",
    "FLOW_CALL_CONTRACT",
    "FLOW_KINDS",
    "FLOW_LOG",
    "FLOW_OUTPUT",
    "FLOW_REVERT",
    "FLOW_STORAGE_SET",
    "Finding",
    "FunctionResources",
    "HOST_WHITELIST",
    "KIND_BYTECODE",
    "PathConstraint",
    "PathConstraints",
    "Policy",
    "SINK_CALL_CONTRACT",
    "SINK_LOG",
    "SINK_QUERY_OUTPUT",
    "SINK_QUERY_RETURN",
    "SINK_STORAGE_SET",
    "TaintAnalyzer",
    "analyze_artifact",
    "analyze_evm_bytecode",
    "analyze_program",
    "analyze_source",
    "analyze_wasm_module",
    "build_bytecode_policy",
    "build_policy",
    "check_artifact",
    "extract_directives",
    "flow_verify_artifact",
    "verify_artifact",
    "verify_evm",
    "verify_module",
]
