"""Deploy-time static analysis (taint + bytecode verification).

Two cooperating passes guard deploy admission:

- :mod:`repro.analysis.taint` — confidentiality information-flow
  analysis over CWScript source (paper §4's ``confidential`` promise,
  enforced on the *code*);
- :mod:`repro.analysis.verifier` — structural verification of untrusted
  WASM/EVM artifacts (the compile-time ``validate_module`` guarantees,
  re-established against byzantine deploy blobs).

Run them from the CLI with ``repro analyze``; the engines run them
automatically inside deploy admission (see ``core/engine.py``).
"""

from repro.analysis.report import (
    KIND_BYTECODE,
    SINK_CALL_CONTRACT,
    SINK_LOG,
    SINK_QUERY_OUTPUT,
    SINK_QUERY_RETURN,
    SINK_STORAGE_SET,
    AnalysisReport,
    Declassification,
    Finding,
)
from repro.analysis.taint import (
    CCLE_PREFIX,
    Policy,
    TaintAnalyzer,
    analyze_program,
    analyze_source,
    build_policy,
    extract_directives,
)
from repro.analysis.verifier import (
    HOST_WHITELIST,
    check_artifact,
    verify_artifact,
    verify_evm,
    verify_module,
)
from repro.errors import AnalysisError

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "CCLE_PREFIX",
    "Declassification",
    "Finding",
    "HOST_WHITELIST",
    "KIND_BYTECODE",
    "Policy",
    "SINK_CALL_CONTRACT",
    "SINK_LOG",
    "SINK_QUERY_OUTPUT",
    "SINK_QUERY_RETURN",
    "SINK_STORAGE_SET",
    "TaintAnalyzer",
    "analyze_program",
    "analyze_source",
    "build_policy",
    "check_artifact",
    "extract_directives",
    "verify_artifact",
    "verify_evm",
    "verify_module",
]
