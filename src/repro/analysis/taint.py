"""Pass 1 — confidentiality information-flow analysis for CWScript.

CONFIDE's promise (paper §4) is that ``confidential``-annotated data
never leaves the enclave in plaintext.  The VM and the D-Protocol keep
*state* sealed, but nothing stops contract *code* from copying a
confidential value into a public sink.  This pass closes that gap with
a forward taint analysis over the CWScript AST:

sources
    ``storage_get`` under a key the policy marks confidential.  CWScript
    addresses storage with raw byte-string keys, so the policy maps key
    *prefixes* to confidentiality: source directives
    (``//@confidential-keys: "cfg.", "rd"``) plus the implicit ``ccle:``
    prefix whenever the bound CCLe schema declares confidential fields.

sinks
    ``log`` (the public event stream), ``storage_set`` under a key that
    is not provably confidential, ``call_contract`` arguments, and the
    ``output``/``return`` of a method declared a public query
    (``//@public-queries: status``).  ``abort`` is *not* a sink: abort
    payloads only reach the receipt, which travels sealed under k_tx.

declassify
    ``declassify(expr)`` is the audited escape hatch: the analyzer
    clears taint (and records the site), the compiler erases the call.

The analysis is flow-sensitive within a function, summary-based across
functions (a fixpoint over per-function summaries whose taint tokens
are ``CONF`` plus parameter indices), tracks implicit flows via a
pc-taint stack, and keeps a per-buffer "key tag" — the known literal
prefix at offset 0 — so computed keys built with ``_copy_bytes(key,
"cfg.", 4)`` idioms classify correctly.

Known, documented imprecision: reads under keys the analyzer cannot
resolve are NOT treated as sources (so fully dynamic key schemes are
not protected), and writes through a computed address whose leftmost
variable is not the buffer base are lost.  See docs/analysis.md.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace

from repro.analysis.report import (
    SINK_CALL_CONTRACT,
    SINK_LOG,
    SINK_QUERY_OUTPUT,
    SINK_QUERY_RETURN,
    SINK_STORAGE_SET,
    AnalysisReport,
    Declassification,
    Finding,
)
from repro.errors import AnalysisError
from repro.lang import ast_nodes as ast
from repro.lang.builtins import HOST_BUILTINS, MEM_INTRINSICS
from repro.lang.parser import parse

#: taint token for "derived from a confidential source" (parameters use
#: their integer index as token, enabling symbolic function summaries).
CONF = "CONF"

#: storage prefix the engines use for CCLe-encoded root state.
CCLE_PREFIX = b"ccle:"

DECLASSIFY = "declassify"

_EMPTY: frozenset = frozenset()
_CONF_ONLY: frozenset = frozenset([CONF])

_KEYS_DIRECTIVE = re.compile(r"^\s*//\s*@confidential-keys\s*:\s*(.+?)\s*$", re.M)
_QUERIES_DIRECTIVE = re.compile(r"^\s*//\s*@public-queries\s*:\s*(.+?)\s*$", re.M)
_QUOTED = re.compile(r'"([^"]*)"')

KEY_CONFIDENTIAL = "confidential"
KEY_PUBLIC = "public"
KEY_UNKNOWN = "unknown"

#: functions with a (dst, src, len) byte-copy shape through which the
#: analyzer derives key tags from string literals.  Taint still flows
#: through the generic summaries for any user function.
TAG_COPY_FUNCS = {"memcopy", "__memcopy_soft", "_copy_bytes"}

_MAX_FIXPOINT_ROUNDS = 12
_MAX_LOOP_ROUNDS = 8


# -- policy -------------------------------------------------------------------

@dataclass(frozen=True)
class Policy:
    """What is confidential, and which methods are public queries."""

    confidential_prefixes: tuple[bytes, ...] = ()
    public_queries: frozenset = frozenset()

    def classify_key(self, tag: bytes | None) -> str:
        """Classify a storage key from its statically-known prefix."""
        if tag is None:
            return KEY_UNKNOWN
        for prefix in self.confidential_prefixes:
            if tag.startswith(prefix):
                return KEY_CONFIDENTIAL
            if prefix.startswith(tag):
                return KEY_UNKNOWN  # too short to rule the prefix out
        return KEY_PUBLIC


def extract_directives(source: str) -> tuple[tuple[bytes, ...], frozenset]:
    """Pull ``//@confidential-keys`` / ``//@public-queries`` out of raw
    source (the tokenizer strips comments, so this must pre-scan)."""
    prefixes: list[bytes] = []
    for match in _KEYS_DIRECTIVE.finditer(source):
        for literal in _QUOTED.findall(match.group(1)):
            encoded = literal.encode("latin-1")
            if encoded not in prefixes:
                prefixes.append(encoded)
    queries: set = set()
    for match in _QUERIES_DIRECTIVE.finditer(source):
        for name in re.split(r"[,\s]+", match.group(1)):
            if name:
                queries.add(name)
    return tuple(prefixes), frozenset(queries)


def build_policy(
    source: str,
    schema=None,
    extra_confidential=(),
    public_queries=(),
) -> Policy:
    """Combine source directives, the bound CCLe schema, and explicit
    extras into one policy."""
    prefixes, queries = extract_directives(source)
    combined = list(prefixes)
    for extra in extra_confidential:
        encoded = extra.encode("latin-1") if isinstance(extra, str) else bytes(extra)
        if encoded not in combined:
            combined.append(encoded)
    if schema is not None and schema.confidential_paths():
        if CCLE_PREFIX not in combined:
            combined.append(CCLE_PREFIX)
    return Policy(tuple(combined), queries | frozenset(public_queries))


# -- summaries ----------------------------------------------------------------

@dataclass(frozen=True)
class SymEvent:
    """A sink occurrence with (possibly symbolic) taint."""

    kind: str
    message: str
    function: str
    line: int
    column: int
    detail: str
    taint: frozenset


def _event_order(event: SymEvent):
    return (event.line, event.column, event.kind, sorted(map(str, event.taint)))


@dataclass(frozen=True)
class FuncSummary:
    """Transfer function of one CWScript function, in terms of tokens."""

    result: frozenset = _EMPTY
    param_writes: tuple = ()       # ((param index, tokens), ...)
    global_writes: tuple = ()      # ((global name, tokens), ...)
    events: tuple = ()             # SymEvents, symbolic in the params
    declass: tuple = ()            # Declassification sites
    sources: frozenset = _EMPTY    # confidential key tags actually read
    callees: frozenset = _EMPTY


def _base_var(expr) -> str | None:
    """The buffer base of an address expression (pointer-first idiom:
    ``buf + 8 + i * 16`` → ``buf``)."""
    while isinstance(expr, (ast.Binary, ast.Unary)):
        expr = expr.left if isinstance(expr, ast.Binary) else expr.operand
    if isinstance(expr, ast.Var):
        return expr.name
    return None


class _FuncAnalysis:
    """One flow-sensitive walk of a function body."""

    def __init__(self, analyzer: "TaintAnalyzer", func: ast.Func):
        self.a = analyzer
        self.func = func
        self.param_of = {p: i for i, p in enumerate(func.params)}
        # var -> (taint, key tag).  A parameter's buffer content is
        # whatever the caller passed: its own index token.
        self.env: dict = {
            p: (frozenset([i]), None) for i, p in enumerate(func.params)
        }
        self.pc: list = []
        self.result: set = set()
        self.param_writes: dict = {}
        self.global_writes: dict = {}
        self.events: dict = {}
        self.declass: dict = {}
        self.sources: set = set()
        self.callees: set = set()

    # -- helpers ---------------------------------------------------------

    def _pc_taint(self) -> frozenset:
        out: set = set()
        for taint in self.pc:
            out |= taint
        return frozenset(out)

    def _const_value(self, expr) -> int | None:
        if isinstance(expr, ast.Num):
            return expr.value
        if isinstance(expr, ast.Var) and expr.name in self.a.program.consts:
            return self.a.program.consts[expr.name]
        return None

    def _const_offset(self, expr) -> int | None:
        """Constant byte offset of an address expr from its base var."""
        if isinstance(expr, ast.Var):
            return 0
        if isinstance(expr, ast.Binary) and expr.op == "+":
            left = self._const_offset(expr.left)
            right = self._const_value(expr.right)
            if left is not None and right is not None:
                return left + right
        return None

    @staticmethod
    def _tag_after_write(cur_tag, offset, src_tag, copy_len):
        if offset == 0 and src_tag is not None:
            return src_tag[:copy_len] if copy_len is not None else None
        if offset is None or cur_tag is None:
            return None
        if offset >= len(cur_tag):
            return cur_tag  # write lands past the known prefix
        if src_tag is not None and copy_len is not None:
            return cur_tag[:offset] + src_tag[:copy_len]
        return cur_tag[:offset]

    def _write_buffer(self, addr_expr, taint, src_tag=None, copy_len=None):
        """Model a store through an address expression."""
        base = _base_var(addr_expr)
        if base is None:
            return  # write through a computed address: dropped (documented)
        taint = frozenset(taint) | self._pc_taint()
        offset = self._const_offset(addr_expr)
        if base in self.env:
            cur_taint, cur_tag = self.env[base]
            new_tag = self._tag_after_write(cur_tag, offset, src_tag, copy_len)
            self.env[base] = (cur_taint | taint, new_tag)
            idx = self.param_of.get(base)
            if idx is not None:
                self.param_writes.setdefault(idx, set()).update(taint)
        elif base in self.a.program.globals:
            self._write_global(base, taint)

    def _write_global(self, name, taint):
        self.global_writes.setdefault(name, set()).update(taint)
        if CONF in taint:
            self.a.global_taint[name] = (
                self.a.global_taint.get(name, _EMPTY) | _CONF_ONLY
            )

    def _event(self, kind, message, pos, detail, taint):
        taint = frozenset(taint)
        if not taint:
            return
        event = SymEvent(kind, message, self.func.name,
                         pos.line, pos.column, detail, taint)
        self.events[(kind, event.function, event.line, event.column, taint)] = event

    def _declassify_site(self, pos):
        key = (self.func.name, pos.line, pos.column)
        self.declass[key] = Declassification(self.func.name, pos.line, pos.column)

    @staticmethod
    def _substitute(tokens, arg_taints) -> frozenset:
        out: set = set()
        for token in tokens:
            if token == CONF:
                out.add(CONF)
            elif isinstance(token, int) and token < len(arg_taints):
                out |= arg_taints[token]
        return frozenset(out)

    # -- expressions -----------------------------------------------------

    def _eval(self, expr):
        """Evaluate an expression to (taint, key tag)."""
        if isinstance(expr, ast.Num):
            return _EMPTY, None
        if isinstance(expr, ast.Str):
            return _EMPTY, bytes(expr.value)
        if isinstance(expr, ast.Var):
            name = expr.name
            if name in self.env:
                return self.env[name]
            if name in self.a.program.consts:
                return _EMPTY, None
            if name in self.a.program.globals:
                return self.a.global_taint.get(name, _EMPTY), None
            return _EMPTY, None
        if isinstance(expr, ast.Unary):
            taint, _ = self._eval(expr.operand)
            return taint, None
        if isinstance(expr, ast.Binary):
            left, _ = self._eval(expr.left)
            right, _ = self._eval(expr.right)
            return left | right, None
        if isinstance(expr, ast.Call):
            return self._call(expr)
        return _EMPTY, None

    def _call(self, expr: ast.Call):
        name = expr.name
        if name == DECLASSIFY:
            if len(expr.args) != 1:
                # report here, where positions are still relative to the
                # user's source (the compiler's own check sees the
                # prelude-shifted program)
                raise AnalysisError(
                    f"declassify(expr) takes exactly one argument "
                    f"at {expr.pos}"
                )
            _, tag = self._eval(expr.args[0])
            self._declassify_site(expr.pos)
            return _EMPTY, tag
        if name in ("alloc", "__alloc"):
            for arg in expr.args:
                self._eval(arg)
            return _EMPTY, None
        if name == "sizeof":
            return _EMPTY, None
        if name in MEM_INTRINSICS:
            return self._mem_intrinsic(name, expr)
        if name in HOST_BUILTINS:
            return self._host_call(name, expr)
        return self._user_call(name, expr)

    def _mem_intrinsic(self, name, expr):
        args = expr.args
        vals = [self._eval(arg) for arg in args]
        if name.startswith("load"):
            # reading through a pointer yields the buffer's taint (the
            # base var accumulates buffer taint on every store)
            return vals[0][0], None
        if name.startswith("store"):
            self._write_buffer(args[0], vals[0][0] | vals[1][0])
            return _EMPTY, None
        if name == "memcopy" or name == "memfill":
            taint = vals[1][0] | vals[2][0]
            src_tag = vals[1][1] if name == "memcopy" else None
            copy_len = self._const_value(args[2])
            self._write_buffer(args[0], taint, src_tag=src_tag, copy_len=copy_len)
            return _EMPTY, None
        return _EMPTY, None  # memsize

    def _host_call(self, name, expr):
        args = expr.args
        vals = [self._eval(arg) for arg in args]
        pc = self._pc_taint()
        pos = expr.pos
        if name == "storage_get":
            key_tag = vals[0][1]
            if self.a.policy.classify_key(key_tag) == KEY_CONFIDENTIAL:
                self._write_buffer(args[2], _CONF_ONLY)
                self.sources.add(key_tag)
            else:
                self._write_buffer(args[2], _EMPTY)
            return _EMPTY, None
        if name == "storage_set":
            key_taint, key_tag = vals[0]
            classification = self.a.policy.classify_key(key_tag)
            if classification != KEY_CONFIDENTIAL:
                taint = vals[1][0] | vals[2][0] | vals[3][0] | key_taint | pc
                if classification == KEY_PUBLIC:
                    detail = key_tag.decode("latin-1")
                    message = (
                        "confidential data written under public "
                        f"storage key '{detail}'"
                    )
                else:
                    detail = "<computed>"
                    message = ("confidential data written under a storage "
                               "key the analyzer cannot prove confidential")
                self._event(SINK_STORAGE_SET, message, pos, detail, taint)
            return _EMPTY, None
        if name == "log":
            taint = vals[0][0] | vals[1][0] | pc
            self._event(
                SINK_LOG,
                "confidential data reaches emit_log (public event stream)",
                pos, "", taint,
            )
            return _EMPTY, None
        if name == "output":
            taint = vals[0][0] | vals[1][0] | pc
            self._event(SINK_QUERY_OUTPUT, "output", pos, "", taint)
            return _EMPTY, None
        if name == "call_contract":
            taint = pc.union(*(v[0] for v in vals)) if vals else pc
            self._event(
                SINK_CALL_CONTRACT,
                "confidential data escapes via call_contract arguments",
                pos, "", taint,
            )
            return _EMPTY, None
        if name in ("sha256", "keccak256"):
            taint = vals[0][0] | vals[1][0]
            self._write_buffer(args[2], taint)
            return _EMPTY, None
        if name == "input_read" or name == "caller":
            self._write_buffer(args[0], _EMPTY)
            return _EMPTY, None
        # input_size / abort / anything new: no flow
        return _EMPTY, None

    def _user_call(self, name, expr):
        args = expr.args
        vals = [self._eval(arg) for arg in args]
        arg_taints = [v[0] for v in vals]
        pc = self._pc_taint()
        self.callees.add(name)
        summary = self.a.summaries.get(name)
        if summary is None:
            # undefined function: codegen will reject it anyway; be
            # conservative so partial programs still analyze
            combined = pc.union(*arg_taints) if arg_taints else pc
            return combined, None
        for idx, tokens in summary.param_writes:
            if idx >= len(args):
                continue
            instantiated = self._substitute(tokens, arg_taints)
            src_tag = copy_len = None
            if name in TAG_COPY_FUNCS and len(args) == 3 and idx == 0:
                src_tag = vals[1][1]
                copy_len = self._const_value(args[2])
            self._write_buffer(args[idx], instantiated,
                               src_tag=src_tag, copy_len=copy_len)
        for gname, tokens in summary.global_writes:
            instantiated = self._substitute(tokens, arg_taints) | pc
            if instantiated:
                self.global_writes.setdefault(gname, set()).update(instantiated)
                if CONF in instantiated:
                    self.a.global_taint[gname] = (
                        self.a.global_taint.get(gname, _EMPTY) | _CONF_ONLY
                    )
        for event in summary.events:
            if event.kind == SINK_QUERY_RETURN:
                continue  # a callee's return value is not the query's
            instantiated = self._substitute(event.taint, arg_taints) | pc
            if instantiated:
                inst = replace(event, taint=instantiated)
                self.events[(inst.kind, inst.function, inst.line,
                             inst.column, instantiated)] = inst
        return self._substitute(summary.result, arg_taints), None

    # -- statements ------------------------------------------------------

    def _walk(self, stmts):
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt):
        if isinstance(stmt, (ast.Let, ast.Assign)):
            taint, tag = self._eval(stmt.value)
            taint = taint | self._pc_taint()
            name = stmt.name
            if (isinstance(stmt, ast.Assign) and name not in self.env
                    and name in self.a.program.globals):
                self._write_global(name, taint)
            else:
                self.env[name] = (taint, tag)
        elif isinstance(stmt, ast.If):
            cond_taint, _ = self._eval(stmt.cond)
            self.pc.append(cond_taint)
            saved = dict(self.env)
            self._walk(stmt.then_body)
            env_then = self.env
            self.env = dict(saved)
            self._walk(stmt.else_body)
            self.env = self._join(env_then, self.env)
            self.pc.pop()
        elif isinstance(stmt, ast.While):
            for _ in range(_MAX_LOOP_ROUNDS):
                before_env = dict(self.env)
                before_globals = dict(self.a.global_taint)
                cond_taint, _ = self._eval(stmt.cond)
                self.pc.append(cond_taint)
                self._walk(stmt.body)
                self.pc.pop()
                self.env = self._join(self.env, before_env)
                if (self.env == before_env
                        and self.a.global_taint == before_globals):
                    break
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taint, _ = self._eval(stmt.value)
                taint = taint | self._pc_taint()
                self.result.update(taint)
                if self.func.has_result:
                    self._event(SINK_QUERY_RETURN, "return", stmt.pos, "", taint)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr)
        # Break / Continue need no transfer: loop bodies iterate to a
        # joined fixpoint anyway.

    @staticmethod
    def _join(env_a, env_b):
        out = {}
        for name in set(env_a) | set(env_b):
            taint_a, tag_a = env_a.get(name, (_EMPTY, None))
            taint_b, tag_b = env_b.get(name, (_EMPTY, None))
            out[name] = (taint_a | taint_b, tag_a if tag_a == tag_b else None)
        return out

    # -- driver ----------------------------------------------------------

    def run(self) -> FuncSummary:
        self._walk(self.func.body)
        return FuncSummary(
            result=frozenset(self.result),
            param_writes=tuple(
                (i, frozenset(s)) for i, s in sorted(self.param_writes.items())
            ),
            global_writes=tuple(
                (n, frozenset(s)) for n, s in sorted(self.global_writes.items())
            ),
            events=tuple(sorted(self.events.values(), key=_event_order)),
            declass=tuple(
                self.declass[k] for k in sorted(self.declass)
            ),
            sources=frozenset(self.sources),
            callees=frozenset(self.callees),
        )


# -- whole-program driver -----------------------------------------------------

class TaintAnalyzer:
    """Summary-based interprocedural taint analysis of one program."""

    def __init__(self, program: ast.Program, policy: Policy):
        self.program = program
        self.policy = policy
        self.funcs = {func.name: func for func in program.funcs}
        self.summaries: dict = {name: FuncSummary() for name in self.funcs}
        self.global_taint: dict = {}

    def run(self) -> None:
        for _ in range(_MAX_FIXPOINT_ROUNDS):
            changed = False
            for func in self.program.funcs:
                summary = _FuncAnalysis(self, func).run()
                if summary != self.summaries[func.name]:
                    self.summaries[func.name] = summary
                    changed = True
            if not changed:
                return

    def _reachable(self) -> set:
        stack = [f.name for f in self.program.funcs if f.exported]
        seen: set = set()
        while stack:
            name = stack.pop()
            if name in seen or name not in self.summaries:
                continue
            seen.add(name)
            stack.extend(self.summaries[name].callees)
        return seen

    def report(self, contract_name: str = "") -> AnalysisReport:
        rep = AnalysisReport(contract=contract_name)
        rep.functions_analyzed = len(self.funcs)
        reachable = self._reachable()
        seen_findings: set = set()
        findings: list[Finding] = []
        for func in self.program.funcs:
            if not func.exported:
                continue
            for event in self.summaries[func.name].events:
                if CONF not in event.taint:
                    continue
                if event.kind in (SINK_QUERY_OUTPUT, SINK_QUERY_RETURN):
                    if func.name not in self.policy.public_queries:
                        continue  # sealed receipt, not a public channel
                    message = (
                        f"public query '{func.name}' exposes confidential "
                        f"data via {event.message}"
                    )
                    key = (event.kind, func.name, event.function,
                           event.line, event.column)
                else:
                    message = event.message
                    key = (event.kind, event.function, event.line, event.column)
                if key in seen_findings:
                    continue
                seen_findings.add(key)
                findings.append(Finding(
                    kind=event.kind, message=message, function=event.function,
                    line=event.line, column=event.column, detail=event.detail,
                ))
        rep.findings = sorted(
            findings, key=lambda f: (f.line, f.column, f.kind, f.message)
        )
        for name in sorted(reachable):
            summary = self.summaries.get(name)
            if summary is None:
                continue
            rep.declassifications.extend(summary.declass)
            for tag in summary.sources:
                decoded = tag.decode("latin-1")
                if decoded not in rep.sources_seen:
                    rep.sources_seen.append(decoded)
        rep.declassifications.sort(key=lambda d: (d.function, d.line, d.column))
        rep.sources_seen.sort()
        return rep


def analyze_program(
    program: ast.Program, policy: Policy, contract_name: str = ""
) -> AnalysisReport:
    analyzer = TaintAnalyzer(program, policy)
    analyzer.run()
    return analyzer.report(contract_name)


def analyze_source(
    source: str,
    schema_source: str = "",
    *,
    schema=None,
    contract_name: str = "",
    extra_confidential=(),
    public_queries=(),
) -> AnalysisReport:
    """Parse + analyze one contract.  ``schema``/``schema_source`` bind
    the CCLe schema whose confidential fields seed the ``ccle:`` prefix;
    source directives add raw-key prefixes and public queries."""
    if schema is None and schema_source:
        from repro.ccle.parser import parse_schema

        schema = parse_schema(schema_source)
    policy = build_policy(
        source, schema,
        extra_confidential=extra_confidential,
        public_queries=public_queries,
    )
    program = parse(source)
    return analyze_program(program, policy, contract_name)
