"""Pass 2 — untrusted-bytecode verifier for deployed artifacts.

``validate_module`` runs when a node *compiles* a contract, but a
byzantine peer can gossip a deploy transaction carrying any blob it
likes; today that blob reaches the executor unchecked.  This pass makes
deploy admission re-establish everything a local compile would have
guaranteed:

- the module decodes and passes structural validation (indices, jump
  targets — including the superinstruction forms the optimizer emits);
- every host import matches the canonical reduced host table by name
  *and* signature (paper §6.4's reduced instruction set: a foreign
  import is an escape hatch out of the enclave's semantics);
- stack effects balance along every path: an abstract interpretation
  walks each function with a worklist, checking underflow, join-depth
  consistency, RETURN arity, and that no conditional branch can fall
  off the end of a body;
- memory declarations stay within sane bounds.

EVM artifacts get a linear scan that respects PUSH immediates, stops at
the first ``INVALID`` guard (the codegen places the raw data image after
it), validates opcodes, checks static jumps land on ``JUMPDEST``, and
checks the method entry table points at real instruction boundaries.
"""

from __future__ import annotations

from repro.analysis.report import KIND_BYTECODE, AnalysisReport, Finding
from repro.errors import AnalysisError, VMError
from repro.vm import host as host_mod
from repro.vm.disasm import evm_instruction_window, wasm_instruction_window
from repro.vm.evm import opcodes as evm_op
from repro.vm.wasm import opcodes as op
from repro.vm.wasm.module import Module, decode_module, validate_module

#: canonical host signatures a module may import (name -> (params, results))
HOST_WHITELIST: dict[str, tuple[int, int]] = {
    imp.name: (imp.nparams, imp.nresults) for imp in host_mod.HOST_TABLE
}

MAX_MEMORY_PAGES = 4096       # 256 MiB, far above anything the compiler emits
MAX_FUNCTION_VARS = 4096
MAX_FUNCTION_INSTRS = 1 << 20

_ALU_OPS = frozenset({
    op.ADD, op.SUB, op.MUL, op.DIV_S, op.DIV_U, op.REM_S, op.REM_U,
    op.AND, op.OR, op.XOR, op.SHL, op.SHR_U, op.SHR_S,
})
_CMP_OPS = frozenset({
    op.EQ, op.NE, op.LT_S, op.LT_U, op.GT_S, op.GT_U,
    op.LE_S, op.LE_U, op.GE_S, op.GE_U,
})
_LOAD_OPS = frozenset({op.LOAD8_U, op.LOAD16_U, op.LOAD32_U, op.LOAD64})
_STORE_OPS = frozenset({op.STORE8, op.STORE16, op.STORE32, op.STORE64})

#: (pops, pushes) for every opcode with a fixed effect — including the
#: superinstructions, so post-fusion code verifies too.
STACK_EFFECTS: dict[int, tuple[int, int]] = {
    op.NOP: (0, 0),
    op.CONST: (0, 1),
    op.DROP: (1, 0),
    op.LOCAL_GET: (0, 1),
    op.LOCAL_SET: (1, 0),
    op.LOCAL_TEE: (1, 1),
    op.JMP: (0, 0),
    op.JMP_IF: (1, 0),
    op.JMP_IFZ: (1, 0),
    op.SELECT: (3, 1),
    op.EQZ: (1, 1),
    op.MEMCOPY: (3, 0),
    op.MEMFILL: (3, 0),
    op.MEMSIZE: (0, 1),
    op.GETGET: (0, 2),
    op.GETCONST: (0, 2),
    op.ADDI: (1, 1),
    op.GETADD: (1, 1),
    op.MOVL: (0, 0),
    op.CMP_BR: (2, 0),
    op.LOAD8_LOCAL: (0, 1),
    op.INCL: (0, 0),
}
for _o in _ALU_OPS | _CMP_OPS:
    STACK_EFFECTS[_o] = (2, 1)
for _o in _LOAD_OPS:
    STACK_EFFECTS[_o] = (1, 1)
for _o in _STORE_OPS:
    STACK_EFFECTS[_o] = (2, 0)


def _finding(message: str, detail: str = "", function: str = "",
             pc: int = -1, window: str = "") -> Finding:
    return Finding(kind=KIND_BYTECODE, message=message, detail=detail,
                   function=function, pc=pc, window=window)


# -- CONFIDE-VM (wasm) --------------------------------------------------------

def _verify_wasm_function(module: Module, fidx: int) -> list[Finding]:
    """Abstract interpretation of one body's stack discipline."""
    func = module.functions[fidx]
    code = func.code
    size = len(code)
    findings: list[Finding] = []
    exports = {index: name for name, index in module.exports.items()}
    label = exports.get(fidx, f"func_{fidx}")
    where = f"function {fidx}"
    if func.nresults not in (0, 1):
        return [_finding(f"{where}: nresults must be 0 or 1, got {func.nresults}",
                         function=label)]
    if func.nparams + func.nlocals > MAX_FUNCTION_VARS:
        return [_finding(f"{where}: too many locals", function=label)]
    if size > MAX_FUNCTION_INSTRS:
        return [_finding(f"{where}: body too large", function=label)]

    def here(index: int, message: str) -> Finding:
        return _finding(message, function=label, pc=index,
                        window=wasm_instruction_window(code, index))

    depths: dict[int, int] = {0: 0}
    work = [0]
    while work and not findings:
        index = work.pop()
        depth = depths[index]
        opcode, a, _b = code[index]
        at = f"{where} instr {index} ({op.NAMES.get(opcode, opcode)})"
        if opcode == op.RETURN:
            if depth < func.nresults:
                findings.append(here(
                    index,
                    f"{at}: RETURN with stack depth {depth} < {func.nresults}",
                ))
            continue
        if opcode == op.UNREACHABLE:
            continue
        if opcode == op.CALL:
            callee = module.functions[a]
            pops, pushes = callee.nparams, callee.nresults
        elif opcode == op.CALL_HOST:
            imp = module.hosts[a]
            pops, pushes = imp.nparams, imp.nresults
        else:
            effect = STACK_EFFECTS.get(opcode)
            if effect is None:
                findings.append(here(index, f"{at}: no stack effect defined"))
                continue
            pops, pushes = effect
        if depth < pops:
            findings.append(here(
                index, f"{at}: stack underflow (depth {depth}, pops {pops})"
            ))
            continue
        after = depth - pops + pushes
        successors = []
        if opcode == op.JMP:
            successors.append(a)
        elif opcode in op.BRANCH_OPS:  # JMP_IF / JMP_IFZ / CMP_BR
            successors.append(a)
            successors.append(index + 1)
        else:
            successors.append(index + 1)
        for succ in successors:
            if succ >= size:
                findings.append(here(
                    index, f"{at}: control falls off the end of the body"
                ))
                break
            known = depths.get(succ)
            if known is None:
                depths[succ] = after
                work.append(succ)
            elif known != after:
                findings.append(here(
                    succ,
                    f"{where} instr {succ}: inconsistent stack depth at "
                    f"join ({known} vs {after})",
                ))
                break
    return findings


def verify_module(module: Module) -> list[Finding]:
    """Full verification of a decoded (possibly fused) module."""
    try:
        validate_module(module)
    except VMError as exc:
        return [_finding(f"structural validation failed: {exc}")]
    findings: list[Finding] = []
    if not 1 <= module.memory_pages <= MAX_MEMORY_PAGES:
        findings.append(_finding(
            f"memory declaration out of bounds: {module.memory_pages} pages"
        ))
    for imp in module.hosts:
        expected = HOST_WHITELIST.get(imp.name)
        if expected is None:
            findings.append(_finding(
                f"host import '{imp.name}' is not in the canonical host table"
            ))
        elif expected != (imp.nparams, imp.nresults):
            findings.append(_finding(
                f"host import '{imp.name}' signature {imp.nparams}/"
                f"{imp.nresults} != canonical {expected[0]}/{expected[1]}"
            ))
    for name, idx in sorted(module.exports.items()):
        if module.functions[idx].nparams != 0:
            findings.append(_finding(
                f"exported method '{name}' takes parameters"
            ))
    for fidx in range(len(module.functions)):
        findings.extend(_verify_wasm_function(module, fidx))
    return findings


# -- EVM ----------------------------------------------------------------------

def verify_evm(code: bytes, entries: dict[str, int]) -> list[Finding]:
    """Linear scan of EVM bytecode up to the data-region guard."""
    findings: list[Finding] = []
    starts: set[int] = set()
    jumpdests: set[int] = set()
    pushes: dict[int, int] = {}  # pos -> immediate value
    pos = 0
    code_end = len(code)
    prev_pos: int | None = None
    while pos < len(code):
        opcode = code[pos]
        if opcode == evm_op.INVALID:
            # the codegen's guard: everything after is the memory image
            code_end = pos
            starts.add(pos)
            break
        if opcode not in evm_op.NAMES:
            findings.append(_finding(
                f"invalid EVM opcode 0x{opcode:02x} at offset {pos}",
                pc=pos, window=evm_instruction_window(code, pos),
            ))
            return findings
        starts.add(pos)
        if evm_op.PUSH1 <= opcode <= evm_op.PUSH1 + 31:
            width = opcode - evm_op.PUSH1 + 1
            if pos + width >= len(code):
                findings.append(_finding(
                    f"truncated PUSH{width} immediate at offset {pos}",
                    pc=pos, window=evm_instruction_window(code, pos),
                ))
                return findings
            pushes[pos] = int.from_bytes(code[pos + 1 : pos + 1 + width], "big")
            next_pos = pos + 1 + width
        else:
            if opcode == evm_op.JUMPDEST:
                jumpdests.add(pos)
            if opcode in (evm_op.JUMP, evm_op.JUMPI) and prev_pos in pushes:
                target = pushes[prev_pos]
                if target not in jumpdests and (
                    target >= len(code) or code[target] != evm_op.JUMPDEST
                ):
                    findings.append(_finding(
                        f"static jump at offset {pos} targets {target}, "
                        "which is not a JUMPDEST",
                        pc=pos, window=evm_instruction_window(code, pos),
                    ))
            next_pos = pos + 1
        prev_pos = pos
        pos = next_pos
    for name in sorted(entries):
        entry = entries[name]
        if entry >= code_end or entry not in starts:
            findings.append(_finding(
                f"entry '{name}' at offset {entry} is not an instruction "
                "boundary in the code region",
                function=name, pc=entry,
            ))
    return findings


# -- artifact front door ------------------------------------------------------

def check_artifact(artifact, contract_name: str = "") -> AnalysisReport:
    """Verify one deployable artifact; returns a report, never raises."""
    report = AnalysisReport(contract=contract_name or f"<{artifact.target}>")
    findings: list[Finding] = []
    checks = 0
    if artifact.target == "wasm":
        try:
            module = decode_module(artifact.code)
        except (VMError, ValueError, IndexError, KeyError,
                UnicodeDecodeError) as exc:
            findings.append(_finding(f"module does not decode: {exc}"))
            module = None
        if module is not None:
            checks += 3 + sum(len(f.code) for f in module.functions)
            findings.extend(verify_module(module))
            for method in artifact.methods:
                if method not in module.exports:
                    findings.append(_finding(
                        f"declared method '{method}' is not exported"
                    ))
    elif artifact.target == "evm":
        checks += 1 + len(artifact.code)
        findings.extend(verify_evm(artifact.code, artifact.entries))
        for method in artifact.methods:
            if method not in artifact.entries:
                findings.append(_finding(
                    f"declared method '{method}' has no entry offset"
                ))
    else:
        findings.append(_finding(f"unknown artifact target '{artifact.target}'"))
    report.findings = findings
    report.verifier_checks = checks
    return report


def verify_artifact(artifact, contract_name: str = "") -> AnalysisReport:
    """Like :func:`check_artifact` but raises :class:`AnalysisError`."""
    report = check_artifact(artifact, contract_name)
    if not report.clean:
        first = report.findings[0].message
        extra = len(report.findings) - 1
        suffix = f" (+{extra} more)" if extra else ""
        raise AnalysisError(f"artifact rejected: {first}{suffix}",
                            report.findings)
    return report
