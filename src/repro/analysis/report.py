"""Structured results of the deploy-time static analyses.

Both passes (taint analysis and bytecode verification) report through
the same :class:`AnalysisReport`, so the CLI, the deploy-admission hook
and the test fixtures consume one machine-readable shape.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

#: finding kinds produced by the taint pass
SINK_LOG = "log"
SINK_STORAGE_SET = "storage_set"
SINK_CALL_CONTRACT = "call_contract"
SINK_QUERY_OUTPUT = "query_output"
SINK_QUERY_RETURN = "query_return"

#: finding kind produced by the bytecode verifier
KIND_BYTECODE = "bytecode"


@dataclass(frozen=True)
class Finding:
    """One confidential-to-public flow or structural defect."""

    kind: str            # sink kind or 'bytecode'
    message: str
    function: str = ""   # CWScript function containing the sink
    line: int = 0
    column: int = 0
    detail: str = ""     # e.g. the static storage-key prefix

    def location(self) -> str:
        if self.line:
            return f"{self.function or '?'} (line {self.line}, col {self.column})"
        return self.function or "artifact"


@dataclass(frozen=True)
class Declassification:
    """An audited ``declassify(...)`` escape hatch the analyzer honoured."""

    function: str
    line: int
    column: int


@dataclass
class AnalysisReport:
    """Outcome of running the analyses over one contract."""

    contract: str = ""
    findings: list[Finding] = field(default_factory=list)
    declassifications: list[Declassification] = field(default_factory=list)
    sources_seen: list[str] = field(default_factory=list)  # conf key prefixes hit
    functions_analyzed: int = 0
    verifier_checks: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def merge(self, other: "AnalysisReport") -> None:
        self.findings.extend(other.findings)
        self.declassifications.extend(other.declassifications)
        for src in other.sources_seen:
            if src not in self.sources_seen:
                self.sources_seen.append(src)
        self.functions_analyzed += other.functions_analyzed
        self.verifier_checks += other.verifier_checks

    def to_dict(self) -> dict:
        return {
            "contract": self.contract,
            "clean": self.clean,
            "findings": [asdict(f) for f in self.findings],
            "declassifications": [asdict(d) for d in self.declassifications],
            "sources_seen": list(self.sources_seen),
            "functions_analyzed": self.functions_analyzed,
            "verifier_checks": self.verifier_checks,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def summary(self) -> str:
        if self.clean:
            extra = ""
            if self.declassifications:
                extra = f" ({len(self.declassifications)} declassification(s))"
            return f"{self.contract or 'contract'}: clean{extra}"
        lines = [f"{self.contract or 'contract'}: {len(self.findings)} finding(s)"]
        for finding in self.findings:
            lines.append(
                f"  [{finding.kind}] {finding.location()}: {finding.message}"
            )
        return "\n".join(lines)
