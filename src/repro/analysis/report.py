"""Structured results of the deploy-time static analyses.

Both passes (taint analysis and bytecode verification) report through
the same :class:`AnalysisReport`, so the CLI, the deploy-admission hook
and the test fixtures consume one machine-readable shape.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

#: finding kinds produced by the taint pass
SINK_LOG = "log"
SINK_STORAGE_SET = "storage_set"
SINK_CALL_CONTRACT = "call_contract"
SINK_QUERY_OUTPUT = "query_output"
SINK_QUERY_RETURN = "query_return"

#: finding kind produced by the bytecode verifier
KIND_BYTECODE = "bytecode"

#: finding kinds produced by the bytecode confidentiality-flow pass
#: (Pass 3) — one per public sink, so fixtures pin exact leak classes.
FLOW_STORAGE_SET = "flow_storage_set"
FLOW_LOG = "flow_log"
FLOW_OUTPUT = "flow_output"
FLOW_REVERT = "flow_revert"
FLOW_CALL_CONTRACT = "flow_call_contract"

FLOW_KINDS = (
    FLOW_STORAGE_SET, FLOW_LOG, FLOW_OUTPUT, FLOW_REVERT,
    FLOW_CALL_CONTRACT,
)


@dataclass(frozen=True)
class Finding:
    """One confidential-to-public flow or structural defect."""

    kind: str            # sink kind, flow kind, or 'bytecode'
    message: str
    function: str = ""   # CWScript function containing the sink
    line: int = 0
    column: int = 0
    detail: str = ""     # e.g. the static storage-key prefix
    # Bytecode-level context (source-pass findings leave the defaults):
    pc: int = -1         # instruction index (wasm) / byte offset (evm)
    window: str = ""     # rendered instruction window around ``pc``

    def location(self) -> str:
        if self.line:
            return f"{self.function or '?'} (line {self.line}, col {self.column})"
        if self.pc >= 0:
            return f"{self.function or 'artifact'} (pc {self.pc})"
        return self.function or "artifact"


@dataclass(frozen=True)
class Declassification:
    """An audited ``declassify(...)`` escape hatch the analyzer honoured.

    Source-pass sites carry (line, column); bytecode-pass sites carry the
    instruction index in ``line`` with ``column`` left at 0.
    """

    function: str
    line: int
    column: int


@dataclass(frozen=True)
class FunctionResources:
    """Static resource bounds for one bytecode function (Pass 3).

    ``cycle_estimate`` is the worst-case acyclic-path cost under the
    CycleAccountant cost table; when ``has_loops`` is set it bounds one
    iteration of the widest loop-free path, not the whole execution.
    """

    function: str
    max_stack: int
    memory_high_water: int  # highest statically-reachable byte address
    cycle_estimate: int
    has_loops: bool


@dataclass
class AnalysisReport:
    """Outcome of running the analyses over one contract."""

    contract: str = ""
    findings: list[Finding] = field(default_factory=list)
    declassifications: list[Declassification] = field(default_factory=list)
    sources_seen: list[str] = field(default_factory=list)  # conf key prefixes hit
    functions_analyzed: int = 0
    verifier_checks: int = 0
    resources: list[FunctionResources] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def merge(self, other: "AnalysisReport") -> None:
        self.findings.extend(other.findings)
        self.declassifications.extend(other.declassifications)
        for src in other.sources_seen:
            if src not in self.sources_seen:
                self.sources_seen.append(src)
        self.functions_analyzed += other.functions_analyzed
        self.verifier_checks += other.verifier_checks
        self.resources.extend(other.resources)

    def to_dict(self) -> dict:
        return {
            "contract": self.contract,
            "clean": self.clean,
            "findings": [asdict(f) for f in self.findings],
            "declassifications": [asdict(d) for d in self.declassifications],
            "sources_seen": list(self.sources_seen),
            "functions_analyzed": self.functions_analyzed,
            "verifier_checks": self.verifier_checks,
            "resources": [asdict(r) for r in self.resources],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def summary(self) -> str:
        if self.clean:
            extra = ""
            if self.declassifications:
                extra = f" ({len(self.declassifications)} declassification(s))"
            return f"{self.contract or 'contract'}: clean{extra}"
        lines = [f"{self.contract or 'contract'}: {len(self.findings)} finding(s)"]
        for finding in self.findings:
            lines.append(
                f"  [{finding.kind}] {finding.location()}: {finding.message}"
            )
        return "\n".join(lines)
