"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``compile <file.cws> [--target wasm|evm] [-o out]`` — compile a
  CWScript contract and write the artifact.
- ``disasm <file.cws> [--target ...] [--fuse]`` — compile and print the
  disassembly (``--fuse`` shows the post-OPT4 superinstruction form).
- ``histogram <file.cws> [--target ...]`` — static opcode frequencies.
- ``analyze <file.cws> [--schema file.ccle] [--target ...] [--json]`` —
  run the deploy-time static analyses (confidentiality taint analysis
  plus the untrusted-bytecode verifier); exits non-zero on findings.
- ``analyze --bytecode <artifact.bin> [--schema file.ccle]
  [--confidential-prefix P] [--json]`` — run the bytecode verifier and
  the bytecode confidentiality-flow pass standalone on a compiled
  artifact (both VM formats) — what sourceless deploy admission runs.
- ``demo [--trace out.json]`` — run the quickstart flow (single
  confidential node), optionally writing a Chrome trace of it.
- ``bench [--quick]`` — print the paper's tables/figures from a quick
  run, including the Table 1 / metrics-registry crosscheck.
- ``metrics [--txs N]`` — run a small confidential flow on a full node
  and print the metrics registry in Prometheus text exposition format.
- ``trace [-o out.json] [--txs N]`` — run the same flow under the span
  tracer and write Chrome trace-event JSON (load in Perfetto or
  ``chrome://tracing``).
- ``sim --seed S --steps N --faults drop,crash,partition,epc
  [--storage lsm]`` — run the deterministic fault-injection simulator;
  exits non-zero (printing the seed and fault schedule) if any
  safety/durability/confidentiality invariant is violated.
- ``shardsim --seed S --shards N --faults partition,coordinator_crash``
  — run the deterministic multi-shard simulator (docs/sharding.md);
  exits non-zero on any atomicity/confidentiality/convergence violation.
- ``bench --shards 1,2,4 [--shard-out FILE]`` — the horizontal
  scale-out bench: aggregate committed TPS vs shard count plus the
  cross-shard commit cost.
- ``db stats|verify|compact <dir>`` — inspect or maintain an LSM store
  directory (docs/storage.md).  Sealed stores need ``--seal-key`` (hex).
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.lang import compile_source
from repro.vm.disasm import disassemble_artifact, instruction_histogram


def _read_source(path: str) -> str:
    with open(path) as f:
        return f.read()


def cmd_compile(args) -> int:
    artifact = compile_source(_read_source(args.file), args.target)
    out = args.output or (args.file.rsplit(".", 1)[0] + f".{args.target}.bin")
    with open(out, "wb") as f:
        f.write(artifact.encode())
    print(f"{args.file} -> {out}: {len(artifact.code)} code bytes, "
          f"methods: {', '.join(artifact.methods)}")
    return 0


def cmd_disasm(args) -> int:
    artifact = compile_source(_read_source(args.file), args.target)
    print(disassemble_artifact(artifact, fuse=args.fuse))
    return 0


def cmd_histogram(args) -> int:
    artifact = compile_source(_read_source(args.file), args.target)
    histogram = instruction_histogram(artifact)
    total = sum(histogram.values())
    print(f"{total} static instructions, {len(histogram)} distinct opcodes")
    for name, count in sorted(histogram.items(), key=lambda kv: -kv[1]):
        print(f"  {name:16s} {count:6d}  {count / total * 100:5.1f}%")
    return 0


def cmd_analyze(args) -> int:
    from repro.analysis import analyze_source, check_artifact

    if args.bytecode:
        return _analyze_bytecode(args)
    source = _read_source(args.file)
    schema_source = _read_source(args.schema) if args.schema else ""
    report = analyze_source(source, schema_source, contract_name=args.file)
    artifact = compile_source(source, args.target)
    report.merge(check_artifact(artifact, contract_name=args.file))
    if args.json:
        print(report.to_json())
    else:
        print(report.summary())
        for declass in report.declassifications:
            print(f"  declassify in {declass.function} "
                  f"(line {declass.line}, col {declass.column})")
    return 0 if report.clean else 1


def _analyze_bytecode(args) -> int:
    """``analyze --bytecode``: Pass 2 + Pass 3 over a compiled artifact
    (either VM format), exactly what sourceless deploy admission runs."""
    import json

    from repro.analysis import analyze_artifact, check_artifact
    from repro.ccle import parse_schema
    from repro.lang.compiler import ContractArtifact

    with open(args.file, "rb") as f:
        artifact = ContractArtifact.decode(f.read())
    schema = (parse_schema(_read_source(args.schema))
              if args.schema else None)
    report = check_artifact(artifact, contract_name=args.file)
    result = analyze_artifact(
        artifact, schema=schema, contract_name=args.file,
        extra_confidential=tuple(args.confidential_prefix or ()),
    )
    report.merge(result.report)
    if args.json:
        payload = report.to_dict()
        payload["target"] = artifact.target
        payload["path_constraints"] = result.constraints.to_list()
        print(json.dumps(payload, indent=2, sort_keys=False))
    else:
        print(f"target: {artifact.target}")
        print(report.summary())
        for finding in report.findings:
            if finding.window:
                for line in finding.window.splitlines():
                    print(f"    {line}")
        for res in report.resources:
            loops = " (has loops)" if res.has_loops else ""
            print(f"  {res.function}: stack<={res.max_stack} "
                  f"mem<={res.memory_high_water} "
                  f"cycles<={res.cycle_estimate}{loops}")
        n = len(result.constraints.constraints)
        print(f"  {n} branch constraint(s) recovered")
    return 0 if report.clean else 1


def cmd_demo(args) -> int:
    from repro.core import ConfidentialEngine, bootstrap_founder
    from repro.crypto.ecc import decode_point
    from repro.storage import MemoryKV
    from repro.workloads import Client

    trace_path = getattr(args, "trace", None)
    if trace_path:
        from repro.obs.trace import get_tracer

        get_tracer().enabled = True
    engine = ConfidentialEngine(MemoryKV())
    bootstrap_founder(engine.km)
    pk = decode_point(engine.provision_from_km())
    client = Client.from_seed(b"cli-demo")
    artifact = compile_source(
        """
        fn main() {
            let v = alloc(8);
            store64(v, 42);
            storage_set("answer", 6, v, 8);
            output(v, 8);
        }
        """,
        "wasm",
    )
    tx, address = client.confidential_deploy(pk, artifact)
    engine.execute(tx)
    raw = client.call_raw(address, "main", b"")
    outcome = engine.execute(client.seal(pk, raw))
    receipt = client.open_receipt(raw.tx_hash, outcome.sealed_receipt)
    print(f"deployed at {address.hex()}")
    print(f"sealed receipt opened: output={int.from_bytes(receipt.output, 'big')}")
    ciphertext = [k for k, _ in engine.kv.items() if k.startswith(b"s:")]
    print(f"{len(ciphertext)} encrypted state entries in the node database")
    if trace_path:
        from repro.obs.export import drain_to_file
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
        events = drain_to_file(tracer, trace_path)
        tracer.enabled = False
        print(f"wrote {events} trace events to {trace_path}")
    return 0


def _observed_flow(num_txs: int):
    """Stand up one confidential node, deploy a contract, push a small
    block of confidential calls through pre-verification and execution.
    Shared by ``repro metrics`` and ``repro trace``."""
    from repro.chain.node import Node
    from repro.core import bootstrap_founder
    from repro.workloads import Client

    node = Node(0)
    bootstrap_founder(node.confidential.km)
    node.confidential.provision_from_km()
    pk = node.pk_tx
    client = Client.from_seed(b"cli-observed")
    artifact = compile_source(
        """
        fn main() {
            let v = alloc(8);
            let n = storage_get("hits", 4, v, 8);
            let count = 0;
            if (n > 0) { count = load64(v); }
            store64(v, count + 1);
            storage_set("hits", 4, v, 8);
            output(v, 8);
        }
        """,
        "wasm",
    )
    tx, address = client.confidential_deploy(pk, artifact)
    node.receive_transaction(tx)
    node.preverify_pending()
    node.apply_transactions(node.draft_block(max_bytes=1 << 20))
    for i in range(num_txs):
        node.receive_transaction(
            client.confidential_call(pk, address, "main", b"")
        )
    node.preverify_pending()
    applied = node.apply_transactions(node.draft_block(max_bytes=1 << 20))
    for outcome in applied.report.outcomes:
        if not outcome.receipt.success:
            raise ReproError(f"observed flow tx failed: {outcome.receipt.error}")
    return node


def cmd_metrics(args) -> int:
    from repro.obs.collect import collect_node, collect_tracer
    from repro.obs.export import prometheus_text
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import get_tracer

    node = _observed_flow(args.txs)
    registry = MetricsRegistry()
    collect_node(registry, node)
    collect_tracer(registry, get_tracer())
    print(prometheus_text(registry), end="")
    return 0


def cmd_trace(args) -> int:
    from repro.obs.export import drain_to_file
    from repro.obs.trace import get_tracer

    tracer = get_tracer()
    tracer.enabled = True
    try:
        _observed_flow(args.txs)
        events = drain_to_file(tracer, args.output)
    finally:
        tracer.enabled = False
    print(f"wrote {events} trace events to {args.output}")
    return 0


def cmd_bench(args) -> int:
    from repro.bench import (
        fig10_series,
        fig11_point,
        fig12_series,
        sec64_metrics,
        table1_rows,
    )
    from repro.bench import reporting

    from repro.obs.metrics import MetricsRegistry

    if args.storage:
        from repro.bench.harness import run_storage_bench

        backends = tuple(
            name.strip() for name in args.storage.split(",") if name.strip()
        )
        result = run_storage_bench(
            backends=backends,
            num_blocks=3 if args.quick else 8,
            txs_per_block=2 if args.quick else 4,
            out_path=args.storage_out,
        )
        print(f"storage bench: {result['num_blocks']} blocks x "
              f"{result['txs_per_block']} txs ({result['workload']})")
        for backend, entry in result["backends"].items():
            line = (f"  {backend:10s} block p50 "
                    f"{entry['block_commit_ms']['p50']:8.2f} ms  "
                    f"write p50 {entry['storage_write_ms']['p50']:8.3f} ms")
            if "reopen_ms" in entry:
                line += (f"  reopen {entry['reopen_ms']:8.2f} ms "
                         f"({entry['reopen_restored_blocks']} blocks, "
                         "state root verified)")
            print(line)
        gc = result.get("group_commit")
        if gc:
            serial, conc = gc["serial"], gc["concurrent"]
            print(f"  group commit (sync wal): serial "
                  f"{serial['fsyncs_per_commit']:.2f} fsyncs/commit, "
                  f"{gc['num_threads']} threads "
                  f"{conc['fsyncs_per_commit']:.2f} fsyncs/commit "
                  f"({conc['commits_per_s']:.0f} commits/s)")
        if args.storage_out:
            print(f"wrote {args.storage_out}")
        return 0

    if args.shards:
        from repro.bench.harness import run_shard_bench

        counts = tuple(
            int(part) for part in args.shards.split(",") if part.strip()
        )
        result = run_shard_bench(
            shard_counts=counts,
            num_txs=24 if args.quick else 96,
            num_bundles=2 if args.quick else 4,
            out_path=args.shard_out,
        )
        print(f"shard bench ({result['cpu_count']} CPU(s), "
              f"{result['num_txs']} txs per shard count)")
        for count, entry in sorted(result["shards"].items(),
                                   key=lambda kv: int(kv[0])):
            print(f"  {count} shard(s): committed {entry['committed']:4d}  "
                  f"modeled {entry['modeled_aggregate_tps']:8.1f} tps  "
                  f"threaded {entry['threaded_tps']:8.1f} tps")
            cross = entry.get("cross_shard")
            if cross:
                print(f"    cross-shard: {cross['committed']}/"
                      f"{cross['bundles']} bundles committed in "
                      f"{cross['rounds_to_quiescence']} rounds "
                      f"(attested={cross['relay_attested']} "
                      f"quorum={cross['relay_quorum']})")
        scaling = result.get("scaling")
        if scaling:
            print(f"  modeled speedup {scaling['baseline_shards']}->"
                  f"{scaling['top_shards']} shards: "
                  f"{scaling['modeled_speedup']:.2f}x")
        if args.shard_out:
            print(f"wrote {args.shard_out}")
        return 0

    if args.workers:
        from repro.bench.harness import run_parallel_bench

        result = run_parallel_bench(
            workers=args.workers,
            num_txs=8 if args.quick else 32,
            out_path=args.parallel_out,
        )
        pre, execution = result["preverify"], result["execution"]
        print(f"parallel pipeline bench ({result['cpu_count']} CPU(s), "
              f"{args.workers} workers)")
        print(f"  preverify : serial {pre['serial_s'] * 1000:8.1f} ms  "
              f"pool {pre['pool_s'] * 1000:8.1f} ms  "
              f"speedup {pre['speedup']:.2f}x  mode={pre['mode']}")
        print(f"  execute   : serial {execution['serial_exec_s'] * 1000:8.1f} ms  "
              f"parallel {execution['parallel_exec_s'] * 1000:8.1f} ms  "
              f"speedup {execution['speedup']:.2f}x  "
              f"waves={execution['waves']} "
              f"reexec={execution['reexecutions']}")
        print("  determinism: parallel replica produced bit-identical "
              "state/receipt roots")
        if args.parallel_out:
            print(f"wrote {args.parallel_out}")
        return 0

    num_txs = 4 if args.quick else 8
    print(reporting.format_fig10(fig10_series(num_txs=num_txs, json_kv=30)))
    print()
    points = [fig11_point(n, lanes, zones, 12)
              for zones in (1, 2)
              for lanes in ((1, 4) if zones == 1 else (1,))
              for n in (4, 12, 20)]
    print(reporting.format_fig11(points))
    print()
    registry = MetricsRegistry()
    table1_runs = 2
    rows = table1_rows(runs=table1_runs, registry=registry)
    print(reporting.format_table1(rows))
    print()
    print(reporting.format_table1_crosscheck(rows, registry, table1_runs))
    print()
    print(reporting.format_fig12(fig12_series(num_txs=num_txs)))
    print()
    print(reporting.format_sec64(sec64_metrics(num_txs=6)))
    return 0


def cmd_db(args) -> int:
    from repro.storage.lsm import LsmKV, StorageSealer

    sealer = None
    if args.seal_key:
        sealer = StorageSealer(
            bytes.fromhex(args.seal_key),
            identity=args.seal_identity.encode(),
        )
    kv = LsmKV(args.directory, sealer=sealer)
    try:
        if args.action == "stats":
            for name, value in sorted(kv.stats_snapshot().items()):
                print(f"  {name:24s} {value}")
        elif args.action == "verify":
            report = kv.verify()
            print(f"  {args.directory}: manifest epoch "
                  f"{report['manifest_epoch']}, {report['segments']} "
                  f"segment(s), {report['blocks_checked']} block(s) "
                  f"checked, {report['wal_records']} WAL record(s) replayable")
            print("  integrity OK")
        else:  # compact
            before = kv.live_segments
            kv.flush()
            while kv.compact():
                pass
            print(f"  {before} -> {kv.live_segments} segment(s), "
                  f"manifest epoch {kv.manifest_epoch}")
    finally:
        kv.close()
    return 0


def cmd_sim(args) -> int:
    from repro.sim import SimConfig, parse_faults, run_sim

    config = SimConfig(
        seed=args.seed,
        steps=args.steps,
        faults=parse_faults(args.faults),
        num_nodes=args.nodes,
        storage=args.storage,
    )
    result = run_sim(config)
    if args.verify_determinism:
        second = run_sim(config)
        if (result.event_log_text != second.event_log_text
                or result.final_state_roots != second.final_state_roots):
            print("DETERMINISM FAILURE: two runs with the same seed "
                  "diverged", file=sys.stderr)
            print(result.summary(), file=sys.stderr)
            print(second.summary(), file=sys.stderr)
            return 1
        print(f"determinism verified: two runs of seed {args.seed} produced "
              f"byte-identical logs ({len(result.event_log)} events)")
    if args.report:
        faults_spec = ",".join(sorted(config.faults)) or "none"
        with open(args.report, "w") as f:
            f.write(f"# repro sim seed={config.seed} steps={config.steps} "
                    f"faults={faults_spec} nodes={config.num_nodes}\n")
            f.write(result.event_log_text + "\n")
            f.write("\n# fault schedule\n")
            for entry in result.fault_schedule:
                f.write(f"# {entry}\n")
        print(f"wrote event log + fault schedule to {args.report}")
    print(result.summary())
    if not result.ok:
        print(result.failure_report(), file=sys.stderr)
        return 1
    return 0


def cmd_shardsim(args) -> int:
    from repro.sim.scenarios import SHARD_SCENARIOS
    from repro.sim.shardsim import (
        ShardSimConfig,
        parse_shard_faults,
        run_shard_sim,
    )

    if args.scenario:
        builder = SHARD_SCENARIOS[args.scenario]
        config = builder(args.seed, steps=args.steps, shards=args.shards)
    else:
        try:
            faults = parse_shard_faults(args.faults)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        config = ShardSimConfig(
            seed=args.seed,
            steps=args.steps,
            shards=args.shards,
            nodes_per_shard=args.nodes_per_shard,
            faults=faults,
        )
    result = run_shard_sim(config)
    if args.verify_determinism:
        second = run_shard_sim(config)
        if (result.digest != second.digest
                or result.summary() != second.summary()):
            print("DETERMINISM FAILURE: two shard-sim runs with seed "
                  f"{config.seed} diverged", file=sys.stderr)
            print(result.summary(), file=sys.stderr)
            print(second.summary(), file=sys.stderr)
            return 1
        print(f"determinism verified: two runs of seed {config.seed} "
              f"produced identical digests ({result.digest[:32]})")
    print(result.summary())
    return 0 if result.converged and not result.violations else 1


def cmd_fuzz(args) -> int:
    import json as _json

    from repro.fuzz import FuzzConfig, replay, run_fuzz, target_names

    if args.list_targets:
        for name in target_names():
            print(name)
        return 0

    targets = tuple(args.target) or ("greeter",)

    if args.replay is not None:
        if len(targets) != 1:
            print("--replay needs exactly one --target", file=sys.stderr)
            return 2
        findings = replay(targets[0], args.replay)
        for finding in findings:
            print(f"{finding.kind}: {finding.detail}")
        if args.expect:
            if any(f.kind == args.expect for f in findings):
                print(f"expected finding kind '{args.expect}': detected")
                return 0
            print(f"expected finding kind '{args.expect}' NOT detected",
                  file=sys.stderr)
            return 1
        return 0

    config = FuzzConfig(
        targets=targets,
        seed=args.seed,
        max_execs=args.max_execs,
        time_budget_s=args.time_budget,
        corpus_dir=args.corpus,
        solver=not args.no_solver,
    )
    result = run_fuzz(config)
    if args.verify_determinism:
        second = run_fuzz(config)
        first_text = _json.dumps(result.to_dict(), sort_keys=True)
        second_text = _json.dumps(second.to_dict(), sort_keys=True)
        if first_text != second_text:
            print("DETERMINISM FAILURE: two campaigns with seed "
                  f"{config.seed} diverged", file=sys.stderr)
            return 1
        print(f"determinism verified: two campaigns of seed {config.seed} "
              "produced byte-identical reports")

    if args.report:
        with open(args.report, "w") as f:
            _json.dump(result.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote finding report to {args.report}")

    if args.json:
        print(_json.dumps(result.to_dict(include_timing=True), indent=2,
                          sort_keys=True))
    else:
        for name, stats in sorted(result.stats.items()):
            hits = {k: v for k, v in stats.findings.items() if v}
            print(f"{name}: execs={stats.execs} "
                  f"edges(wasm/evm)={stats.edges_wasm}/{stats.edges_evm} "
                  f"corpus={stats.corpus_entries} "
                  f"flips={stats.constraint_flips} "
                  f"findings={hits or 'none'}")
        for finding in result.findings:
            print(f"  {finding.kind} @{finding.target}: {finding.line()}")
            print(f"    {finding.detail}")

    if args.metrics:
        from repro.obs.collect import collect_fuzz
        from repro.obs.export import prometheus_text
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        collect_fuzz(registry, result)
        print(prometheus_text(registry), end="")

    if args.expect:
        if any(f.kind == args.expect for f in result.findings):
            print(f"expected finding kind '{args.expect}': detected")
            return 0
        print(f"expected finding kind '{args.expect}' NOT detected",
              file=sys.stderr)
        return 1
    return 1 if (args.fail_on_findings and result.findings) else 0


def _build_serving_node(args):
    from repro.chain.node import Node
    from repro.core.config import EngineConfig
    from repro.core.k_protocol import bootstrap_founder

    config = EngineConfig(storage_backend=args.storage)
    node = Node(
        0, config=config, data_dir=args.data_dir,
        mempool_capacity=args.mempool_capacity,
    )
    bootstrap_founder(node.confidential.km)
    node.confidential.provision_from_km()
    return node


def cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.serve import AsyncGatewayServer, Gateway, GatewayConfig

    if args.storage != "memory" and not args.data_dir:
        print("error: persistent --storage needs --data-dir",
              file=sys.stderr)
        return 2
    node = _build_serving_node(args)
    gateway = Gateway(node, GatewayConfig(
        rate_per_s=args.rate,
        burst=args.burst,
        block_interval_s=args.block_interval,
        max_block_bytes=args.max_block_bytes,
        # The loadgen's provisioning/audit identities run as operator
        # traffic, outside the per-client budget.
        unlimited_clients=("setup", "auditor"),
    ))
    server = AsyncGatewayServer(gateway, args.host, args.port)

    async def _serve() -> None:
        await server.start()
        print(f"serving on http://{server.host}:{server.port}", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await stop.wait()
        finally:
            print("draining in-flight requests...", flush=True)
            await server.stop()
            print("gateway closed", flush=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _parse_weights(text: str) -> dict[str, float]:
    weights: dict[str, float] = {}
    for part in text.split(","):
        if not part.strip():
            continue
        name, _, value = part.partition("=")
        weights[name.strip()] = float(value)
    return weights


def cmd_loadtest(args) -> int:
    import json as _json

    from repro.serve.loadgen import (
        LoadConfig,
        run_http_load,
        run_virtual_load,
        write_bench,
    )

    config = LoadConfig(
        clients=args.clients,
        requests_per_client=args.requests,
        seed=args.seed,
        mode=args.mode,
        arrival_rate_rps=args.arrival_rate,
        think_time_s=args.think_time,
        block_interval_s=args.block_interval,
        max_block_bytes=args.max_block_bytes,
        mempool_capacity=args.mempool_capacity,
        rate_per_s=args.client_rate,
        burst=args.burst,
        **({"weights": _parse_weights(args.weights)} if args.weights else {}),
    )
    if args.url:
        report = run_http_load(args.url, config)
    else:
        report = run_virtual_load(config)
        if args.verify_determinism:
            second = run_virtual_load(config)
            first_text = _json.dumps(report.summary(), sort_keys=True)
            second_text = _json.dumps(second.summary(), sort_keys=True)
            if first_text != second_text:
                print("DETERMINISM FAILURE: two load runs with seed "
                      f"{config.seed} diverged", file=sys.stderr)
                return 1
            print(f"determinism verified: two load runs of seed "
                  f"{config.seed} produced byte-identical summaries")
    if args.out:
        write_bench(args.out, config, report)
        print(f"wrote {args.out}")
    if args.json:
        print(_json.dumps(report.to_dict(include_timing=True), indent=2,
                          sort_keys=True))
    else:
        from repro.bench.reporting import format_serving

        print(format_serving(report.summary(), report.transport))
    if args.metrics:
        from repro.obs.collect import collect_loadgen
        from repro.obs.export import prometheus_text
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        collect_loadgen(registry, report)
        print(prometheus_text(registry), end="")
    if args.max_error_rate is not None:
        errors = sum(report.errors_by_kind.values())
        rate = errors / report.submitted if report.submitted else 0.0
        if rate > args.max_error_rate:
            print(f"error rate {rate:.4f} exceeds --max-error-rate "
                  f"{args.max_error_rate}", file=sys.stderr)
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CONFIDE reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile a CWScript contract")
    p.add_argument("file")
    p.add_argument("--target", choices=("wasm", "evm"), default="wasm")
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("disasm", help="compile and disassemble")
    p.add_argument("file")
    p.add_argument("--target", choices=("wasm", "evm"), default="wasm")
    p.add_argument("--fuse", action="store_true",
                   help="show the fused (OPT4) instruction stream")
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("histogram", help="static opcode frequencies")
    p.add_argument("file")
    p.add_argument("--target", choices=("wasm", "evm"), default="wasm")
    p.set_defaults(func=cmd_histogram)

    p = sub.add_parser(
        "analyze", help="run the deploy-time static analyses"
    )
    p.add_argument("file", help="CWScript source, or a compiled artifact "
                   "binary with --bytecode")
    p.add_argument("--schema", help="CCLe schema whose confidential "
                   "fields seed the analysis policies")
    p.add_argument("--target", choices=("wasm", "evm"), default="wasm")
    p.add_argument("--bytecode", action="store_true",
                   help="treat FILE as a compiled artifact and run the "
                   "bytecode verifier + confidentiality-flow passes "
                   "(what sourceless deploy admission runs)")
    p.add_argument("--confidential-prefix", action="append", default=[],
                   metavar="PREFIX",
                   help="extra confidential storage-key prefix for "
                   "--bytecode mode (repeatable)")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("demo", help="run the confidential quickstart flow")
    p.add_argument("--trace", metavar="OUT",
                   help="write a Chrome trace of the flow to this file")
    p.set_defaults(func=cmd_demo)

    p = sub.add_parser("bench", help="print the paper's tables/figures")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="run the serial-vs-parallel pipeline bench with "
                        "N workers instead of the paper tables")
    p.add_argument("--parallel-out", metavar="FILE",
                   help="write the parallel bench result JSON here "
                        "(e.g. BENCH_parallel.json)")
    p.add_argument("--storage", metavar="BACKENDS",
                   help="run the storage-backend bench instead of the "
                        "paper tables: comma-separated list drawn from "
                        "memory, appendlog, lsm")
    p.add_argument("--storage-out", metavar="FILE",
                   help="write the storage bench result JSON here "
                        "(e.g. BENCH_storage.json)")
    p.add_argument("--shards", metavar="COUNTS",
                   help="run the horizontal scale-out bench instead of "
                        "the paper tables: comma-separated shard counts, "
                        "e.g. 1,2,4")
    p.add_argument("--shard-out", metavar="FILE",
                   help="write the shard bench result JSON here "
                        "(e.g. BENCH_shard.json)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "metrics",
        help="run a small confidential flow and print Prometheus metrics",
    )
    p.add_argument("--txs", type=int, default=4,
                   help="confidential calls to execute (default 4)")
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser(
        "trace",
        help="run a small confidential flow and write a Chrome trace",
    )
    p.add_argument("-o", "--output", default="trace.json")
    p.add_argument("--txs", type=int, default=4,
                   help="confidential calls to execute (default 4)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "sim",
        help="run the deterministic fault-injection simulator",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="the run is a pure function of this seed")
    p.add_argument("--steps", type=int, default=200,
                   help="simulation steps (5 ms of simulated time each)")
    p.add_argument("--faults", default="",
                   help="comma-separated fault kinds: drop, delay, dup, "
                        "partition, crash, torn, slow, enclave, epc "
                        "(or 'all')")
    p.add_argument("--nodes", type=int, default=4,
                   help="consortium size (>= 4; default 4)")
    p.add_argument("--storage", choices=("memory", "appendlog", "lsm"),
                   default="memory",
                   help="node storage backend; persistent backends write "
                        "to a tempdir so crash faults exercise real "
                        "on-disk recovery (default memory)")
    p.add_argument("--report", metavar="OUT",
                   help="write the event log + fault schedule to this file")
    p.add_argument("--verify-determinism", action="store_true",
                   help="run twice and require byte-identical event logs")
    p.set_defaults(func=cmd_sim)

    p = sub.add_parser(
        "shardsim",
        help="run the deterministic multi-shard fault simulator",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="the run is a pure function of this seed")
    p.add_argument("--steps", type=int, default=60,
                   help="injection steps (default 60)")
    p.add_argument("--shards", type=int, default=2,
                   help="shard groups (default 2)")
    p.add_argument("--nodes-per-shard", type=int, default=4,
                   help="PBFT group size per shard (>= 4; default 4)")
    p.add_argument("--faults", default="",
                   help="comma-separated shard fault kinds: partition, "
                        "coordinator_crash")
    p.add_argument("--scenario", choices=("shard-clean", "shard-partition",
                                          "shard-acceptance"),
                   help="use a named preset instead of --faults")
    p.add_argument("--verify-determinism", action="store_true",
                   help="run twice and require identical digests")
    p.set_defaults(func=cmd_shardsim)

    p = sub.add_parser(
        "fuzz",
        help="coverage-guided differential fuzzing of CWScript contracts",
    )
    p.add_argument("--target", action="append", default=[],
                   metavar="NAME|FILE",
                   help="builtin target name or .cws path (repeatable; "
                        "default greeter)")
    p.add_argument("--seed", type=int, default=20260807)
    p.add_argument("--max-execs", type=int, default=200, metavar="N",
                   help="differential executions per target — the "
                        "deterministic budget (default 200)")
    p.add_argument("--time-budget", type=float, default=None, metavar="S",
                   help="optional wall-clock cap in seconds (ending a "
                        "run early sacrifices replay identity)")
    p.add_argument("--corpus", metavar="DIR",
                   help="persistent corpus directory (one subdir per "
                        "target)")
    p.add_argument("--no-solver", action="store_true",
                   help="disable the path-constraint assist (pure "
                        "random mutation)")
    p.add_argument("--replay", metavar="LINE",
                   help="re-execute one sequence line against the "
                        "single --target and print oracle findings")
    p.add_argument("--expect", metavar="KIND",
                   choices=("divergence", "canary", "resource", "crash"),
                   help="exit 1 unless a finding of this kind is "
                        "detected")
    p.add_argument("--report", metavar="FILE",
                   help="write the deterministic finding report JSON "
                        "here")
    p.add_argument("--json", action="store_true",
                   help="print the full report (with timing) as JSON")
    p.add_argument("--metrics", action="store_true",
                   help="print confide_fuzz_* Prometheus metrics")
    p.add_argument("--verify-determinism", action="store_true",
                   help="run the campaign twice and require "
                        "byte-identical reports")
    p.add_argument("--fail-on-findings", action="store_true",
                   help="exit 1 if any finding was recorded")
    p.add_argument("--list-targets", action="store_true")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "serve",
        help="run the JSON-RPC serving gateway over one node",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8645,
                   help="listen port (0 picks a free one; default 8645)")
    p.add_argument("--storage", choices=("memory", "appendlog", "lsm"),
                   default="memory")
    p.add_argument("--data-dir", help="storage directory for persistent "
                   "backends")
    p.add_argument("--block-interval", type=float, default=0.030,
                   metavar="S", help="block production cadence "
                   "(default 0.030, the paper's 30 ms)")
    p.add_argument("--max-block-bytes", type=int, default=1 << 14)
    p.add_argument("--mempool-capacity", type=int, default=4096,
                   help="unverified-pool depth before submissions get "
                        "backpressure responses (default 4096)")
    p.add_argument("--rate", type=float, default=0.0, metavar="RPS",
                   help="per-client token-bucket refill; 0 disables "
                        "rate limiting (default 0)")
    p.add_argument("--burst", type=float, default=20.0,
                   help="per-client token-bucket depth (default 20)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadtest",
        help="sustained mixed-workload load against the gateway",
    )
    p.add_argument("--url", metavar="http://HOST:PORT",
                   help="drive a live gateway over HTTP instead of the "
                        "deterministic in-process virtual-time transport")
    p.add_argument("--clients", type=int, default=1000,
                   help="concurrent simulated clients (default 1000)")
    p.add_argument("--requests", type=int, default=3,
                   help="business transactions per client (default 3)")
    p.add_argument("--seed", type=int, default=0,
                   help="the in-process run is a pure function of this")
    p.add_argument("--mode", choices=("open", "closed"), default="open",
                   help="arrival model: open loop (rate-driven) or "
                        "closed loop (think-time)")
    p.add_argument("--arrival-rate", type=float, default=2500.0,
                   metavar="RPS", help="open-loop aggregate arrival rate")
    p.add_argument("--think-time", type=float, default=0.4, metavar="S",
                   help="closed-loop mean per-client think time")
    p.add_argument("--block-interval", type=float, default=0.030,
                   metavar="S")
    p.add_argument("--max-block-bytes", type=int, default=1 << 14)
    p.add_argument("--mempool-capacity", type=int, default=512,
                   help="small by default so the run demonstrates "
                        "backpressure (default 512)")
    p.add_argument("--client-rate", type=float, default=0.0, metavar="RPS",
                   help="gateway per-client rate limit (0 = off)")
    p.add_argument("--burst", type=float, default=20.0)
    p.add_argument("--weights", metavar="W",
                   help="traffic mix, e.g. scf=0.1,abs=0.3,coldchain=0.6")
    p.add_argument("--out", metavar="FILE",
                   help="write BENCH_serving.json here")
    p.add_argument("--json", action="store_true",
                   help="print the full report (with timing) as JSON")
    p.add_argument("--metrics", action="store_true",
                   help="print confide_serve_load_* Prometheus metrics")
    p.add_argument("--verify-determinism", action="store_true",
                   help="run twice and require byte-identical summaries "
                        "(in-process transport only)")
    p.add_argument("--max-error-rate", type=float, default=None,
                   metavar="FRAC",
                   help="exit 1 if (non-backpressure) error responses "
                        "exceed this fraction of submissions")
    p.set_defaults(func=cmd_loadtest)

    p = sub.add_parser(
        "db", help="inspect or maintain an LSM storage directory"
    )
    p.add_argument("action", choices=("stats", "verify", "compact"))
    p.add_argument("directory")
    p.add_argument("--seal-key", metavar="HEX",
                   help="AES key (hex) for a sealed store; omit for "
                        "unsealed stores.  Platform-bound stores cannot "
                        "be opened offline — that is the point.")
    p.add_argument("--seal-identity", default="d-protocol",
                   help="identity string bound into the seal AAD "
                        "(default: d-protocol)")
    p.set_defaults(func=cmd_db)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
