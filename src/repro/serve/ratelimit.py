"""Per-client token-bucket admission (the gateway's first gate).

One bucket per client identity: ``burst`` tokens deep, refilled at
``rate`` tokens per second.  The clock is injectable so the rate-limit
tests (and the virtual-time load generator) can drive refill behaviour
deterministically instead of sleeping.
"""

from __future__ import annotations

import threading
import time


class TokenBucket:
    """Classic token bucket; thread-safe via the owning limiter's lock."""

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated_at = now

    def allow(self, now: float, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; refill for elapsed time."""
        elapsed = now - self.updated_at
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self.updated_at = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


class RateLimiter:
    """Keyed token buckets with a bounded client table.

    ``rate <= 0`` disables limiting entirely (every request allowed).
    The table is capped so an attacker rotating client ids cannot grow
    gateway memory without bound: past ``max_clients`` the least
    recently active bucket is evicted (a returning client simply starts
    from a full burst again — strictly more permissive, never less).
    """

    def __init__(self, rate: float, burst: float,
                 clock=time.monotonic, max_clients: int = 10_000):
        if burst <= 0:
            burst = 1.0
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self.max_clients = max_clients
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self.denied_total = 0

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def allow(self, client: str, cost: float = 1.0) -> bool:
        if not self.enabled:
            return True
        now = self.clock()
        with self._lock:
            bucket = self._buckets.pop(client, None)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now)
                if len(self._buckets) >= self.max_clients:
                    oldest = next(iter(self._buckets))
                    del self._buckets[oldest]
            # Reinsert at the MRU end (dicts preserve insertion order).
            self._buckets[client] = bucket
            ok = bucket.allow(now, cost)
            if not ok:
                self.denied_total += 1
            return ok

    def __len__(self) -> int:
        return len(self._buckets)
