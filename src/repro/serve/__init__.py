"""The serving front: JSON-RPC gateway, rate limiting, load generation.

This package is the node's client-facing door (docs/serving.md):
:class:`Gateway` is the synchronous admission core,
:class:`AsyncGatewayServer` puts it behind asyncio HTTP/1.1, and
:mod:`repro.serve.loadgen` drives either through sustained mixed
SCF-AR/ABS/coldchain traffic.
"""

from repro.serve.gateway import AsyncGatewayServer, Gateway, GatewayConfig
from repro.serve.jsonrpc import (
    BACKPRESSURE,
    INTERNAL_ERROR,
    INVALID_PARAMS,
    INVALID_REQUEST,
    METHOD_NOT_FOUND,
    PARSE_ERROR,
    RATE_LIMITED,
    REQUEST_TOO_LARGE,
    SHUTTING_DOWN,
    RpcError,
)
from repro.serve.ratelimit import RateLimiter, TokenBucket

__all__ = [
    "AsyncGatewayServer",
    "Gateway",
    "GatewayConfig",
    "RateLimiter",
    "RpcError",
    "TokenBucket",
    "BACKPRESSURE",
    "INTERNAL_ERROR",
    "INVALID_PARAMS",
    "INVALID_REQUEST",
    "METHOD_NOT_FOUND",
    "PARSE_ERROR",
    "RATE_LIMITED",
    "REQUEST_TOO_LARGE",
    "SHUTTING_DOWN",
]
