"""JSON-RPC 2.0 codec for the serving gateway.

The wire format is deliberately boring: JSON-RPC 2.0 request objects in,
response objects out, both rendered with sorted keys so identical
requests always produce byte-identical responses (the load generator's
determinism check depends on this).

Everything a client can get wrong is mapped to a *structured* error
object — the gateway never lets a traceback, a repr, or payload bytes
escape in a response.  Error ``data`` fields carry only short
allowlisted vocabulary and numbers, mirroring the telemetry guard's
philosophy (:mod:`repro.obs.guard`) on the request/response boundary.
"""

from __future__ import annotations

import json

from repro.errors import ReproError

# Standard JSON-RPC 2.0 error codes.
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603

# Server-defined codes (the -32000..-32099 range the spec reserves).
# BACKPRESSURE is the wire form of ``TxPool.add -> False``: the node is
# shedding load, the client should retry later with backoff.
BACKPRESSURE = -32050
RATE_LIMITED = -32051
REQUEST_TOO_LARGE = -32052
SHUTTING_DOWN = -32053

ERROR_NAMES = {
    PARSE_ERROR: "parse error",
    INVALID_REQUEST: "invalid request",
    METHOD_NOT_FOUND: "method not found",
    INVALID_PARAMS: "invalid params",
    INTERNAL_ERROR: "internal error",
    BACKPRESSURE: "backpressure",
    RATE_LIMITED: "rate limited",
    REQUEST_TOO_LARGE: "request too large",
    SHUTTING_DOWN: "shutting down",
}

# Request ids: JSON-RPC allows strings, numbers and null.  Anything
# else in the id position makes the request invalid.
_ID_TYPES = (str, int, float, type(None))

MAX_METHOD_CHARS = 64


class RpcError(ReproError):
    """A structured JSON-RPC failure (never carries payload bytes)."""

    def __init__(self, code: int, message: str = "", data: dict | None = None):
        self.code = code
        self.message = message or ERROR_NAMES.get(code, "error")
        self.data = data
        super().__init__(f"[{code}] {self.message}")


def parse_request(body: bytes, max_bytes: int = 1 << 16) -> dict:
    """Decode and validate one JSON-RPC 2.0 request object.

    Raises :class:`RpcError` for every malformed shape — oversized
    bodies, undecodable JSON, batch arrays (unsupported), missing or
    non-string methods, non-object params.  The returned dict always has
    ``method`` (str), ``params`` (dict) and ``id`` keys.
    """
    if len(body) > max_bytes:
        raise RpcError(
            REQUEST_TOO_LARGE,
            data={"limit_bytes": max_bytes, "request_bytes": len(body)},
        )
    try:
        request = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        raise RpcError(PARSE_ERROR) from None
    if not isinstance(request, dict):
        # Batch requests are rejected rather than half-supported.
        raise RpcError(INVALID_REQUEST, "request must be a single object")
    if request.get("jsonrpc") != "2.0":
        raise RpcError(INVALID_REQUEST, "jsonrpc must be '2.0'")
    method = request.get("method")
    if not isinstance(method, str) or not method:
        raise RpcError(INVALID_REQUEST, "method must be a non-empty string")
    if len(method) > MAX_METHOD_CHARS:
        raise RpcError(INVALID_REQUEST, "method name too long")
    params = request.get("params", {})
    if not isinstance(params, dict):
        raise RpcError(INVALID_PARAMS, "params must be an object")
    request_id = request.get("id")
    if not isinstance(request_id, _ID_TYPES):
        raise RpcError(INVALID_REQUEST, "id must be a string, number or null")
    return {"method": method, "params": params, "id": request_id}


def ok_response(request_id, result) -> bytes:
    """Encode a success response (canonical key order)."""
    return json.dumps(
        {"id": request_id, "jsonrpc": "2.0", "result": result},
        sort_keys=True, separators=(",", ":"),
    ).encode()


def error_response(request_id, code: int, message: str = "",
                   data: dict | None = None) -> bytes:
    """Encode an error response (canonical key order)."""
    error: dict = {"code": code,
                   "message": message or ERROR_NAMES.get(code, "error")}
    if data:
        error["data"] = data
    return json.dumps(
        {"error": error, "id": request_id, "jsonrpc": "2.0"},
        sort_keys=True, separators=(",", ":"),
    ).encode()


def hex_param(params: dict, name: str, max_bytes: int | None = None) -> bytes:
    """Fetch a required hex-string parameter as bytes.

    Raises :class:`RpcError` (invalid params) for missing values,
    non-strings, odd-length or non-hex text, and oversized blobs —
    every failure mode the fuzzer-ish malformed-request tests throw at
    the gateway.
    """
    value = params.get(name)
    if not isinstance(value, str):
        raise RpcError(INVALID_PARAMS, f"'{name}' must be a hex string")
    try:
        blob = bytes.fromhex(value)
    except ValueError:
        raise RpcError(INVALID_PARAMS, f"'{name}' is not valid hex") from None
    if max_bytes is not None and len(blob) > max_bytes:
        raise RpcError(
            REQUEST_TOO_LARGE,
            data={"limit_bytes": max_bytes, "param_bytes": len(blob)},
        )
    return blob
