"""The serving front door: a JSON-RPC gateway over one :class:`Node`.

Two layers:

- :class:`Gateway` — the synchronous, thread-safe core.  It owns the
  admission pipeline (size guard → rate limit → parse → dispatch), maps
  ``TxPool.add -> False`` to a structured backpressure error, produces
  blocks, and implements graceful drain: in-flight requests finish and
  accepted transactions are flushed into final blocks *before* the KV
  store closes, so shutdown can never leave a torn WAL tail behind.
- :class:`AsyncGatewayServer` — an asyncio HTTP/1.1 front end.  The
  event loop only ever parses sockets; every request body is handed to
  the core on a worker thread, and block production runs on its own
  single-thread executor so it serializes with itself while the loop
  keeps accepting connections.

RPC methods: ``submit_tx``, ``deploy``, ``get_receipt``,
``query_state``, ``node_status``, ``chain_status`` (docs/serving.md).
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.chain.node import CONSENSUS_PREFIXES, DEFAULT_BLOCK_BYTES, Node
from repro.chain.transaction import (
    TX_CONFIDENTIAL,
    TX_PUBLIC,
    Transaction,
    contract_address,
)
from repro.errors import ChainError, ReproError
from repro.serve import jsonrpc
from repro.serve.jsonrpc import RpcError
from repro.serve.ratelimit import RateLimiter

_TX_HASH_BYTES = 32
_MAX_KEY_BYTES = 256

# Gateway lifecycle states.
SERVING = "serving"
DRAINING = "draining"
CLOSED = "closed"


@dataclass(frozen=True)
class GatewayConfig:
    """Admission-control and block-production knobs."""

    max_request_bytes: int = 1 << 16  # whole JSON-RPC body
    max_tx_bytes: int = 1 << 15  # one encoded transaction
    rate_per_s: float = 0.0  # per-client token refill; 0 disables
    burst: float = 20.0  # per-client bucket depth
    # Operator identities (deployers, auditors) admitted outside the
    # per-client budget — rate limiting is client admission control,
    # not a brake on the consortium's own provisioning traffic.
    unlimited_clients: tuple = ()
    block_interval_s: float = 0.030  # producer cadence (§6.4's 30 ms)
    max_block_bytes: int = DEFAULT_BLOCK_BYTES
    max_block_txs: int | None = None
    cut_empty_blocks: bool = False  # serving skips empty blocks
    drain_rounds: int = 10_000  # flush bound during shutdown
    # Shard placement (docs/sharding.md).  ``shard_id is None`` means an
    # unsharded deployment and keeps the status responses legacy-shaped;
    # setting it adds the shard fields to node_status/chain_status.
    shard_id: int | None = None
    shard_count: int = 1


class Gateway:
    """Synchronous request core over one node (thread-safe)."""

    def __init__(self, node: Node, config: GatewayConfig | None = None,
                 clock=time.monotonic, coordinator=None):
        self.node = node
        self.config = config or GatewayConfig()
        self.clock = clock
        # Optional ShardCoordinator whose in-flight cross-shard bundle
        # count the status responses report (sharded deployments only).
        self.coordinator = coordinator
        self.limiter = RateLimiter(
            self.config.rate_per_s, self.config.burst, clock=clock
        )
        self._state = SERVING
        self._state_lock = threading.Lock()
        self._node_lock = threading.Lock()  # serializes block production
        self._inflight = 0
        self._idle = threading.Condition(self._state_lock)
        # Cumulative counters (absorbed by repro.obs.collect).
        self._counter_lock = threading.Lock()
        self.requests_total: dict[tuple[str, str], int] = {}
        self.request_seconds_total: dict[str, float] = {}
        self.backpressure_total = 0
        self.duplicates_total = 0
        self.invalid_total = 0
        self.internal_errors_total = 0
        self.accepted_total = 0
        self.blocks_produced = 0
        self.txs_committed = 0
        self.receipts_served = 0
        self._methods = {
            "submit_tx": self._rpc_submit_tx,
            "deploy": self._rpc_deploy,
            "get_receipt": self._rpc_get_receipt,
            "query_state": self._rpc_query_state,
            "node_status": self._rpc_node_status,
            "chain_status": self._rpc_chain_status,
        }

    # -- lifecycle ---------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    def _enter(self) -> None:
        with self._state_lock:
            if self._state == CLOSED:
                raise RpcError(jsonrpc.SHUTTING_DOWN, "gateway is closed")
            self._inflight += 1

    def _leave(self) -> None:
        with self._state_lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.notify_all()

    def begin_drain(self) -> None:
        """Stop admitting transactions; reads keep working."""
        with self._state_lock:
            if self._state == SERVING:
                self._state = DRAINING

    def drain(self, timeout: float | None = None) -> bool:
        """Wait for in-flight requests, then flush every admitted
        transaction into final blocks.  Returns True when the pools are
        empty (every accepted transaction has its receipt)."""
        self.begin_drain()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._state_lock:
            while self._inflight > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        for _ in range(self.config.drain_rounds):
            if not (len(self.node.unverified) or len(self.node.verified)):
                return True
            if self.produce_block(force=True) is None:
                # Nothing draftable is left (e.g. only invalid txs that
                # pre-verification refused); the pools are as drained as
                # they will ever be.
                return not (len(self.node.unverified)
                            or len(self.node.verified))
        return False

    def close(self, close_node: bool = True,
              drain_timeout: float | None = None) -> None:
        """Graceful shutdown: drain in-flight work, then — and only
        then — close the node and its KV store.  Idempotent."""
        with self._state_lock:
            if self._state == CLOSED:
                return
        self.drain(timeout=drain_timeout)
        with self._state_lock:
            self._state = CLOSED
            while self._inflight > 0:
                self._idle.wait()
        if close_node:
            self.node.close()

    # -- block production --------------------------------------------------

    def produce_block(self, force: bool = False):
        """One producer beat: pre-verify, draft, execute, append.

        Returns the :class:`AppliedBlock` or None when there was
        nothing to cut (and empty blocks are off).  Never runs after
        close — the node (and its WAL) are gone by then.
        """
        with self._node_lock:
            with self._state_lock:
                if self._state == CLOSED:
                    return None
                if self._state == DRAINING and not force:
                    return None
            self.node.preverify_pending()
            batch = self.node.draft_block(
                max_bytes=self.config.max_block_bytes,
                max_txs=self.config.max_block_txs,
            )
            if not batch and not self.config.cut_empty_blocks:
                return None
            applied = self.node.apply_transactions(
                batch, proposer=self.node.node_id
            )
            with self._counter_lock:
                self.blocks_produced += 1
                self.txs_committed += len(batch)
            return applied

    # -- request path ------------------------------------------------------

    def handle_raw(self, body: bytes, client: str = "") -> bytes:
        """The full admission pipeline for one request body.

        Always returns an encoded JSON-RPC response; never raises and
        never lets a traceback or payload bytes into the response.
        """
        started = time.perf_counter()
        request_id = None
        method = "unknown"
        try:
            self._enter()
        except RpcError as exc:
            return jsonrpc.error_response(None, exc.code, exc.message)
        try:
            request = jsonrpc.parse_request(
                body, max_bytes=self.config.max_request_bytes
            )
            request_id = request["id"]
            method = request["method"]
            if (client not in self.config.unlimited_clients
                    and not self.limiter.allow(client or "anonymous")):
                raise RpcError(
                    jsonrpc.RATE_LIMITED,
                    data={"retry_after_s": round(1.0 / self.limiter.rate, 3)},
                )
            handler = self._methods.get(method)
            if handler is None:
                raise RpcError(jsonrpc.METHOD_NOT_FOUND,
                               f"unknown method '{method}'"
                               if method.isidentifier() else "unknown method")
            result = handler(request["params"], client)
            self._count(method, "ok", started)
            return jsonrpc.ok_response(request_id, result)
        except RpcError as exc:
            self._count(method, self._outcome_for(exc.code), started)
            return jsonrpc.error_response(request_id, exc.code, exc.message,
                                          exc.data)
        except ReproError as exc:
            # Library errors are structured but their messages may name
            # internal state; only the error class crosses the boundary.
            with self._counter_lock:
                self.internal_errors_total += 1
            self._count(method, "internal", started)
            return jsonrpc.error_response(
                request_id, jsonrpc.INTERNAL_ERROR, "internal error",
                {"error_kind": type(exc).__name__},
            )
        except Exception:
            with self._counter_lock:
                self.internal_errors_total += 1
            self._count(method, "internal", started)
            return jsonrpc.error_response(
                request_id, jsonrpc.INTERNAL_ERROR, "internal error"
            )
        finally:
            self._leave()

    def _outcome_for(self, code: int) -> str:
        if code == jsonrpc.BACKPRESSURE:
            return "backpressure"
        if code == jsonrpc.RATE_LIMITED:
            return "rate_limited"
        if code == jsonrpc.SHUTTING_DOWN:
            return "shutting_down"
        with self._counter_lock:
            self.invalid_total += 1
        return "invalid"

    def _count(self, method: str, outcome: str, started: float) -> None:
        elapsed = time.perf_counter() - started
        with self._counter_lock:
            key = (method, outcome)
            self.requests_total[key] = self.requests_total.get(key, 0) + 1
            self.request_seconds_total[method] = (
                self.request_seconds_total.get(method, 0.0) + elapsed
            )

    # -- RPC methods -------------------------------------------------------

    def _decode_tx(self, params: dict) -> Transaction:
        blob = jsonrpc.hex_param(params, "tx",
                                 max_bytes=self.config.max_tx_bytes)
        try:
            tx = Transaction.decode(blob)
        except ReproError:
            raise RpcError(jsonrpc.INVALID_PARAMS,
                           "'tx' is not a valid encoded transaction") from None
        if tx.tx_type not in (TX_PUBLIC, TX_CONFIDENTIAL):
            raise RpcError(jsonrpc.INVALID_PARAMS, "unknown transaction type")
        return tx

    def _admit(self, tx: Transaction) -> dict:
        with self._state_lock:
            if self._state != SERVING:
                raise RpcError(jsonrpc.SHUTTING_DOWN,
                               "gateway is draining; not accepting "
                               "transactions")
        if tx.tx_hash in self.node.receipts:
            with self._counter_lock:
                self.duplicates_total += 1
            return {"accepted": False, "duplicate": True,
                    "tx_hash": tx.tx_hash.hex()}
        if not self.node.receive_transaction(tx):
            if (tx.tx_hash in self.node.unverified
                    or tx.tx_hash in self.node.verified):
                with self._counter_lock:
                    self.duplicates_total += 1
                return {"accepted": False, "duplicate": True,
                        "tx_hash": tx.tx_hash.hex()}
            # The unverified pool refused the transaction: backpressure.
            with self._counter_lock:
                self.backpressure_total += 1
            raise RpcError(
                jsonrpc.BACKPRESSURE,
                data={"pool_depth": len(self.node.unverified)},
            )
        with self._counter_lock:
            self.accepted_total += 1
        return {"accepted": True, "tx_hash": tx.tx_hash.hex()}

    def _rpc_submit_tx(self, params: dict, client: str) -> dict:
        return self._admit(self._decode_tx(params))

    def _rpc_deploy(self, params: dict, client: str) -> dict:
        """Deploy = submit, plus the predicted contract address for
        public deploys (a confidential deploy's sender/nonce are sealed;
        the client computes the address itself)."""
        tx = self._decode_tx(params)
        result = self._admit(tx)
        if tx.tx_type == TX_PUBLIC:
            raw = tx.raw()
            if not raw.is_deploy:
                raise RpcError(jsonrpc.INVALID_PARAMS,
                               "transaction is not a deploy")
            result["contract"] = contract_address(raw.sender, raw.nonce).hex()
        return result

    def _rpc_get_receipt(self, params: dict, client: str) -> dict:
        tx_hash = jsonrpc.hex_param(params, "tx_hash",
                                    max_bytes=_TX_HASH_BYTES)
        if len(tx_hash) != _TX_HASH_BYTES:
            raise RpcError(jsonrpc.INVALID_PARAMS,
                           "'tx_hash' must be 32 bytes of hex")
        blob = self.node.receipts.get(tx_hash)
        if blob is None:
            pending = (tx_hash in self.node.unverified
                       or tx_hash in self.node.verified)
            return {"found": False, "pending": pending}
        with self._counter_lock:
            self.receipts_served += 1
        # Confidential receipts are sealed envelopes under k_tx; public
        # receipts are public by construction.  Either way the blob is
        # exactly what consensus committed — nothing is opened here.
        return {"found": True, "receipt": blob.hex()}

    def _rpc_query_state(self, params: dict, client: str) -> dict:
        key = jsonrpc.hex_param(params, "key", max_bytes=_MAX_KEY_BYTES)
        if not key.startswith(CONSENSUS_PREFIXES):
            raise RpcError(
                jsonrpc.INVALID_PARAMS,
                "key is outside the replicated state namespaces",
            )
        value = self.node.kv.get(key)
        if value is None:
            return {"found": False}
        # Confidential contract state is sealed at rest (D-Protocol), so
        # the value returned here is ciphertext unless the contract
        # wrote a public (#pub) field.
        return {"found": True, "value": value.hex()}

    def _rpc_node_status(self, params: dict, client: str) -> dict:
        node = self.node
        status = {
            "node_id": node.node_id,
            "height": node.height,
            "head_hash": node.head_hash.hex(),
            "state": self._state,
            "unverified_depth": len(node.unverified),
            "verified_depth": len(node.verified),
            "accepted_total": self.accepted_total,
            "backpressure_total": self.backpressure_total,
            "blocks_produced": self.blocks_produced,
        }
        try:
            status["pk_tx"] = node.confidential.pk_tx.hex()
        except ReproError:
            status["pk_tx"] = None  # K-Protocol not provisioned yet
        self._add_shard_fields(status)
        return status

    def _rpc_chain_status(self, params: dict, client: str) -> dict:
        node = self.node
        status = {
            "height": node.height,
            "head_hash": node.head_hash.hex(),
            "txs_committed": self.txs_committed,
        }
        if node.chain:
            head = node.chain[-1].header
            status["head"] = {
                "height": head.height,
                "num_txs": len(node.chain[-1].transactions),
                "state_root": head.state_root.hex(),
                "receipts_root": head.receipts_root.hex(),
            }
        self._add_shard_fields(status)
        return status

    def _add_shard_fields(self, status: dict) -> None:
        """Additive shard placement fields; unsharded gateways keep the
        legacy response shape (pinned by tests/test_serve_gateway.py)."""
        if self.config.shard_id is None:
            return
        status["shard_id"] = self.config.shard_id
        status["shard_count"] = self.config.shard_count
        status["cross_shard_pending"] = (
            self.coordinator.pending() if self.coordinator is not None else 0
        )


# -- asyncio HTTP front end ------------------------------------------------

_MAX_HEADER_BYTES = 8192
_RESPONSE_TEMPLATE = (
    "HTTP/1.1 %s\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: %d\r\n"
    "Connection: %s\r\n"
    "\r\n"
)


class AsyncGatewayServer:
    """Asyncio HTTP/1.1 JSON-RPC server over a :class:`Gateway`.

    Request bodies are dispatched to the gateway core on the loop's
    default thread pool (the core blocks on locks and storage); block
    production beats on a dedicated single-thread executor so it
    serializes with itself.  ``stop()`` performs the ordered shutdown:
    stop accepting → cancel the producer → drain the core (in-flight
    requests, then a mempool flush) → close the node and its store.
    """

    def __init__(self, gateway: Gateway, host: str = "127.0.0.1",
                 port: int = 0):
        self.gateway = gateway
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._producer_task: asyncio.Task | None = None
        self._producer_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-producer"
        )
        # Requests get their own pool: sharing the loop's default
        # executor with other run_in_executor users (an in-process
        # client, a metrics scraper) can starve request handling
        # outright on small machines — the default pool is only
        # ``cpu_count + 4`` threads deep.
        self._request_pool = ThreadPoolExecutor(
            max_workers=max(8, (os.cpu_count() or 1) * 2),
            thread_name_prefix="serve-rpc",
        )
        self._connections: set[asyncio.Task] = set()

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._producer_task = loop.create_task(self._producer_loop())

    async def _producer_loop(self) -> None:
        loop = asyncio.get_running_loop()
        interval = self.gateway.config.block_interval_s
        while True:
            await asyncio.sleep(interval)
            await loop.run_in_executor(
                self._producer_pool, self.gateway.produce_block
            )

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        loop = asyncio.get_running_loop()
        try:
            peer = writer.get_extra_info("peername")
            default_client = f"{peer[0]}:{peer[1]}" if peer else "unknown"
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                body, headers, keep_alive = request
                client = headers.get("x-client-id", default_client)
                response = await loop.run_in_executor(
                    self._request_pool, self.gateway.handle_raw, body, client
                )
                await self._write_response(writer, response, keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.LimitOverrunError):
            pass
        except _HttpError as exc:
            try:
                await self._write_response(
                    writer,
                    jsonrpc.error_response(None, exc.code, exc.message),
                    keep_alive=False, status=exc.status,
                )
            except ConnectionError:
                pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean close between requests
            raise _HttpError(400, jsonrpc.PARSE_ERROR,
                             "truncated HTTP request") from None
        except asyncio.LimitOverrunError:
            raise _HttpError(431, jsonrpc.REQUEST_TOO_LARGE,
                             "HTTP headers too large") from None
        if len(head) > _MAX_HEADER_BYTES:
            raise _HttpError(431, jsonrpc.REQUEST_TOO_LARGE,
                             "HTTP headers too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or parts[0] != "POST":
            raise _HttpError(405, jsonrpc.INVALID_REQUEST,
                             "only POST is served")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", ""))
        except ValueError:
            raise _HttpError(411, jsonrpc.INVALID_REQUEST,
                             "Content-Length required") from None
        limit = self.gateway.config.max_request_bytes
        if length < 0 or length > limit + 1:
            # Read nothing: the declared body is over budget.
            raise _HttpError(413, jsonrpc.REQUEST_TOO_LARGE,
                             "request body too large")
        body = await reader.readexactly(length)
        keep_alive = headers.get("connection", "keep-alive") != "close"
        return body, headers, keep_alive

    @staticmethod
    async def _write_response(writer: asyncio.StreamWriter, body: bytes,
                              keep_alive: bool, status: int = 200) -> None:
        reason = {200: "200 OK", 400: "400 Bad Request",
                  405: "405 Method Not Allowed", 411: "411 Length Required",
                  413: "413 Payload Too Large",
                  431: "431 Request Header Fields Too Large"}
        head = _RESPONSE_TEMPLATE % (
            reason.get(status, f"{status} Error"), len(body),
            "keep-alive" if keep_alive else "close",
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def stop(self, close_node: bool = True,
                   drain_timeout: float | None = 30.0) -> None:
        """Ordered shutdown; safe to call more than once."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._producer_task is not None:
            self._producer_task.cancel()
            try:
                await self._producer_task
            except asyncio.CancelledError:
                pass
            self._producer_task = None
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        loop = asyncio.get_running_loop()
        # Drain + close on the (now idle) producer thread: the core
        # blocks on inflight requests and block execution, which must
        # stall neither the loop nor the request pool it is waiting on.
        await loop.run_in_executor(
            self._producer_pool, lambda: self.gateway.close(
                close_node=close_node, drain_timeout=drain_timeout
            )
        )
        self._producer_pool.shutdown(wait=True)
        self._request_pool.shutdown(wait=True)


class _HttpError(Exception):
    """Transport-level refusal, reported as HTTP status + RPC error."""

    def __init__(self, status: int, code: int, message: str):
        self.status = status
        self.code = code
        self.message = message
        super().__init__(message)
