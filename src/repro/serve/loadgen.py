"""Sustained-load generator for the serving gateway.

Two transports over the same traffic model (:class:`TrafficMix`):

- **In-process virtual time** (the default, and the one BENCH_serving
  numbers come from): thousands of simulated clients drive the *real*
  gateway code path — JSON parsing, rate limiting, admission, block
  production, receipt lookup — but time is a seeded discrete-event
  clock.  Arrivals come from a ``random.Random``; blocks are cut at
  fixed virtual intervals; a committed transaction's latency is
  ``block-cut time + the PBFT ordering model's round latency − arrival
  time``.  Nothing in the summary depends on the wall clock, so a fixed
  seed reproduces BENCH_serving.json's summary byte-for-byte — the
  determinism gate CI holds the serving path to.
- **HTTP** (``repro loadtest --url``): real sockets against a live
  ``repro serve`` process, one thread per client, latencies measured
  submit→receipt on the wall clock.  Same invariants, no byte-identical
  promise.

Every response body is byte-scanned for the traffic mix's canary
plaintext; any hit raises :class:`InvariantViolation` — a gateway
response must never contain confidential payload bytes.
"""

from __future__ import annotations

import heapq
import json
import random
import time
from dataclasses import dataclass, field

from repro.chain.consensus import PBFTOrderer
from repro.chain.driver import percentile
from repro.chain.network import NetworkModel
from repro.chain.node import Node
from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.k_protocol import bootstrap_founder
from repro.errors import InvariantViolation, ReproError
from repro.serve import jsonrpc
from repro.serve.gateway import Gateway, GatewayConfig
from repro.sim.invariants import ConfidentialityChecker
from repro.workloads.mix import DEFAULT_WEIGHTS, TrafficMix

_SETUP_ROUNDS = 64


@dataclass(frozen=True)
class LoadConfig:
    """Knobs for one load run (CLI: ``repro loadtest``)."""

    clients: int = 1000
    requests_per_client: int = 3
    seed: int = 0
    mode: str = "open"  # "open" (rate-driven) | "closed" (think-time)
    arrival_rate_rps: float = 2500.0  # open loop: aggregate arrivals
    think_time_s: float = 0.4  # closed loop: mean per-client gap
    block_interval_s: float = 0.030
    max_block_bytes: int = 1 << 14
    mempool_capacity: int = 512  # small enough to demonstrate backpressure
    rate_per_s: float = 0.0  # per-client gateway rate limit (0 = off)
    burst: float = 20.0
    weights: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_WEIGHTS)
    )

    def to_dict(self) -> dict:
        return {
            "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "seed": self.seed,
            "mode": self.mode,
            "arrival_rate_rps": self.arrival_rate_rps,
            "think_time_s": self.think_time_s,
            "block_interval_s": self.block_interval_s,
            "max_block_bytes": self.max_block_bytes,
            "mempool_capacity": self.mempool_capacity,
            "rate_per_s": self.rate_per_s,
            "burst": self.burst,
            "weights": dict(sorted(self.weights.items())),
        }


@dataclass
class LoadReport:
    """Outcome of a load run; ``summary()`` is the deterministic part."""

    clients: int = 0
    transport: str = "inproc"
    requests_by_workload: dict[str, int] = field(default_factory=dict)
    submitted: int = 0
    accepted: int = 0
    committed: int = 0
    backpressure: int = 0
    duplicates: int = 0
    rate_limited: int = 0
    errors_by_kind: dict[str, int] = field(default_factory=dict)
    latencies_s: list[float] = field(default_factory=list)
    blocks: int = 0
    duration_s: float = 0.0  # virtual (inproc) or wall (http)
    canary_scans: int = 0
    wall_seconds: float = 0.0

    @property
    def latency_quantiles_s(self) -> dict[str, float]:
        return {
            "p50": percentile(self.latencies_s, 0.50),
            "p95": percentile(self.latencies_s, 0.95),
            "p99": percentile(self.latencies_s, 0.99),
        }

    @property
    def committed_tps(self) -> float:
        return self.committed / self.duration_s if self.duration_s else 0.0

    def summary(self) -> dict:
        """Deterministic summary: fixed seed → byte-identical dict."""
        quantiles = {
            name: round(value, 6)
            for name, value in self.latency_quantiles_s.items()
        }
        return {
            "clients": self.clients,
            "transport": self.transport,
            "requests_by_workload": dict(
                sorted(self.requests_by_workload.items())
            ),
            "submitted": self.submitted,
            "accepted": self.accepted,
            "committed": self.committed,
            "backpressure": self.backpressure,
            "duplicates": self.duplicates,
            "rate_limited": self.rate_limited,
            "errors_by_kind": dict(sorted(self.errors_by_kind.items())),
            "latency_s": quantiles,
            "blocks": self.blocks,
            "duration_s": round(self.duration_s, 6),
            "committed_tps": round(self.committed_tps, 3),
            "canary_scans": self.canary_scans,
            "canary_hits": 0,  # a hit raises before any report exists
        }

    def to_dict(self, include_timing: bool = False) -> dict:
        document = self.summary()
        if include_timing:
            document["timing"] = {"wall_seconds": round(self.wall_seconds, 3)}
        return document

    def count_request(self, workload: str) -> None:
        self.requests_by_workload[workload] = (
            self.requests_by_workload.get(workload, 0) + 1
        )

    def count_error(self, kind: str) -> None:
        self.errors_by_kind[kind] = self.errors_by_kind.get(kind, 0) + 1


def _error_kind(code: int) -> str:
    name = jsonrpc.ERROR_NAMES.get(code, "unknown")
    return name.replace(" ", "_")


class VirtualTimeLoad:
    """Discrete-event load run over an in-process gateway."""

    def __init__(self, config: LoadConfig,
                 engine_config: EngineConfig = DEFAULT_CONFIG):
        self.config = config
        self._now = 0.0
        self.node = Node(
            0, config=engine_config,
            mempool_capacity=config.mempool_capacity,
        )
        bootstrap_founder(self.node.confidential.km)
        self.node.confidential.provision_from_km()
        self.gateway = Gateway(
            self.node,
            GatewayConfig(
                rate_per_s=config.rate_per_s,
                burst=config.burst,
                block_interval_s=config.block_interval_s,
                max_block_bytes=config.max_block_bytes,
                # Provisioning and the receipt-conservation sweep are
                # operator traffic, outside the per-client budget.
                unlimited_clients=("setup", "auditor"),
            ),
            clock=lambda: self._now,
        )
        self.mix = TrafficMix(
            self.node.pk_tx, seed=config.seed, weights=dict(config.weights)
        )
        self.checker = ConfidentialityChecker(self.mix.canary_needles)
        # The paper's 4-node, 2-zone deployment provides the ordering
        # latency model; execution runs on the one real node.
        self.orderer = PBFTOrderer([0, 0, 1, 1], NetworkModel())
        self.report = LoadReport(clients=config.clients)
        self._submit_time: dict[bytes, float] = {}
        self._commit_time: dict[bytes, float] = {}
        self._accepted: list[bytes] = []
        self._rejected: list[bytes] = []
        self._next_block = config.block_interval_s
        self._traffic_start = 0.0

    # -- plumbing ----------------------------------------------------------

    def _rpc(self, method: str, params: dict, client: str) -> dict:
        body = json.dumps({
            "jsonrpc": "2.0", "id": 1, "method": method, "params": params,
        }).encode()
        response_bytes = self.gateway.handle_raw(body, client)
        self.checker.scan_wire(response_bytes, f"gateway response {method}")
        self.report.canary_scans += 1
        return json.loads(response_bytes)

    def _cut_block(self, at_time: float) -> None:
        self._now = at_time
        applied = self.gateway.produce_block()
        if applied is None:
            return
        self.report.blocks += 1
        transactions = applied.block.transactions
        block_bytes = sum(tx.wire_size for tx in transactions)
        # Commit latency is fully modeled: the cut instant plus the PBFT
        # ordering round for a block of this size.  Measured execution
        # seconds never enter virtual time (they would break the
        # fixed-seed byte-identical summary).
        commit_at = at_time + self.orderer.round_latency(
            block_bytes or 1
        ).committed_s
        for tx in transactions:
            self._commit_time[tx.tx_hash] = commit_at
        for blob in self.node.receipt_blobs_at(applied.block.header.height):
            self.checker.scan_blobs([blob], "committed receipt blob")
            self.report.canary_scans += 1

    def _advance_blocks(self, up_to: float) -> None:
        while self._next_block <= up_to:
            self._cut_block(self._next_block)
            self._next_block += self.config.block_interval_s

    def _submit(self, workload: str, tx, client: str) -> None:
        self.report.count_request(workload)
        self.report.submitted += 1
        response = self._rpc(
            "submit_tx", {"tx": tx.encode().hex()}, client
        )
        error = response.get("error")
        if error is None:
            result = response["result"]
            if result.get("duplicate"):
                self.report.duplicates += 1
            else:
                self.report.accepted += 1
                self._accepted.append(tx.tx_hash)
                self._submit_time[tx.tx_hash] = self._now
            return
        code = error["code"]
        if code == jsonrpc.BACKPRESSURE:
            self.report.backpressure += 1
            self._rejected.append(tx.tx_hash)
        elif code == jsonrpc.RATE_LIMITED:
            self.report.rate_limited += 1
            self._rejected.append(tx.tx_hash)
        else:
            self.report.count_error(_error_kind(code))

    # -- phases ------------------------------------------------------------

    def _run_setup(self) -> None:
        """Deploy + wire the contract suite through the gateway itself.

        Setup traffic is counted per workload but kept out of the
        submitted/accepted/latency books — the benchmark measures the
        steady state, not the one-time provisioning burst.
        """
        for request in (self.mix.deploy_transactions()
                        + self.mix.setup_transactions()):
            self.report.count_request(request.workload)
            response = self._rpc(
                "submit_tx", {"tx": request.tx.encode().hex()}, "setup"
            )
            if "error" in response:
                raise ReproError(
                    f"setup transaction refused: {response['error']}"
                )
            # Deploys and setup calls are order-dependent (a setup call
            # targets the contract the previous deploy created), so each
            # gets its own block before the next is submitted.
            self._advance_blocks(self._next_block)
            if request.tx.tx_hash not in self._commit_time:
                raise ReproError("setup transaction did not commit")

    def _arrival_schedule(self) -> list[tuple[float, int, int]]:
        """(time, seq, client) arrivals, fully determined by the seed."""
        rng = random.Random(f"arrivals-{self.config.seed}")
        total = self.config.clients * self.config.requests_per_client
        events: list[tuple[float, int, int]] = []
        if self.config.mode == "open":
            now = 0.0
            for seq in range(total):
                now += rng.expovariate(self.config.arrival_rate_rps)
                events.append((now, seq, rng.randrange(self.config.clients)))
        elif self.config.mode == "closed":
            seq = 0
            for client in range(self.config.clients):
                now = rng.uniform(0, self.config.think_time_s)
                for _ in range(self.config.requests_per_client):
                    events.append((now, seq, client))
                    seq += 1
                    now += rng.expovariate(1.0 / self.config.think_time_s)
            heapq.heapify(events)
            events = [heapq.heappop(events) for _ in range(len(events))]
        else:
            raise ReproError(f"unknown load mode '{self.config.mode}'")
        return events

    def _run_traffic(self) -> None:
        # Arrivals start at the first block boundary after setup, so the
        # virtual clock never runs backwards and setup time stays out of
        # the measured window.
        self._traffic_start = self._next_block
        for at_time, _seq, client in self._arrival_schedule():
            arrival = self._traffic_start + at_time
            self._advance_blocks(arrival)
            self._now = arrival
            request = self.mix.next_request()
            self._submit(request.workload, request.tx, f"client-{client}")
        # Drain: keep the producer beating until the pools are empty.
        for _ in range(_SETUP_ROUNDS * 16):
            if not (len(self.node.unverified) or len(self.node.verified)):
                break
            self._advance_blocks(self._next_block)
        if len(self.node.unverified) or len(self.node.verified):
            raise ReproError("load run did not drain the mempool")

    def _run_queries(self) -> None:
        """Receipt sweep: conservation check + latency accounting."""
        for tx_hash in self._accepted:
            self.report.count_request("query")
            response = self._rpc(
                "get_receipt", {"tx_hash": tx_hash.hex()}, "auditor"
            )
            result = response.get("result")
            if result is None or not result.get("found"):
                raise InvariantViolation(
                    f"accepted tx {tx_hash.hex()[:16]} has no receipt"
                )
            commit_at = self._commit_time.get(tx_hash)
            if commit_at is None:
                raise InvariantViolation(
                    f"accepted tx {tx_hash.hex()[:16]} never committed"
                )
            self.report.committed += 1
            self.report.latencies_s.append(
                commit_at - self._submit_time[tx_hash]
            )
        for tx_hash in self._rejected:
            self.report.count_request("query")
            response = self._rpc(
                "get_receipt", {"tx_hash": tx_hash.hex()}, "auditor"
            )
            result = response.get("result")
            if result is not None and result.get("found"):
                raise InvariantViolation(
                    f"rejected tx {tx_hash.hex()[:16]} acquired a receipt"
                )
        for method in ("node_status", "chain_status"):
            self.report.count_request("query")
            response = self._rpc(method, {}, "auditor")
            if "error" in response:
                raise ReproError(f"{method} failed: {response['error']}")

    def run(self) -> LoadReport:
        wall_started = time.perf_counter()
        try:
            self._run_setup()
            self._run_traffic()
            self._run_queries()
            # The mempool is drained, so every canary planted into the
            # replicated store must be sealed: scan the KV store too.
            self.checker.scan_kv(self.node.node_id, self.node.kv)
            end = max([self._now] + list(self._commit_time.values()))
            self.report.duration_s = end - self._traffic_start
            self.report.wall_seconds = time.perf_counter() - wall_started
            return self.report
        finally:
            self.gateway.close()


def run_virtual_load(
    config: LoadConfig,
    engine_config: EngineConfig = DEFAULT_CONFIG,
) -> LoadReport:
    """One seeded in-process load run (the BENCH_serving path)."""
    return VirtualTimeLoad(config, engine_config).run()


# -- HTTP transport --------------------------------------------------------


class _HttpClient:
    """One keep-alive connection speaking JSON-RPC POSTs."""

    def __init__(self, host: str, port: int, client_id: str):
        import http.client

        self.connection = http.client.HTTPConnection(host, port, timeout=30)
        self.client_id = client_id

    def request(self, method: str, params: dict) -> tuple[dict, bytes]:
        body = json.dumps({
            "jsonrpc": "2.0", "id": 1, "method": method, "params": params,
        }).encode()
        self.connection.request(
            "POST", "/rpc", body=body,
            headers={"Content-Length": str(len(body)),
                     "X-Client-Id": self.client_id},
        )
        raw = self.connection.getresponse().read()
        return json.loads(raw), raw

    def close(self) -> None:
        self.connection.close()


def run_http_load(url: str, config: LoadConfig) -> LoadReport:
    """Drive a live gateway over HTTP with one thread per client.

    Latencies are wall-clock submit→receipt; the summary is *not*
    byte-deterministic (that promise belongs to the virtual-time
    transport), but every invariant — receipts conserved, rejected txs
    receiptless, zero canary bytes in responses — is enforced the same.
    """
    import threading
    from urllib.parse import urlsplit

    parts = urlsplit(url)
    host, port = parts.hostname, parts.port
    if host is None or port is None:
        raise ReproError(f"loadtest needs host:port in the url, got {url!r}")

    wall_started = time.perf_counter()
    report = LoadReport(clients=config.clients, transport="http")
    setup_client = _HttpClient(host, port, "setup")
    status, raw = setup_client.request("node_status", {})
    pk_hex = status.get("result", {}).get("pk_tx")
    if not pk_hex:
        raise ReproError("gateway has no provisioned pk_tx")
    from repro.crypto.ecc import decode_point

    mix = TrafficMix(
        decode_point(bytes.fromhex(pk_hex)),
        seed=config.seed, weights=dict(config.weights),
    )
    checker = ConfidentialityChecker(mix.canary_needles)
    lock = threading.Lock()

    def scan(blob: bytes, context: str) -> None:
        with lock:
            checker.scan_wire(blob, context)
            report.canary_scans += 1

    def await_receipt(client: _HttpClient, tx_hash_hex: str,
                      timeout_s: float = 60.0) -> bool:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            response, raw_bytes = client.request(
                "get_receipt", {"tx_hash": tx_hash_hex}
            )
            scan(raw_bytes, "http get_receipt response")
            result = response.get("result", {})
            if result.get("found"):
                return True
            time.sleep(0.05)
        return False

    # Setup sequentially through the gateway, waiting out each commit.
    for request in mix.deploy_transactions() + mix.setup_transactions():
        report.count_request(request.workload)
        report.submitted += 1
        response, raw_bytes = setup_client.request(
            "submit_tx", {"tx": request.tx.encode().hex()}
        )
        scan(raw_bytes, "http setup response")
        if "error" in response:
            raise ReproError(f"setup refused: {response['error']}")
        report.accepted += 1
        if not await_receipt(setup_client, request.tx.tx_hash.hex()):
            raise ReproError("setup transaction did not commit in time")
    setup_client.close()

    # Pre-build every business transaction so worker threads never
    # contend on the mix's RNG or pay signing costs mid-measurement.
    plans: list[list] = [[] for _ in range(config.clients)]
    for i in range(config.clients * config.requests_per_client):
        plans[i % config.clients].append(mix.next_request())

    rejected: list[str] = []
    accepted: list[str] = []

    def worker(index: int) -> None:
        client = _HttpClient(host, port, f"client-{index}")
        try:
            for request in plans[index]:
                with lock:
                    report.count_request(request.workload)
                    report.submitted += 1
                started = time.monotonic()
                tx_hash_hex = request.tx.tx_hash.hex()
                response, raw_bytes = client.request(
                    "submit_tx", {"tx": request.tx.encode().hex()}
                )
                scan(raw_bytes, "http submit response")
                error = response.get("error")
                if error is not None:
                    with lock:
                        code = error["code"]
                        if code == jsonrpc.BACKPRESSURE:
                            report.backpressure += 1
                            rejected.append(tx_hash_hex)
                        elif code == jsonrpc.RATE_LIMITED:
                            report.rate_limited += 1
                            rejected.append(tx_hash_hex)
                        else:
                            report.count_error(_error_kind(code))
                    continue
                with lock:
                    if response["result"].get("duplicate"):
                        report.duplicates += 1
                        continue
                    report.accepted += 1
                    accepted.append(tx_hash_hex)
                if await_receipt(client, tx_hash_hex):
                    elapsed = time.monotonic() - started
                    with lock:
                        report.committed += 1
                        report.latencies_s.append(elapsed)
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(config.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # Conservation sweep: rejected submissions must stay receiptless.
    audit = _HttpClient(host, port, "auditor")
    for tx_hash_hex in rejected:
        report.count_request("query")
        response, raw_bytes = audit.request(
            "get_receipt", {"tx_hash": tx_hash_hex}
        )
        scan(raw_bytes, "http audit response")
        if response.get("result", {}).get("found"):
            raise InvariantViolation(
                f"rejected tx {tx_hash_hex[:16]} acquired a receipt"
            )
    audit.close()
    report.wall_seconds = time.perf_counter() - wall_started
    report.duration_s = report.wall_seconds
    return report


def write_bench(path: str, config: LoadConfig, report: LoadReport) -> dict:
    """Write BENCH_serving.json: deterministic summary + wall timing."""
    document = {
        "config": config.to_dict(),
        "summary": report.summary(),
        "timing": {"wall_seconds": round(report.wall_seconds, 3)},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return document
