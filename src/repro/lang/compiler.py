"""CWScript compiler front door.

:func:`compile_source` lowers one CWScript source to a
:class:`ContractArtifact` for either target:

- ``wasm`` — a CONFIDE-VM module blob (LEB128 binary);
- ``evm``  — EVM bytecode plus a per-method entry-offset table.

The prelude (``__alloc`` and the EVM soft memory helpers) is injected in
front of every program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashes import sha256
from repro.errors import CompileError
from repro.lang.builtins import PRELUDE_SOURCE
from repro.lang.codegen_evm import EvmCodegen
from repro.lang.codegen_wasm import WasmCodegen
from repro.lang.layout import build_layout
from repro.lang.parser import parse
from repro.vm.wasm.module import encode_module, validate_module

TARGETS = ("wasm", "evm")
DEFAULT_MEMORY_PAGES = 16


@dataclass(frozen=True)
class ContractArtifact:
    """A compiled contract ready for deployment."""

    target: str
    code: bytes
    methods: tuple[str, ...]
    entries: dict[str, int] = field(default_factory=dict)  # evm only
    source_hash: bytes = b""

    def entry_for(self, method: str) -> int:
        if self.target != "evm":
            raise CompileError("entry offsets only exist for the evm target")
        if method not in self.entries:
            raise CompileError(f"no such method '{method}'")
        return self.entries[method]

    @property
    def code_hash(self) -> bytes:
        return sha256(self.code)

    def encode(self) -> bytes:
        """Serialize for on-chain storage (deploy transactions)."""
        from repro.storage import rlp

        entry_items = [
            [name.encode(), rlp.encode_int(pc)]
            for name, pc in sorted(self.entries.items())
        ]
        return rlp.encode(
            [
                self.target.encode(),
                self.code,
                [m.encode() for m in self.methods],
                entry_items,
                self.source_hash,
            ]
        )

    @classmethod
    def decode(cls, data: bytes) -> "ContractArtifact":
        from repro.storage import rlp

        items = rlp.decode(data)
        if not isinstance(items, list) or len(items) != 5:
            raise CompileError("malformed contract artifact")
        entries = {
            name.decode(): rlp.decode_int(pc) for name, pc in items[3]
        }
        return cls(
            target=items[0].decode(),
            code=items[1],
            methods=tuple(m.decode() for m in items[2]),
            entries=entries,
            source_hash=items[4],
        )


def _desugar_asserts(program) -> None:
    """Rewrite ``assert(cond, "msg");`` statements into
    ``if (!(cond)) { abort("msg", len); }`` — one front-end pass shared
    by both backends."""
    from repro.lang import ast_nodes as ast

    def rewrite(stmts: list) -> None:
        for index, stmt in enumerate(stmts):
            if isinstance(stmt, ast.If):
                rewrite(stmt.then_body)
                rewrite(stmt.else_body)
            elif isinstance(stmt, ast.While):
                rewrite(stmt.body)
            elif (
                isinstance(stmt, ast.ExprStmt)
                and isinstance(stmt.expr, ast.Call)
                and stmt.expr.name == "assert"
            ):
                call = stmt.expr
                if len(call.args) != 2 or not isinstance(call.args[1], ast.Str):
                    raise CompileError(
                        f"assert(cond, \"message\") expected at {call.pos}"
                    )
                message = call.args[1]
                abort_call = ast.Call(
                    call.pos, "abort",
                    [message, ast.Num(call.pos, len(message.value))],
                )
                stmts[index] = ast.If(
                    call.pos,
                    ast.Unary(call.pos, "!", call.args[0]),
                    [ast.ExprStmt(call.pos, abort_call)],
                    [],
                )

    for func in program.funcs:
        rewrite(func.body)


def _desugar_declassify(program) -> None:
    """Erase ``declassify(expr)`` calls, leaving ``expr``.

    ``declassify`` only means something to the static taint analyzer
    (``repro.analysis``): it marks an audited confidential-to-public
    flow.  At runtime it is the identity function, so the front end
    rewrites it away before either backend sees it.
    """
    from repro.lang import ast_nodes as ast

    def rewrite_expr(expr):
        if isinstance(expr, ast.Call):
            if expr.name == "declassify":
                if len(expr.args) != 1:
                    raise CompileError(
                        f"declassify(expr) takes exactly one argument "
                        f"at {expr.pos}"
                    )
                return rewrite_expr(expr.args[0])
            expr.args = [rewrite_expr(arg) for arg in expr.args]
        elif isinstance(expr, ast.Unary):
            expr.operand = rewrite_expr(expr.operand)
        elif isinstance(expr, ast.Binary):
            expr.left = rewrite_expr(expr.left)
            expr.right = rewrite_expr(expr.right)
        return expr

    def rewrite(stmts: list) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.Let, ast.Assign)):
                stmt.value = rewrite_expr(stmt.value)
            elif isinstance(stmt, ast.If):
                stmt.cond = rewrite_expr(stmt.cond)
                rewrite(stmt.then_body)
                rewrite(stmt.else_body)
            elif isinstance(stmt, ast.While):
                stmt.cond = rewrite_expr(stmt.cond)
                rewrite(stmt.body)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                stmt.value = rewrite_expr(stmt.value)
            elif isinstance(stmt, ast.ExprStmt):
                stmt.expr = rewrite_expr(stmt.expr)

    for func in program.funcs:
        rewrite(func.body)


def compile_source(
    source: str,
    target: str = "wasm",
    memory_pages: int = DEFAULT_MEMORY_PAGES,
) -> ContractArtifact:
    """Compile CWScript source to a deployable artifact."""
    if target not in TARGETS:
        raise CompileError(f"unknown target '{target}' (want one of {TARGETS})")
    program = parse(PRELUDE_SOURCE + source)
    _desugar_asserts(program)
    _desugar_declassify(program)
    layout = build_layout(program, target)
    from repro.lang.builtins import PRELUDE_NAMES

    exported = tuple(
        f.name for f in program.funcs
        if f.exported and f.name not in PRELUDE_NAMES
    )
    if not exported:
        raise CompileError("contract exports no methods")
    if target == "wasm":
        module = WasmCodegen(program, layout, memory_pages).generate()
        validate_module(module)
        blob = encode_module(module)
        return ContractArtifact(
            target="wasm",
            code=blob,
            methods=exported,
            source_hash=sha256(source.encode()),
        )
    bytecode, entries = EvmCodegen(program, layout).generate()
    return ContractArtifact(
        target="evm",
        code=bytecode,
        methods=exported,
        entries=entries,
        source_hash=sha256(source.encode()),
    )
