"""CWScript → CONFIDE-VM code generation."""

from __future__ import annotations

from repro.errors import CompileError
from repro.lang import ast_nodes as ast
from repro.lang.builtins import HOST_BUILTINS, MEM_INTRINSICS, PRELUDE_NAMES
from repro.lang.layout import HEAP_PTR_ADDR, Layout
from repro.vm.host import HOST_TABLE
from repro.vm.wasm import opcodes as op
from repro.vm.wasm.module import DataSegment, Function, Module

_BINOPS = {
    "+": op.ADD,
    "-": op.SUB,
    "*": op.MUL,
    "/": op.DIV_S,
    "%": op.REM_S,
    "&": op.AND,
    "|": op.OR,
    "^": op.XOR,
    "<<": op.SHL,
    ">>": op.SHR_U,
    "==": op.EQ,
    "!=": op.NE,
    "<": op.LT_S,
    "<=": op.LE_S,
    ">": op.GT_S,
    ">=": op.GE_S,
}

_MEM_OPS = {
    "load8": op.LOAD8_U,
    "load16": op.LOAD16_U,
    "load32": op.LOAD32_U,
    "load64": op.LOAD64,
    "store8": op.STORE8,
    "store16": op.STORE16,
    "store32": op.STORE32,
    "store64": op.STORE64,
}

_PENDING = -1  # placeholder jump target, patched before return


class _FuncCtx:
    """Per-function codegen state."""

    def __init__(self, func: ast.Func):
        self.func = func
        self.code: list[list[int]] = []  # mutable instrs, frozen at the end
        self.locals: dict[str, int] = {name: i for i, name in enumerate(func.params)}
        self.loop_stack: list[tuple[int, list[int]]] = []  # (head, break patches)

    def emit(self, opcode: int, a: int = 0, b: int = 0) -> int:
        self.code.append([opcode, a, b])
        return len(self.code) - 1

    @property
    def here(self) -> int:
        return len(self.code)


class WasmCodegen:
    """Generates a :class:`Module` from a parsed program."""

    def __init__(self, program: ast.Program, layout: Layout, memory_pages: int):
        self.program = program
        self.layout = layout
        self.memory_pages = memory_pages
        self.func_index = {f.name: i for i, f in enumerate(program.funcs)}
        self.func_by_name = {f.name: f for f in program.funcs}

    def generate(self) -> Module:
        module = Module(hosts=list(HOST_TABLE), memory_pages=self.memory_pages)
        image = self.layout.memory_image(self.program)
        if image:
            module.data.append(DataSegment(HEAP_PTR_ADDR, image))
        for func in self.program.funcs:
            module.functions.append(self._gen_func(func))
            if func.exported and func.name not in PRELUDE_NAMES:
                if func.params:
                    raise CompileError(
                        f"exported function '{func.name}' must take no parameters"
                    )
                module.exports[func.name] = self.func_index[func.name]
        return module

    # -- functions -------------------------------------------------------

    def _gen_func(self, func: ast.Func) -> Function:
        ctx = _FuncCtx(func)
        for stmt in func.body:
            self._stmt(ctx, stmt)
        # Implicit return so every path terminates.
        if func.has_result:
            ctx.emit(op.CONST, 0)
        ctx.emit(op.RETURN)
        for instr in ctx.code:
            if instr[0] in op.BRANCH_OPS and instr[1] == _PENDING:
                raise CompileError(f"internal: unpatched jump in '{func.name}'")
        return Function(
            nparams=len(func.params),
            nlocals=len(ctx.locals) - len(func.params),
            nresults=1 if func.has_result else 0,
            code=[tuple(i) for i in ctx.code],  # type: ignore[misc]
        )

    # -- statements -------------------------------------------------------

    def _stmt(self, ctx: _FuncCtx, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Let):
            if stmt.name in ctx.locals:
                raise CompileError(f"duplicate local '{stmt.name}' at {stmt.pos}")
            self._expr(ctx, stmt.value)
            ctx.locals[stmt.name] = len(ctx.locals)
            ctx.emit(op.LOCAL_SET, ctx.locals[stmt.name])
        elif isinstance(stmt, ast.Assign):
            if stmt.name in ctx.locals:
                self._expr(ctx, stmt.value)
                ctx.emit(op.LOCAL_SET, ctx.locals[stmt.name])
            elif stmt.name in self.layout.global_addrs:
                ctx.emit(op.CONST, self.layout.global_addrs[stmt.name])
                self._expr(ctx, stmt.value)
                ctx.emit(op.STORE64)
            else:
                raise CompileError(f"assignment to unknown name '{stmt.name}' at {stmt.pos}")
        elif isinstance(stmt, ast.If):
            self._expr(ctx, stmt.cond)
            jump_else = ctx.emit(op.JMP_IFZ, _PENDING)
            for inner in stmt.then_body:
                self._stmt(ctx, inner)
            if stmt.else_body:
                jump_end = ctx.emit(op.JMP, _PENDING)
                ctx.code[jump_else][1] = ctx.here
                for inner in stmt.else_body:
                    self._stmt(ctx, inner)
                ctx.code[jump_end][1] = ctx.here
            else:
                ctx.code[jump_else][1] = ctx.here
        elif isinstance(stmt, ast.While):
            head = ctx.here
            self._expr(ctx, stmt.cond)
            jump_end = ctx.emit(op.JMP_IFZ, _PENDING)
            breaks: list[int] = [jump_end]
            ctx.loop_stack.append((head, breaks))
            for inner in stmt.body:
                self._stmt(ctx, inner)
            ctx.loop_stack.pop()
            ctx.emit(op.JMP, head)
            for patch in breaks:
                ctx.code[patch][1] = ctx.here
        elif isinstance(stmt, ast.Break):
            if not ctx.loop_stack:
                raise CompileError(f"'break' outside loop at {stmt.pos}")
            ctx.loop_stack[-1][1].append(ctx.emit(op.JMP, _PENDING))
        elif isinstance(stmt, ast.Continue):
            if not ctx.loop_stack:
                raise CompileError(f"'continue' outside loop at {stmt.pos}")
            ctx.emit(op.JMP, ctx.loop_stack[-1][0])
        elif isinstance(stmt, ast.Return):
            if ctx.func.has_result:
                if stmt.value is None:
                    raise CompileError(
                        f"'{ctx.func.name}' must return a value ({stmt.pos})"
                    )
                self._expr(ctx, stmt.value)
            elif stmt.value is not None:
                raise CompileError(
                    f"'{ctx.func.name}' has no result but returns one ({stmt.pos})"
                )
            ctx.emit(op.RETURN)
        elif isinstance(stmt, ast.ExprStmt):
            produces = self._expr(ctx, stmt.expr, allow_void=True)
            if produces:
                ctx.emit(op.DROP)
        else:
            raise CompileError(f"unknown statement {type(stmt).__name__}")

    # -- expressions -------------------------------------------------------

    def _expr(self, ctx: _FuncCtx, expr: ast.Expr, allow_void: bool = False) -> bool:
        """Emit code; returns True if a value is left on the stack."""
        if isinstance(expr, ast.Num):
            ctx.emit(op.CONST, expr.value)
            return True
        if isinstance(expr, ast.Str):
            ctx.emit(op.CONST, self.layout.string_addrs[expr.value])
            return True
        if isinstance(expr, ast.Var):
            name = expr.name
            if name in ctx.locals:
                ctx.emit(op.LOCAL_GET, ctx.locals[name])
            elif name in self.program.consts:
                ctx.emit(op.CONST, self.program.consts[name])
            elif name in self.layout.global_addrs:
                ctx.emit(op.CONST, self.layout.global_addrs[name])
                ctx.emit(op.LOAD64)
            else:
                raise CompileError(f"unknown name '{name}' at {expr.pos}")
            return True
        if isinstance(expr, ast.Unary):
            if expr.op == "-":
                ctx.emit(op.CONST, 0)
                self._expr(ctx, expr.operand)
                ctx.emit(op.SUB)
            elif expr.op == "!":
                self._expr(ctx, expr.operand)
                ctx.emit(op.EQZ)
            else:  # '~'
                self._expr(ctx, expr.operand)
                ctx.emit(op.CONST, -1)
                ctx.emit(op.XOR)
            return True
        if isinstance(expr, ast.Binary):
            if expr.op == "&&":
                self._expr(ctx, expr.left)
                jump_false = ctx.emit(op.JMP_IFZ, _PENDING)
                self._expr(ctx, expr.right)
                ctx.emit(op.CONST, 0)
                ctx.emit(op.NE)
                jump_end = ctx.emit(op.JMP, _PENDING)
                ctx.code[jump_false][1] = ctx.here
                ctx.emit(op.CONST, 0)
                ctx.code[jump_end][1] = ctx.here
                return True
            if expr.op == "||":
                self._expr(ctx, expr.left)
                jump_true = ctx.emit(op.JMP_IF, _PENDING)
                self._expr(ctx, expr.right)
                ctx.emit(op.CONST, 0)
                ctx.emit(op.NE)
                jump_end = ctx.emit(op.JMP, _PENDING)
                ctx.code[jump_true][1] = ctx.here
                ctx.emit(op.CONST, 1)
                ctx.code[jump_end][1] = ctx.here
                return True
            self._expr(ctx, expr.left)
            self._expr(ctx, expr.right)
            ctx.emit(_BINOPS[expr.op])
            return True
        if isinstance(expr, ast.Call):
            return self._call(ctx, expr, allow_void)
        raise CompileError(f"unknown expression {type(expr).__name__}")

    def _call(self, ctx: _FuncCtx, expr: ast.Call, allow_void: bool) -> bool:
        name = expr.name
        if name == "sizeof":
            if len(expr.args) != 1 or not isinstance(expr.args[0], ast.Str):
                raise CompileError(f"sizeof() takes one string literal ({expr.pos})")
            ctx.emit(op.CONST, len(expr.args[0].value))
            return True
        if name == "alloc":
            name = "__alloc"
        if name in MEM_INTRINSICS:
            arity, has_result = MEM_INTRINSICS[name]
            self._check_arity(expr, arity)
            for arg in expr.args:
                self._expr(ctx, arg)
            if name == "memcopy":
                ctx.emit(op.MEMCOPY)
            elif name == "memfill":
                ctx.emit(op.MEMFILL)
            elif name == "memsize":
                ctx.emit(op.MEMSIZE)
            else:
                ctx.emit(_MEM_OPS[name])
            return self._result(expr, has_result, allow_void)
        if name in HOST_BUILTINS:
            builtin = HOST_BUILTINS[name]
            self._check_arity(expr, builtin.arity)
            for arg in expr.args:
                self._expr(ctx, arg)
            ctx.emit(op.CALL_HOST, builtin.index)
            return self._result(expr, builtin.has_result, allow_void)
        callee = self.func_by_name.get(name)
        if callee is None:
            raise CompileError(f"call to unknown function '{name}' at {expr.pos}")
        self._check_arity(expr, len(callee.params))
        for arg in expr.args:
            self._expr(ctx, arg)
        ctx.emit(op.CALL, self.func_index[name])
        return self._result(expr, callee.has_result, allow_void)

    @staticmethod
    def _check_arity(expr: ast.Call, arity: int) -> None:
        if len(expr.args) != arity:
            raise CompileError(
                f"'{expr.name}' expects {arity} args, got {len(expr.args)} at {expr.pos}"
            )

    @staticmethod
    def _result(expr: ast.Call, has_result: bool, allow_void: bool) -> bool:
        if not has_result and not allow_void:
            raise CompileError(
                f"'{expr.name}' returns no value and cannot be used in an "
                f"expression ({expr.pos})"
            )
        return has_result
