"""CWScript → EVM code generation.

Structural notes (all of which contribute to EVM's measured slowdown, as
the paper's Figure 10 expects):

- locals live in static 32-byte memory frames (no recursion across the
  same function — the blockchain-contract norm), every access is an
  MLOAD/MSTORE;
- i64 semantics are enforced by masking after wrap-prone ops and
  SIGNEXTEND before signed comparisons/division, exactly the way
  Solidity compiles small integer types;
- byte loads go through a full 32-byte MLOAD plus a shift; 64-bit stores
  are read-modify-write word sequences;
- calls are label pushes + JUMPs with the return address on the stack;
- the initial memory image (string pool, globals, heap pointer) is
  appended to the bytecode and CODECOPY'd in by the entry prologue.

The stack convention for binary ops follows push order (left operand
pushed first), matching this repo's EVM interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompileError
from repro.lang import ast_nodes as ast
from repro.lang.builtins import HOST_BUILTINS, MEM_INTRINSICS, PRELUDE_NAMES
from repro.lang.layout import HEAP_PTR_ADDR, Layout
from repro.vm.evm import opcodes as op

_MASK64 = (1 << 64) - 1

_LOAD_SHIFTS = {"load8": 248, "load16": 240, "load32": 224, "load64": 192}
_STORE_PARAMS = {
    "store16": (0xFFFF, 240),
    "store32": (0xFFFFFFFF, 224),
    "store64": (_MASK64, 192),
}


@dataclass
class Asm:
    """Two-pass assembler with 4-byte label pushes."""

    items: list[tuple[str, object]] = field(default_factory=list)

    def op(self, opcode: int) -> None:
        self.items.append(("op", opcode))

    def push(self, value: int) -> None:
        if value < 0:
            value &= (1 << 256) - 1
        self.items.append(("push", value))

    def push_label(self, label: str) -> None:
        self.items.append(("pushlabel", label))

    def label(self, name: str) -> None:
        self.items.append(("label", name))

    def raw(self, data: bytes) -> None:
        self.items.append(("bytes", data))

    def assemble(self) -> tuple[bytes, dict[str, int]]:
        offsets: dict[str, int] = {}
        pc = 0
        for kind, payload in self.items:
            if kind == "op":
                pc += 1
            elif kind == "push":
                value = int(payload)  # type: ignore[arg-type]
                width = max(1, (value.bit_length() + 7) // 8)
                pc += 1 + width
            elif kind == "pushlabel":
                pc += 5  # PUSH4 + 4 bytes
            elif kind == "bytes":
                pc += len(payload)  # type: ignore[arg-type]
            else:  # label
                name = str(payload)
                if name in offsets:
                    raise CompileError(f"duplicate label '{name}'")
                offsets[name] = pc
        out = bytearray()
        for kind, payload in self.items:
            if kind == "op":
                out.append(int(payload))  # type: ignore[arg-type]
            elif kind == "push":
                value = int(payload)  # type: ignore[arg-type]
                width = max(1, (value.bit_length() + 7) // 8)
                out.append(op.PUSH1 + width - 1)
                out += value.to_bytes(width, "big")
            elif kind == "pushlabel":
                target = offsets.get(str(payload))
                if target is None:
                    raise CompileError(f"undefined label '{payload}'")
                out.append(op.PUSH1 + 3)
                out += target.to_bytes(4, "big")
            elif kind == "bytes":
                out += payload  # type: ignore[operator]
        return bytes(out), offsets


class EvmCodegen:
    """Generates EVM bytecode + per-method entry offsets."""

    def __init__(self, program: ast.Program, layout: Layout):
        self.program = program
        self.layout = layout
        self.func_by_name = {f.name: f for f in program.funcs}
        self.asm = Asm()
        self._label_counter = 0

    # -- helpers --------------------------------------------------------------

    def _fresh(self, hint: str) -> str:
        self._label_counter += 1
        return f"{hint}_{self._label_counter}"

    def _mask(self) -> None:
        self.asm.push(_MASK64)
        self.asm.op(op.AND)

    def _sext_top(self) -> None:
        self.asm.push(7)
        self.asm.op(op.SIGNEXTEND)

    def _sext_both(self) -> None:
        self._sext_top()
        self.asm.op(op.SWAP1)
        self._sext_top()
        self.asm.op(op.SWAP1)

    def _slot_addr(self, func_name: str, index: int) -> int:
        return self.layout.frame_bases[func_name] + 32 * index

    # -- top level --------------------------------------------------------------

    def generate(self) -> tuple[bytes, dict[str, int]]:
        exported = [
            f for f in self.program.funcs
            if f.exported and f.name not in PRELUDE_NAMES
        ]
        for func in exported:
            if func.params:
                raise CompileError(
                    f"exported function '{func.name}' must take no parameters"
                )
            self._entry_stub(func)
        self._init_routine()
        self._panic_routines()
        for func in self.program.funcs:
            self._gen_func(func)
        image = self.layout.memory_image(self.program)
        self.asm.op(op.INVALID)  # guard so falling into data traps
        self.asm.label("__data__")
        self.asm.raw(image)
        bytecode, offsets = self.asm.assemble()
        entries = {f.name: offsets[f"entry_{f.name}"] for f in exported}
        return bytecode, entries

    def _entry_stub(self, func: ast.Func) -> None:
        asm = self.asm
        asm.label(f"entry_{func.name}")
        asm.op(op.JUMPDEST)
        after = self._fresh(f"after_{func.name}")
        asm.push_label(after)
        asm.push_label("__init__")
        asm.op(op.JUMP)
        asm.label(after)
        asm.op(op.JUMPDEST)
        halt = self._fresh(f"halt_{func.name}")
        asm.push_label(halt)
        asm.push_label(f"fn_{func.name}")
        asm.op(op.JUMP)
        asm.label(halt)
        asm.op(op.JUMPDEST)
        if func.has_result:
            asm.op(op.POP)
        asm.op(op.STOP)

    def _div_guard(self) -> None:
        """Trap on a zero divisor (rhs on top), like Solidity's panic."""
        asm = self.asm
        asm.op(op.DUP1)
        asm.op(op.ISZERO)
        asm.push_label("__divzero__")
        asm.op(op.JUMPI)

    def _panic_routines(self) -> None:
        asm = self.asm
        asm.label("__divzero__")
        asm.op(op.JUMPDEST)
        asm.push(0)
        asm.push(0)
        asm.op(op.REVERT)

    def _init_routine(self) -> None:
        asm = self.asm
        asm.label("__init__")
        asm.op(op.JUMPDEST)
        image_len = len(self.layout.memory_image(self.program))
        asm.push(image_len)
        asm.push_label("__data__")
        asm.push(HEAP_PTR_ADDR)
        asm.op(op.CODECOPY)
        asm.op(op.JUMP)

    # -- functions ----------------------------------------------------------------

    def _gen_func(self, func: ast.Func) -> None:
        asm = self.asm
        asm.label(f"fn_{func.name}")
        asm.op(op.JUMPDEST)
        locals_: dict[str, int] = {name: i for i, name in enumerate(func.params)}
        # Args were pushed left-to-right, so the last parameter is on top.
        for index in reversed(range(len(func.params))):
            asm.push(self._slot_addr(func.name, index))
            asm.op(op.MSTORE)
        loop_stack: list[tuple[str, str]] = []  # (continue label, break label)
        for stmt in func.body:
            self._stmt(func, locals_, loop_stack, stmt)
        if func.has_result:
            asm.push(0)
            asm.op(op.SWAP1)
        asm.op(op.JUMP)

    # -- statements -------------------------------------------------------------------

    def _stmt(
        self,
        func: ast.Func,
        locals_: dict[str, int],
        loop_stack: list[tuple[str, str]],
        stmt: ast.Stmt,
    ) -> None:
        asm = self.asm
        if isinstance(stmt, ast.Let):
            if stmt.name in locals_:
                raise CompileError(f"duplicate local '{stmt.name}' at {stmt.pos}")
            self._expr(func, locals_, stmt.value)
            locals_[stmt.name] = len(locals_)
            asm.push(self._slot_addr(func.name, locals_[stmt.name]))
            asm.op(op.MSTORE)
        elif isinstance(stmt, ast.Assign):
            if stmt.name in locals_:
                self._expr(func, locals_, stmt.value)
                asm.push(self._slot_addr(func.name, locals_[stmt.name]))
                asm.op(op.MSTORE)
            elif stmt.name in self.layout.global_addrs:
                asm.push(self.layout.global_addrs[stmt.name])
                self._expr(func, locals_, stmt.value)
                self._emit_store_wide(_MASK64, 192)
            else:
                raise CompileError(
                    f"assignment to unknown name '{stmt.name}' at {stmt.pos}"
                )
        elif isinstance(stmt, ast.If):
            self._expr(func, locals_, stmt.cond)
            asm.op(op.ISZERO)
            label_else = self._fresh("else")
            label_end = self._fresh("endif")
            asm.push_label(label_else)
            asm.op(op.JUMPI)
            for inner in stmt.then_body:
                self._stmt(func, locals_, loop_stack, inner)
            asm.push_label(label_end)
            asm.op(op.JUMP)
            asm.label(label_else)
            asm.op(op.JUMPDEST)
            for inner in stmt.else_body:
                self._stmt(func, locals_, loop_stack, inner)
            asm.label(label_end)
            asm.op(op.JUMPDEST)
        elif isinstance(stmt, ast.While):
            label_head = self._fresh("while")
            label_end = self._fresh("wend")
            asm.label(label_head)
            asm.op(op.JUMPDEST)
            self._expr(func, locals_, stmt.cond)
            asm.op(op.ISZERO)
            asm.push_label(label_end)
            asm.op(op.JUMPI)
            loop_stack.append((label_head, label_end))
            for inner in stmt.body:
                self._stmt(func, locals_, loop_stack, inner)
            loop_stack.pop()
            asm.push_label(label_head)
            asm.op(op.JUMP)
            asm.label(label_end)
            asm.op(op.JUMPDEST)
        elif isinstance(stmt, ast.Break):
            if not loop_stack:
                raise CompileError(f"'break' outside loop at {stmt.pos}")
            asm.push_label(loop_stack[-1][1])
            asm.op(op.JUMP)
        elif isinstance(stmt, ast.Continue):
            if not loop_stack:
                raise CompileError(f"'continue' outside loop at {stmt.pos}")
            asm.push_label(loop_stack[-1][0])
            asm.op(op.JUMP)
        elif isinstance(stmt, ast.Return):
            if func.has_result:
                if stmt.value is None:
                    raise CompileError(f"'{func.name}' must return a value ({stmt.pos})")
                self._expr(func, locals_, stmt.value)
                asm.op(op.SWAP1)
            elif stmt.value is not None:
                raise CompileError(
                    f"'{func.name}' has no result but returns one ({stmt.pos})"
                )
            asm.op(op.JUMP)
        elif isinstance(stmt, ast.ExprStmt):
            produces = self._expr(func, locals_, stmt.expr, allow_void=True)
            if produces:
                asm.op(op.POP)
        else:
            raise CompileError(f"unknown statement {type(stmt).__name__}")

    # -- expressions -------------------------------------------------------------------

    def _expr(
        self,
        func: ast.Func,
        locals_: dict[str, int],
        expr: ast.Expr,
        allow_void: bool = False,
    ) -> bool:
        asm = self.asm
        if isinstance(expr, ast.Num):
            asm.push(expr.value & _MASK64)
            return True
        if isinstance(expr, ast.Str):
            asm.push(self.layout.string_addrs[expr.value])
            return True
        if isinstance(expr, ast.Var):
            name = expr.name
            if name in locals_:
                asm.push(self._slot_addr(func.name, locals_[name]))
                asm.op(op.MLOAD)
            elif name in self.program.consts:
                asm.push(self.program.consts[name] & _MASK64)
            elif name in self.layout.global_addrs:
                asm.push(self.layout.global_addrs[name])
                asm.op(op.MLOAD)
                asm.push(192)
                asm.op(op.SHR)
            else:
                raise CompileError(f"unknown name '{name}' at {expr.pos}")
            return True
        if isinstance(expr, ast.Unary):
            if expr.op == "-":
                self._expr(func, locals_, expr.operand)
                asm.push(0)
                asm.op(op.SWAP1)
                asm.op(op.SUB)
                self._mask()
            elif expr.op == "!":
                self._expr(func, locals_, expr.operand)
                asm.op(op.ISZERO)
            else:  # '~'
                self._expr(func, locals_, expr.operand)
                asm.push(_MASK64)
                asm.op(op.XOR)
            return True
        if isinstance(expr, ast.Binary):
            return self._binary(func, locals_, expr)
        if isinstance(expr, ast.Call):
            return self._call(func, locals_, expr, allow_void)
        raise CompileError(f"unknown expression {type(expr).__name__}")

    def _binary(self, func: ast.Func, locals_: dict[str, int], expr: ast.Binary) -> bool:
        asm = self.asm
        if expr.op == "&&":
            label_false = self._fresh("andf")
            label_end = self._fresh("ande")
            self._expr(func, locals_, expr.left)
            asm.op(op.ISZERO)
            asm.push_label(label_false)
            asm.op(op.JUMPI)
            self._expr(func, locals_, expr.right)
            asm.op(op.ISZERO)
            asm.op(op.ISZERO)
            asm.push_label(label_end)
            asm.op(op.JUMP)
            asm.label(label_false)
            asm.op(op.JUMPDEST)
            asm.push(0)
            asm.label(label_end)
            asm.op(op.JUMPDEST)
            return True
        if expr.op == "||":
            label_true = self._fresh("ort")
            label_end = self._fresh("ore")
            self._expr(func, locals_, expr.left)
            asm.push_label(label_true)
            asm.op(op.JUMPI)
            self._expr(func, locals_, expr.right)
            asm.op(op.ISZERO)
            asm.op(op.ISZERO)
            asm.push_label(label_end)
            asm.op(op.JUMP)
            asm.label(label_true)
            asm.op(op.JUMPDEST)
            asm.push(1)
            asm.label(label_end)
            asm.op(op.JUMPDEST)
            return True
        self._expr(func, locals_, expr.left)
        self._expr(func, locals_, expr.right)
        operator = expr.op
        if operator == "+":
            asm.op(op.ADD)
            self._mask()
        elif operator == "-":
            asm.op(op.SUB)
            self._mask()
        elif operator == "*":
            asm.op(op.MUL)
            self._mask()
        elif operator == "/":
            self._div_guard()
            self._sext_both()
            asm.op(op.SDIV)
            self._mask()
        elif operator == "%":
            self._div_guard()
            self._sext_both()
            asm.op(op.SMOD)
            self._mask()
        elif operator == "&":
            asm.op(op.AND)
        elif operator == "|":
            asm.op(op.OR)
        elif operator == "^":
            asm.op(op.XOR)
        elif operator == "<<":
            # CWScript shifts take the amount mod 64 (wasm i64 semantics,
            # what CONFIDE-VM executes); EVM SHL/SHR zero the result for
            # amounts >= 256 and shift literally below that, so the
            # amount must be masked before the opcode or `x << 64`
            # diverges between the two targets.
            asm.push(63)
            asm.op(op.AND)
            asm.op(op.SHL)
            self._mask()
        elif operator == ">>":
            asm.push(63)
            asm.op(op.AND)
            asm.op(op.SHR)
        elif operator == "==":
            asm.op(op.EQ)
        elif operator == "!=":
            asm.op(op.EQ)
            asm.op(op.ISZERO)
        elif operator == "<":
            self._sext_both()
            asm.op(op.SLT)
        elif operator == "<=":
            self._sext_both()
            asm.op(op.SGT)
            asm.op(op.ISZERO)
        elif operator == ">":
            self._sext_both()
            asm.op(op.SGT)
        elif operator == ">=":
            self._sext_both()
            asm.op(op.SLT)
            asm.op(op.ISZERO)
        else:
            raise CompileError(f"unknown operator '{operator}' at {expr.pos}")
        return True

    # -- calls --------------------------------------------------------------------------

    def _call(
        self,
        func: ast.Func,
        locals_: dict[str, int],
        expr: ast.Call,
        allow_void: bool,
    ) -> bool:
        asm = self.asm
        name = expr.name
        if name == "sizeof":
            if len(expr.args) != 1 or not isinstance(expr.args[0], ast.Str):
                raise CompileError(f"sizeof() takes one string literal ({expr.pos})")
            asm.push(len(expr.args[0].value))
            return True
        if name == "alloc":
            name = "__alloc"
        if name == "memcopy":
            name = "__memcopy_soft"
        if name == "memfill":
            name = "__memfill_soft"
        if name in MEM_INTRINSICS:
            arity, has_result = MEM_INTRINSICS[name]
            self._check_arity(expr, arity)
            for arg in expr.args:
                self._expr(func, locals_, arg)
            if name in _LOAD_SHIFTS:
                asm.op(op.MLOAD)
                asm.push(_LOAD_SHIFTS[name])
                asm.op(op.SHR)
            elif name == "store8":
                asm.op(op.SWAP1)
                asm.op(op.MSTORE8)
            elif name in _STORE_PARAMS:
                mask, shift = _STORE_PARAMS[name]
                self._emit_store_wide(mask, shift)
            elif name == "memsize":
                asm.op(op.MSIZE)
            else:
                raise CompileError(f"internal: unhandled intrinsic '{name}'")
            return self._result(expr, has_result, allow_void)
        if name in HOST_BUILTINS:
            builtin = HOST_BUILTINS[name]
            self._check_arity(expr, builtin.arity)
            for arg in expr.args:
                self._expr(func, locals_, arg)
            asm.push(builtin.index)
            asm.op(op.HOSTCALL)
            return self._result(expr, builtin.has_result, allow_void)
        callee = self.func_by_name.get(name)
        if callee is None:
            raise CompileError(f"call to unknown function '{name}' at {expr.pos}")
        self._check_arity(expr, len(callee.params))
        ret = self._fresh("ret")
        asm.push_label(ret)
        for arg in expr.args:
            self._expr(func, locals_, arg)
        asm.push_label(f"fn_{name}")
        asm.op(op.JUMP)
        asm.label(ret)
        asm.op(op.JUMPDEST)
        return self._result(expr, callee.has_result, allow_void)

    def _emit_store_wide(self, value_mask: int, shift: int) -> None:
        """RMW store of a sub-word value at the word's high end.

        Expects stack [addr, value]; writes ``value`` (masked) into the
        top ``256 - shift`` bits of the word at ``addr`` while preserving
        the low ``shift`` bits (the trailing bytes of the word).
        """
        asm = self.asm
        if value_mask != _MASK64:
            asm.push(value_mask)
            asm.op(op.AND)
        asm.op(op.SWAP1)             # [v, p]
        asm.op(op.DUP1)              # [v, p, p]
        asm.op(op.MLOAD)             # [v, p, w]
        asm.push((1 << shift) - 1)
        asm.op(op.AND)               # [v, p, w_low]
        asm.op(op.SWAP1 + 1)  # SWAP2             # [w_low, p, v]
        asm.push(shift)
        asm.op(op.SHL)               # [w_low, p, v << shift]
        asm.op(op.SWAP1)             # [w_low, v << shift, p]
        asm.op(op.SWAP1 + 1)  # SWAP2             # [p, v << shift, w_low]
        asm.op(op.OR)                # [p, new_word]
        asm.op(op.SWAP1)             # [new_word, p]
        asm.op(op.MSTORE)

    @staticmethod
    def _check_arity(expr: ast.Call, arity: int) -> None:
        if len(expr.args) != arity:
            raise CompileError(
                f"'{expr.name}' expects {arity} args, got {len(expr.args)} at {expr.pos}"
            )

    @staticmethod
    def _result(expr: ast.Call, has_result: bool, allow_void: bool) -> bool:
        if not has_result and not allow_void:
            raise CompileError(
                f"'{expr.name}' returns no value and cannot be used in an "
                f"expression ({expr.pos})"
            )
        return has_result
