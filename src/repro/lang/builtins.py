"""CWScript builtin catalogue.

Three families:

- **memory intrinsics** — compile to VM memory instructions;
- **host functions** — compile to host calls (the canonical table in
  :mod:`repro.vm.host`);
- **compiler intrinsics** — ``alloc`` (rewritten to the injected
  ``__alloc``), ``sizeof`` (string-literal length, folded at compile
  time), ``memcopy``/``memfill`` (native on CONFIDE-VM, lowered to the
  injected byte-loop helpers on the EVM), and ``memsize``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.host import HOST_INDEX, HOST_TABLE

MEM_INTRINSICS: dict[str, tuple[int, bool]] = {
    # name -> (arity, has_result)
    "load8": (1, True),
    "load16": (1, True),
    "load32": (1, True),
    "load64": (1, True),
    "store8": (2, False),
    "store16": (2, False),
    "store32": (2, False),
    "store64": (2, False),
    "memcopy": (3, False),
    "memfill": (3, False),
    "memsize": (0, True),
}


@dataclass(frozen=True)
class HostBuiltin:
    index: int
    arity: int
    has_result: bool


HOST_BUILTINS: dict[str, HostBuiltin] = {
    imp.name: HostBuiltin(HOST_INDEX[imp.name], imp.nparams, imp.nresults == 1)
    for imp in HOST_TABLE
}

# Source injected ahead of every program.  __alloc is the bump allocator
# over the heap-pointer cell; __memcopy/__memfill are used only by the
# EVM backend (CONFIDE-VM has native bulk-memory ops).
PRELUDE_SOURCE = """
fn __alloc(n) -> i64 {
    let p = load64(8);
    store64(8, p + ((n + 7) & (0 - 8)));
    return p;
}
fn __memcopy_soft(d, s, l) {
    let i = 0;
    while (i < l) {
        store8(d + i, load8(s + i));
        i = i + 1;
    }
}
fn __memfill_soft(d, b, l) {
    let i = 0;
    while (i < l) {
        store8(d + i, b);
        i = i + 1;
    }
}
"""

PRELUDE_NAMES = ("__alloc", "__memcopy_soft", "__memfill_soft")
