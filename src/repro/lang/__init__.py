"""CWScript: the contract language compiling to CONFIDE-VM and EVM."""

from repro.lang.compiler import TARGETS, ContractArtifact, compile_source
from repro.lang.parser import parse, tokenize

__all__ = ["ContractArtifact", "TARGETS", "compile_source", "parse", "tokenize"]
