"""Linear-memory layout shared by both codegen backends.

::

    [0 .. 8)      null guard (address 0 stays unused)
    [8 .. 16)     heap pointer cell (read/written by __alloc)
    [16 .. )      string literal pool (deduplicated)
    then          global variable cells (8 bytes each, big-endian)
    then (EVM)    per-function static local frames (32-byte slots)
    then          heap (grows upward via alloc())

The layout is identical on both targets up to the frames section, which
only exists on the EVM (CONFIDE-VM has real locals).  64-bit cells are
accessed with load64/store64 on both machines; on the EVM those compile
to read-modify-write word sequences, so 8-byte packing is safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompileError
from repro.lang import ast_nodes as ast

HEAP_PTR_ADDR = 8
DATA_BASE = 16
_MASK64 = (1 << 64) - 1


@dataclass
class Layout:
    string_addrs: dict[bytes, int] = field(default_factory=dict)
    global_addrs: dict[str, int] = field(default_factory=dict)
    frame_bases: dict[str, int] = field(default_factory=dict)  # EVM only
    heap_base: int = 0

    def memory_image(self, program: ast.Program) -> bytes:
        """Initial memory contents for [HEAP_PTR_ADDR, end-of-globals).

        Wasm materializes this as a data segment; the EVM entry prologue
        CODECOPYs it out of the code blob.
        """
        end = HEAP_PTR_ADDR + 8
        if self.string_addrs:
            end = max(end, max(a + len(s) for s, a in self.string_addrs.items()))
        if self.global_addrs:
            end = max(end, max(self.global_addrs.values()) + 8)
        image = bytearray(end - HEAP_PTR_ADDR)
        image[0:8] = self.heap_base.to_bytes(8, "big")
        for name, init in program.globals.items():
            off = self.global_addrs[name] - HEAP_PTR_ADDR
            image[off : off + 8] = (init & _MASK64).to_bytes(8, "big")
        for text, addr in self.string_addrs.items():
            off = addr - HEAP_PTR_ADDR
            image[off : off + len(text)] = text
        return bytes(image)


def _collect_strings(program: ast.Program) -> list[bytes]:
    seen: dict[bytes, None] = {}

    def walk_expr(expr: ast.Expr) -> None:
        if isinstance(expr, ast.Str):
            seen.setdefault(expr.value)
        elif isinstance(expr, ast.Unary):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.Binary):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, ast.Call):
            for arg in expr.args:
                walk_expr(arg)

    def walk_stmt(stmt: ast.Stmt) -> None:
        if isinstance(stmt, (ast.Let, ast.Assign)):
            walk_expr(stmt.value)
        elif isinstance(stmt, ast.If):
            walk_expr(stmt.cond)
            for inner in stmt.then_body:
                walk_stmt(inner)
            for inner in stmt.else_body:
                walk_stmt(inner)
        elif isinstance(stmt, ast.While):
            walk_expr(stmt.cond)
            for inner in stmt.body:
                walk_stmt(inner)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                walk_expr(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            walk_expr(stmt.expr)

    for func in program.funcs:
        for stmt in func.body:
            walk_stmt(stmt)
    return list(seen)


def count_locals(func: ast.Func) -> int:
    """Params plus every `let` in the body (including nested blocks)."""
    total = len(func.params)

    def walk(stmts: list[ast.Stmt]) -> None:
        nonlocal total
        for stmt in stmts:
            if isinstance(stmt, ast.Let):
                total += 1
            elif isinstance(stmt, ast.If):
                walk(stmt.then_body)
                walk(stmt.else_body)
            elif isinstance(stmt, ast.While):
                walk(stmt.body)

    walk(func.body)
    return total


def build_layout(program: ast.Program, target: str) -> Layout:
    """Assign addresses for strings, globals and (EVM) frames."""
    if target not in ("wasm", "evm"):
        raise CompileError(f"unknown target '{target}'")
    layout = Layout()
    cursor = DATA_BASE
    for text in _collect_strings(program):
        layout.string_addrs[text] = cursor
        cursor += len(text)
    cursor = _align(cursor, 8)
    for name in program.globals:
        layout.global_addrs[name] = cursor
        cursor += 8
    if target == "evm":
        cursor = _align(cursor, 32)
        for func in program.funcs:
            layout.frame_bases[func.name] = cursor
            cursor += 32 * max(count_locals(func), 1)
    layout.heap_base = _align(cursor, 32)
    return layout


def _align(value: int, boundary: int) -> int:
    return (value + boundary - 1) // boundary * boundary
