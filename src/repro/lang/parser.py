r"""CWScript lexer and parser.

CWScript is the small C-like contract language of this reproduction —
the stand-in for the paper's "C++, Rust and Go ... compiled into Wasm"
toolchain.  One source compiles to CONFIDE-VM or EVM bytecode.

Grammar sketch::

    program   := (const | global | func)*
    const     := 'const' NAME '=' const_expr ';'
    global    := 'global' NAME ('=' const_expr)? ';'
    func      := 'fn' NAME '(' params? ')' ('->' 'i64')? block
    block     := '{' stmt* '}'
    stmt      := 'let' NAME '=' expr ';'
               | NAME '=' expr ';'
               | 'if' '(' expr ')' block ('else' (block | if_stmt))?
               | 'while' '(' expr ')' block
               | 'break' ';' | 'continue' ';'
               | 'return' expr? ';'
               | expr ';'
    expr      := C-style precedence: || && | ^ & ==/!= </<=/>/>= <</>> +- */% unary

Literals: decimal, hex (0x..), char ('a', with \n \t \\ \' \0 escapes),
string ("...", evaluating to the literal's address in linear memory).
Functions whose names start with '_' are internal (not exported).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompileError
from repro.lang import ast_nodes as ast

_KEYWORDS = {
    "fn", "let", "if", "else", "while", "break", "continue", "return",
    "const", "global", "i64",
}

_TWO_CHAR_OPS = {"==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->"}
_ONE_CHAR_OPS = set("+-*/%&|^!<>=(){},;~")

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}

# ASCII-only character classes: str.isdigit()/isalpha() accept Unicode
# characters (e.g. '²') that int()/identifiers cannot handle.
_DIGITS = frozenset("0123456789")
_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | _DIGITS


@dataclass(frozen=True)
class Token:
    kind: str  # 'num' | 'str' | 'name' | 'kw' | 'op' | 'eof'
    text: str
    value: int | bytes | None
    pos: ast.Position


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    size = len(source)

    def pos() -> ast.Position:
        return ast.Position(line, col)

    def advance(n: int = 1) -> None:
        nonlocal i, line, col
        for _ in range(n):
            if i < size and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < size:
        ch = source[i]
        if ch in " \t\r\n":
            advance()
            continue
        if ch == "/" and i + 1 < size and source[i + 1] == "/":
            while i < size and source[i] != "\n":
                advance()
            continue
        if ch == "/" and i + 1 < size and source[i + 1] == "*":
            start = pos()
            advance(2)
            while i + 1 < size and not (source[i] == "*" and source[i + 1] == "/"):
                advance()
            if i + 1 >= size:
                raise CompileError(f"unterminated block comment at {start}")
            advance(2)
            continue
        start = pos()
        if ch in _DIGITS:
            j = i
            if source[j : j + 2] in ("0x", "0X"):
                j += 2
                while j < size and (source[j] in "0123456789abcdefABCDEF_"):
                    j += 1
                text = source[i:j]
                digits = text[2:].replace("_", "")
                if not digits:
                    raise CompileError(f"malformed hex literal at {start}")
                value = int(digits, 16)
            else:
                while j < size and (source[j] in _DIGITS or source[j] == "_"):
                    j += 1
                text = source[i:j]
                value = int(text.replace("_", ""))
            tokens.append(Token("num", text, value, start))
            advance(j - i)
            continue
        if ch in _IDENT_START:
            j = i
            while j < size and source[j] in _IDENT_CONT:
                j += 1
            text = source[i:j]
            kind = "kw" if text in _KEYWORDS else "name"
            tokens.append(Token(kind, text, None, start))
            advance(j - i)
            continue
        if ch == "'":
            advance()
            if i >= size:
                raise CompileError(f"unterminated char literal at {start}")
            if source[i] == "\\":
                advance()
                esc = source[i] if i < size else ""
                if esc not in _ESCAPES:
                    raise CompileError(f"bad escape '\\{esc}' at {start}")
                value = _ESCAPES[esc]
                advance()
            else:
                value = ord(source[i])
                advance()
            if i >= size or source[i] != "'":
                raise CompileError(f"unterminated char literal at {start}")
            advance()
            tokens.append(Token("num", f"'{chr(value)}'", value, start))
            continue
        if ch == '"':
            advance()
            out = bytearray()
            while i < size and source[i] != '"':
                if source[i] == "\\":
                    advance()
                    esc = source[i] if i < size else ""
                    if esc not in _ESCAPES:
                        raise CompileError(f"bad escape '\\{esc}' at {start}")
                    out.append(_ESCAPES[esc])
                    advance()
                else:
                    code = ord(source[i])
                    if code > 0xFF:
                        # String literals are byte strings (latin-1).
                        raise CompileError(
                            f"non-latin-1 character {source[i]!r} in string "
                            f"literal at {start}"
                        )
                    out.append(code)
                    advance()
            if i >= size:
                raise CompileError(f"unterminated string literal at {start}")
            advance()
            tokens.append(Token("str", out.decode("latin-1"), bytes(out), start))
            continue
        two = source[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token("op", two, None, start))
            advance(2)
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token("op", ch, None, start))
            advance()
            continue
        raise CompileError(f"unexpected character {ch!r} at {start}")
    tokens.append(Token("eof", "", None, pos()))
    return tokens


class Parser:
    """Recursive-descent parser producing an :class:`ast_nodes.Program`."""

    def __init__(self, source: str):
        self._tokens = tokenize(source)
        self._i = 0

    # -- token helpers -------------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._i]

    def _eat(self) -> Token:
        token = self._tokens[self._i]
        self._i += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._cur
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise CompileError(
                f"expected {want!r} but found {token.text or token.kind!r} at {token.pos}"
            )
        return self._eat()

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self._cur
        if token.kind == kind and (text is None or token.text == text):
            return self._eat()
        return None

    # -- grammar ------------------------------------------------------------

    def parse(self) -> ast.Program:
        program = ast.Program()
        while self._cur.kind != "eof":
            if self._accept("kw", "const"):
                name = self._expect("name").text
                self._expect("op", "=")
                value = self._const_expr(program)
                self._expect("op", ";")
                if name in program.consts:
                    raise CompileError(f"duplicate const '{name}'")
                program.consts[name] = value
            elif self._accept("kw", "global"):
                name = self._expect("name").text
                init = 0
                if self._accept("op", "="):
                    init = self._const_expr(program)
                self._expect("op", ";")
                if name in program.globals:
                    raise CompileError(f"duplicate global '{name}'")
                program.globals[name] = init
            elif self._cur.kind == "kw" and self._cur.text == "fn":
                program.funcs.append(self._func())
            else:
                raise CompileError(
                    f"expected 'fn', 'const' or 'global' at {self._cur.pos}, "
                    f"found {self._cur.text!r}"
                )
        names = [f.name for f in program.funcs]
        for name in names:
            if names.count(name) > 1:
                raise CompileError(f"duplicate function '{name}'")
        return program

    def _const_expr(self, program: ast.Program) -> int:
        """Constant expression: literal, named const, optional unary minus."""
        negate = bool(self._accept("op", "-"))
        token = self._cur
        if token.kind == "num":
            self._eat()
            value = int(token.value)  # type: ignore[arg-type]
        elif token.kind == "name" and token.text in program.consts:
            self._eat()
            value = program.consts[token.text]
        else:
            raise CompileError(f"expected constant expression at {token.pos}")
        return -value if negate else value

    def _func(self) -> ast.Func:
        start = self._expect("kw", "fn").pos
        name = self._expect("name").text
        self._expect("op", "(")
        params: list[str] = []
        if not self._accept("op", ")"):
            while True:
                params.append(self._expect("name").text)
                if self._accept("op", ")"):
                    break
                self._expect("op", ",")
        if len(set(params)) != len(params):
            raise CompileError(f"duplicate parameter in '{name}' at {start}")
        has_result = False
        if self._accept("op", "->"):
            self._expect("kw", "i64")
            has_result = True
        body = self._block()
        return ast.Func(name, params, has_result, body, start)

    def _block(self) -> list[ast.Stmt]:
        self._expect("op", "{")
        body: list[ast.Stmt] = []
        while not self._accept("op", "}"):
            body.append(self._stmt())
        return body

    def _stmt(self) -> ast.Stmt:
        token = self._cur
        if token.kind == "kw":
            if token.text == "let":
                self._eat()
                name = self._expect("name").text
                self._expect("op", "=")
                value = self._expr()
                self._expect("op", ";")
                return ast.Let(token.pos, name, value)
            if token.text == "if":
                return self._if_stmt()
            if token.text == "while":
                self._eat()
                self._expect("op", "(")
                cond = self._expr()
                self._expect("op", ")")
                body = self._block()
                return ast.While(token.pos, cond, body)
            if token.text == "break":
                self._eat()
                self._expect("op", ";")
                return ast.Break(token.pos)
            if token.text == "continue":
                self._eat()
                self._expect("op", ";")
                return ast.Continue(token.pos)
            if token.text == "return":
                self._eat()
                value = None
                if not (self._cur.kind == "op" and self._cur.text == ";"):
                    value = self._expr()
                self._expect("op", ";")
                return ast.Return(token.pos, value)
        if token.kind == "name":
            nxt = self._tokens[self._i + 1]
            if nxt.kind == "op" and nxt.text == "=":
                self._eat()
                self._eat()
                value = self._expr()
                self._expect("op", ";")
                return ast.Assign(token.pos, token.text, value)
        expr = self._expr()
        self._expect("op", ";")
        return ast.ExprStmt(token.pos, expr)

    def _if_stmt(self) -> ast.If:
        token = self._expect("kw", "if")
        self._expect("op", "(")
        cond = self._expr()
        self._expect("op", ")")
        then_body = self._block()
        else_body: list[ast.Stmt] = []
        if self._accept("kw", "else"):
            if self._cur.kind == "kw" and self._cur.text == "if":
                else_body = [self._if_stmt()]
            else:
                else_body = self._block()
        return ast.If(token.pos, cond, then_body, else_body)

    # -- expressions (precedence climbing) -----------------------------------

    _PRECEDENCE = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _expr(self, level: int = 0) -> ast.Expr:
        if level >= len(self._PRECEDENCE):
            return self._unary()
        ops = self._PRECEDENCE[level]
        left = self._expr(level + 1)
        while self._cur.kind == "op" and self._cur.text in ops:
            token = self._eat()
            right = self._expr(level + 1)
            left = ast.Binary(token.pos, token.text, left, right)
        return left

    def _unary(self) -> ast.Expr:
        token = self._cur
        if token.kind == "op" and token.text in ("-", "!", "~"):
            self._eat()
            return ast.Unary(token.pos, token.text, self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._cur
        if token.kind == "num":
            self._eat()
            return ast.Num(token.pos, int(token.value))  # type: ignore[arg-type]
        if token.kind == "str":
            self._eat()
            return ast.Str(token.pos, bytes(token.value))  # type: ignore[arg-type]
        if token.kind == "name":
            self._eat()
            if self._accept("op", "("):
                args: list[ast.Expr] = []
                if not self._accept("op", ")"):
                    while True:
                        args.append(self._expr())
                        if self._accept("op", ")"):
                            break
                        self._expect("op", ",")
                return ast.Call(token.pos, token.text, args)
            return ast.Var(token.pos, token.text)
        if token.kind == "op" and token.text == "(":
            self._eat()
            inner = self._expr()
            self._expect("op", ")")
            return inner
        raise CompileError(f"unexpected token {token.text or token.kind!r} at {token.pos}")


def parse(source: str) -> ast.Program:
    """Parse CWScript source into a Program AST."""
    return Parser(source).parse()
