"""CWScript abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Position:
    line: int
    column: int

    def __str__(self) -> str:
        return f"line {self.line}, col {self.column}"


# -- expressions -------------------------------------------------------------

@dataclass
class Expr:
    pos: Position


@dataclass
class Num(Expr):
    value: int


@dataclass
class Str(Expr):
    """A string literal; evaluates to its address in linear memory."""

    value: bytes


@dataclass
class Var(Expr):
    name: str


@dataclass
class Unary(Expr):
    op: str  # '-', '!', '~'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class Call(Expr):
    name: str
    args: list[Expr]


# -- statements ---------------------------------------------------------------

@dataclass
class Stmt:
    pos: Position


@dataclass
class Let(Stmt):
    name: str
    value: Expr


@dataclass
class Assign(Stmt):
    name: str
    value: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then_body: list[Stmt]
    else_body: list[Stmt]


@dataclass
class While(Stmt):
    cond: Expr
    body: list[Stmt]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Expr | None


@dataclass
class ExprStmt(Stmt):
    expr: Expr


# -- top level -----------------------------------------------------------------

@dataclass
class Func:
    name: str
    params: list[str]
    has_result: bool
    body: list[Stmt]
    pos: Position

    @property
    def exported(self) -> bool:
        return not self.name.startswith("_")


@dataclass
class Program:
    consts: dict[str, int] = field(default_factory=dict)
    globals: dict[str, int] = field(default_factory=dict)  # name -> init value
    funcs: list[Func] = field(default_factory=list)
