"""Cross-shard bundles and the TEE-attested receipt relay.

A cross-shard transaction is a *bundle* of three client-pre-sealed legs
sharing one bundle id (the prepare leg's tx hash):

- **prepare** (home shard): escrow the effect under the bundle id.
- **apply** (remote shard): materialize the effect, submitted only
  after the relay verified attested evidence that prepare committed.
- **abort** (home shard): release the escrow.  Because the three legs
  consume consecutive nonces from one sender counter and the engine's
  replay check rejects any nonce ≤ the last committed one, a committed
  abort is also a *fence*: a stale prepare resurfacing afterwards can
  never commit.

The client seals all three legs up front under the consortium-wide
``pk_tx`` (one key domain across shards, see :mod:`repro.shard.group`),
so nothing on the coordinator/relay path can open them — the relay
moves ciphertext and attestation evidence only, which is why its wire
log can be byte-scanned for canaries.

The relay fetches outcome evidence from the deciding shard: first a
single enclave's attested receipt (TrustCross-style), and when that is
unavailable or fails verification, the 2PC fallback — a quorum
certificate of ``2f+1`` distinct platform votes (:mod:`repro.core.
xshard`).  Evidence that verifies is logged and returned; evidence that
does not is counted and dropped, never trusted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.transaction import Transaction
from repro.core.xshard import (
    AttestedReceipt,
    QuorumCert,
    make_attested_receipt,
    make_quorum_cert,
    verify_attested_receipt,
    verify_quorum_cert,
)
from repro.crypto.ecc import Point
from repro.errors import ShardError
from repro.workloads.clients import Client

# Escrow-contract entry points every shard's copy of a cross-shard
# contract is expected to export.
PREPARE_METHOD = "xs_prepare"
APPLY_METHOD = "xs_apply"
ABORT_METHOD = "xs_abort"

_BUNDLE_TAG_BYTES = 8

# The reference escrow contract (CWScript) the sim, bench, and tests
# deploy on every shard.  The input's first 8 bytes are the bundle tag;
# prepare escrows the payload under key (1, tag), apply materializes it
# under (2, tag), abort overwrites the escrow with a zero marker —
# released — and, through its higher nonce, fences any resurfacing
# prepare leg out of the chain.
ESCROW_CONTRACT_SOURCE = """
fn xs_prepare() {
    let n = input_size();
    let buf = alloc(n);
    input_read(buf, 0, n);
    let ek = alloc(16);
    store64(ek, 1);
    store64(ek + 8, load64(buf));
    storage_set(ek, 16, buf, n);
    let out = alloc(8);
    store64(out, n);
    output(out, 8);
}
fn xs_apply() {
    let n = input_size();
    let buf = alloc(n);
    input_read(buf, 0, n);
    let ak = alloc(16);
    store64(ak, 2);
    store64(ak + 8, load64(buf));
    storage_set(ak, 16, buf, n);
    let out = alloc(8);
    store64(out, n);
    output(out, 8);
}
fn xs_abort() {
    let buf = alloc(8);
    input_read(buf, 0, 8);
    let ek = alloc(16);
    store64(ek, 1);
    store64(ek + 8, load64(buf));
    let z = alloc(8);
    store64(z, 0);
    storage_set(ek, 16, z, 8);
    output(z, 8);
}
fn put() {
    let n = input_size();
    let buf = alloc(n);
    input_read(buf, 0, n);
    let key = "secret";
    storage_set(key, 6, buf, n);
    let out = alloc(8);
    store64(out, n);
    output(out, 8);
}
fn bump() {
    let key = "count";
    let buf = alloc(8);
    let n = storage_get(key, 5, buf, 8);
    let v = 0;
    if (n == 8) { v = load64(buf); }
    store64(buf, v + 1);
    storage_set(key, 5, buf, 8);
    output(buf, 8);
}
"""


@dataclass(frozen=True)
class CrossShardBundle:
    """One cross-shard transaction, fully sealed at build time."""

    bundle_id: bytes  # the prepare leg's tx hash
    home_shard: int
    remote_shard: int
    prepare: Transaction
    apply: Transaction
    abort: Transaction

    @property
    def legs(self) -> tuple[Transaction, Transaction, Transaction]:
        return (self.prepare, self.apply, self.abort)


def build_cross_shard_bundle(
    client: Client,
    pk_tx: Point,
    contract: bytes,
    home_shard: int,
    remote_shard: int,
    payload: bytes,
    tag: bytes | None = None,
) -> CrossShardBundle:
    """Seal the three legs of one cross-shard transaction.

    ``tag`` is the 8-byte escrow key the contract files the transfer
    under; it defaults to a value derived from the client's next nonce
    so concurrent bundles from one client never collide.
    """
    if home_shard == remote_shard:
        raise ShardError("a cross-shard bundle needs two distinct shards")
    if tag is None:
        tag = (client.nonce + 1).to_bytes(_BUNDLE_TAG_BYTES, "big")
    if len(tag) != _BUNDLE_TAG_BYTES:
        raise ShardError(f"bundle tag must be {_BUNDLE_TAG_BYTES} bytes")
    prepare_raw = client.call_raw(contract, PREPARE_METHOD, tag + payload)
    apply_raw = client.call_raw(contract, APPLY_METHOD, tag + payload)
    abort_raw = client.call_raw(contract, ABORT_METHOD, tag)
    return CrossShardBundle(
        bundle_id=prepare_raw.tx_hash,
        home_shard=home_shard,
        remote_shard=remote_shard,
        prepare=client.seal(pk_tx, prepare_raw),
        apply=client.seal(pk_tx, apply_raw),
        abort=client.seal(pk_tx, abort_raw),
    )


class ReceiptRelay:
    """Moves verified outcome evidence between shard groups."""

    def __init__(self, consortium):
        self.consortium = consortium
        self.attestation = consortium.attestation
        self.cs_measurement = consortium.cs_measurement
        # Every blob that crossed a shard boundary, in order — the
        # surface the confidentiality canary scan reads.
        self.wire_log: list[bytes] = []
        self.attested_served = 0
        self.quorum_served = 0
        self.rejected = 0

    def fetch_evidence(
        self, shard_id: int, tx_hash: bytes
    ) -> AttestedReceipt | QuorumCert | None:
        """Verified evidence of ``tx_hash``'s outcome on ``shard_id``,
        or None when the shard is unreachable or has not decided yet.

        The attested single-enclave receipt is preferred; the 2PC
        quorum certificate is the fallback when the serving node cannot
        produce one (e.g. it was rebuilt from sealed storage) or its
        quote fails verification.
        """
        group = self.consortium.group(shard_id)
        if not group.reachable:
            return None
        receipt = make_attested_receipt(group.nodes[0], shard_id, tx_hash)
        if receipt is not None:
            try:
                verify_attested_receipt(
                    receipt, self.attestation, self.cs_measurement,
                    expected_tx_hash=tx_hash, expected_shard=shard_id,
                )
            except ShardError:
                self.rejected += 1
            else:
                self.attested_served += 1
                self.wire_log.append(receipt.encode())
                return receipt
        cert = make_quorum_cert(group.nodes, shard_id, tx_hash, group.quorum)
        if cert is None:
            return None
        try:
            verify_quorum_cert(
                cert, self.attestation, self.cs_measurement, group.quorum,
                expected_tx_hash=tx_hash, expected_shard=shard_id,
            )
        except ShardError:
            self.rejected += 1
            return None
        self.quorum_served += 1
        self.wire_log.append(cert.encode())
        return cert


__all__ = [
    "ABORT_METHOD",
    "APPLY_METHOD",
    "ESCROW_CONTRACT_SOURCE",
    "PREPARE_METHOD",
    "CrossShardBundle",
    "ReceiptRelay",
    "build_cross_shard_bundle",
]
