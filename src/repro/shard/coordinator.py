"""The cross-shard commit coordinator.

Drives each :class:`~repro.shard.relay.CrossShardBundle` through a
deterministic state machine::

    INIT ── prepare submitted ──▶ PREPARE_SUBMITTED
    PREPARE_SUBMITTED ── evidence: success ──▶ PREPARED
                      ── evidence: failure ──▶ ABORTED   (nothing escrowed)
                      ── deadline passed ───▶ abort path
    PREPARED ── apply submitted ─▶ APPLY_SUBMITTED
             ── deadline passed (remote unreachable) ─▶ abort path
    APPLY_SUBMITTED ── evidence: success ─▶ COMMITTED
                    ── evidence: failure ─▶ abort path  (escrow released)
    abort path: ABORT_PENDING (home unreachable) ─▶ ABORT_SUBMITTED ─▶ ABORTED

Decisions are **monotone**: once the abort path is entered the apply
leg is never submitted, even if prepare evidence surfaces later — and
the abort leg's higher nonce fences a resurfacing prepare out at the
engine (see :mod:`repro.shard.relay`).  Conversely, once the apply leg
is submitted the bundle never times out into an abort: evidence of the
remote outcome decides it, so a partition can delay exactly this
bundle but can never split it.  That asymmetry is what makes a
partitioned shard unable to wedge the others: every other bundle and
every other shard keeps progressing, and this bundle resolves
deterministically once the partition heals.

Every transition is journaled *before* the action it precedes, in a KV
store that survives the coordinator process (the classic write-ahead
2PC coordinator log).  A restarted coordinator reloads the journal,
re-verifies outcomes through the relay rather than trusting its own
last word, and resubmits only legs for which the deciding shard holds
no receipt — resubmission is safe anyway: pending duplicates dedupe in
the mempool and committed ones are replay-fenced by the nonce check.
"""

from __future__ import annotations

from repro.chain.transaction import Transaction
from repro.errors import ShardError
from repro.shard.relay import CrossShardBundle, ReceiptRelay
from repro.storage import rlp
from repro.storage.kv import KVStore, MemoryKV

_BUNDLE_PREFIX = b"xb:"
_ROUND_KEY = b"xmeta:round"

# Journal states.
INIT = b"init"
PREPARE_SUBMITTED = b"prepare-submitted"
PREPARED = b"prepared"
APPLY_SUBMITTED = b"apply-submitted"
ABORT_PENDING = b"abort-pending"
ABORT_SUBMITTED = b"abort-submitted"
COMMITTED = b"committed"
ABORTED = b"aborted"

TERMINAL_STATES = (COMMITTED, ABORTED)


class JournalRecord:
    """One bundle's durable coordinator state."""

    def __init__(self, bundle: CrossShardBundle, state: bytes = INIT,
                 deadline: int = 0, detail: bytes = b""):
        self.bundle = bundle
        self.state = state
        self.deadline = deadline
        self.detail = detail

    def encode(self) -> bytes:
        b = self.bundle
        return rlp.encode([
            self.state,
            rlp.encode_int(b.home_shard),
            rlp.encode_int(b.remote_shard),
            b.prepare.encode(),
            b.apply.encode(),
            b.abort.encode(),
            rlp.encode_int(self.deadline),
            self.detail,
        ])

    @classmethod
    def decode(cls, bundle_id: bytes, blob: bytes) -> "JournalRecord":
        fields = rlp.decode(blob)
        if not isinstance(fields, list) or len(fields) != 8:
            raise ShardError("malformed coordinator journal record")
        bundle = CrossShardBundle(
            bundle_id=bundle_id,
            home_shard=rlp.decode_int(fields[1]),
            remote_shard=rlp.decode_int(fields[2]),
            prepare=Transaction.decode(fields[3]),
            apply=Transaction.decode(fields[4]),
            abort=Transaction.decode(fields[5]),
        )
        return cls(bundle, state=fields[0],
                   deadline=rlp.decode_int(fields[6]), detail=fields[7])


class CoordinatorJournal:
    """Write-ahead journal over any KV store (MemoryKV survives a
    coordinator object's crash the way a disk survives a process)."""

    def __init__(self, kv: KVStore | None = None):
        self.kv = kv if kv is not None else MemoryKV()

    def write(self, record: JournalRecord) -> None:
        self.kv.put(_BUNDLE_PREFIX + record.bundle.bundle_id, record.encode())

    def load(self) -> dict[bytes, JournalRecord]:
        records: dict[bytes, JournalRecord] = {}
        for key, blob in self.kv.items():
            if key.startswith(_BUNDLE_PREFIX):
                bundle_id = key[len(_BUNDLE_PREFIX):]
                records[bundle_id] = JournalRecord.decode(bundle_id, blob)
        return records

    def write_round(self, round_no: int) -> None:
        self.kv.put(_ROUND_KEY, rlp.encode_int(round_no))

    def load_round(self) -> int:
        blob = self.kv.get(_ROUND_KEY)
        return rlp.decode_int(blob) if blob is not None else 0

    def blobs(self) -> list[bytes]:
        """Everything persisted, for confidentiality canary scans."""
        return [value for _, value in self.kv.items()]


class ShardCoordinator:
    """Drives cross-shard bundles to a terminal state, one step at a
    time (a *step* is one consensus round's worth of coordinator work —
    deadlines are counted in steps, never wall time)."""

    def __init__(self, consortium, relay: ReceiptRelay | None = None,
                 journal: CoordinatorJournal | None = None,
                 timeout_rounds: int = 8):
        if timeout_rounds < 1:
            raise ShardError("coordinator timeout must be at least 1 round")
        self.consortium = consortium
        self.relay = relay if relay is not None else ReceiptRelay(consortium)
        self.journal = journal if journal is not None else CoordinatorJournal()
        self.timeout_rounds = timeout_rounds
        self.records: dict[bytes, JournalRecord] = {}
        self.round = 0
        # Lifetime counters (absorbed by repro.obs.collect).
        self.submitted_total = 0
        self.committed_total = 0
        self.aborted_total = 0
        self.timeouts_total = 0
        self.recovered_total = 0

    # -- intake ----------------------------------------------------------

    def submit(self, bundle: CrossShardBundle) -> None:
        """Journal the intent, then try to place the prepare leg."""
        if bundle.bundle_id in self.records:
            raise ShardError("bundle already submitted")
        if bundle.home_shard == bundle.remote_shard:
            raise ShardError("bundle is not cross-shard")
        record = JournalRecord(bundle, state=INIT,
                               deadline=self.round + self.timeout_rounds)
        self.records[bundle.bundle_id] = record
        self.journal.write(record)
        self.submitted_total += 1
        self._try_submit_prepare(record)

    # -- state machine ---------------------------------------------------

    def step(self) -> None:
        """Advance every in-flight bundle once; call after each round."""
        self.round += 1
        self.journal.write_round(self.round)
        for bundle_id in sorted(self.records):
            record = self.records[bundle_id]
            if record.state in TERMINAL_STATES:
                continue
            self._advance(record)

    def pending(self) -> int:
        return sum(1 for r in self.records.values()
                   if r.state not in TERMINAL_STATES)

    def state_of(self, bundle_id: bytes) -> bytes:
        record = self.records.get(bundle_id)
        if record is None:
            raise ShardError("unknown bundle")
        return record.state

    def run_to_quiescence(self, max_rounds: int = 200) -> int:
        """Alternate consensus rounds and coordinator steps until every
        bundle is terminal (test/bench convenience; the sim interleaves
        the two itself)."""
        rounds = 0
        while self.pending() and rounds < max_rounds:
            self.consortium.run_round()
            self.step()
            rounds += 1
        if self.pending():
            raise ShardError(
                f"{self.pending()} bundles still in flight "
                f"after {max_rounds} rounds"
            )
        return rounds

    def _advance(self, record: JournalRecord) -> None:
        state = record.state
        if state == INIT:
            self._try_submit_prepare(record)
        elif state == PREPARE_SUBMITTED:
            self._await_prepare(record)
        elif state == PREPARED:
            self._try_submit_apply(record)
        elif state == APPLY_SUBMITTED:
            self._await_apply(record)
        elif state == ABORT_PENDING:
            self._try_submit_abort(record)
        elif state == ABORT_SUBMITTED:
            self._await_abort(record)
        else:
            raise ShardError(f"corrupt coordinator state {state!r}")

    def _transition(self, record: JournalRecord, state: bytes,
                    detail: bytes = b"", reset_deadline: bool = False) -> None:
        record.state = state
        if detail:
            record.detail = detail
        if reset_deadline:
            record.deadline = self.round + self.timeout_rounds
        self.journal.write(record)
        if state == COMMITTED:
            self.committed_total += 1
        elif state == ABORTED:
            self.aborted_total += 1

    def _try_submit_prepare(self, record: JournalRecord) -> None:
        bundle = record.bundle
        if self.consortium.submit_to(bundle.home_shard, bundle.prepare):
            self._transition(record, PREPARE_SUBMITTED, reset_deadline=True)
        elif self.round >= record.deadline:
            # Nothing was ever escrowed anywhere: abort is a no-op.
            self.timeouts_total += 1
            self._transition(record, ABORTED, detail=b"timeout-before-prepare")

    def _await_prepare(self, record: JournalRecord) -> None:
        bundle = record.bundle
        evidence = self.relay.fetch_evidence(
            bundle.home_shard, bundle.prepare.tx_hash
        )
        if evidence is not None:
            if evidence.success:
                self._transition(record, PREPARED, reset_deadline=True)
                self._try_submit_apply(record)
            else:
                # Prepare itself failed — nothing escrowed, terminal.
                self._transition(record, ABORTED, detail=b"prepare-failed")
            return
        if self.round >= record.deadline:
            # The home shard may or may not have executed prepare; the
            # abort leg resolves both cases (released escrow, or a
            # nonce fence ahead of a resurfacing prepare).
            self.timeouts_total += 1
            self._enter_abort_path(record, b"prepare-timeout")

    def _try_submit_apply(self, record: JournalRecord) -> None:
        bundle = record.bundle
        if self.consortium.submit_to(bundle.remote_shard, bundle.apply):
            self._transition(record, APPLY_SUBMITTED)
        elif self.round >= record.deadline:
            self.timeouts_total += 1
            self._enter_abort_path(record, b"remote-unreachable")

    def _await_apply(self, record: JournalRecord) -> None:
        bundle = record.bundle
        evidence = self.relay.fetch_evidence(
            bundle.remote_shard, bundle.apply.tx_hash
        )
        if evidence is None:
            # No timeout here, by design: the apply leg is in the
            # remote shard's hands and may still commit — aborting now
            # could split the bundle.  The bundle waits for the heal.
            return
        if evidence.success:
            self._transition(record, COMMITTED)
        else:
            self._enter_abort_path(record, b"apply-failed")

    def _enter_abort_path(self, record: JournalRecord,
                          detail: bytes) -> None:
        # Journal the decision BEFORE acting on it: a coordinator that
        # crashes here must come back abort-bound, not apply-curious.
        self._transition(record, ABORT_PENDING, detail=detail)
        self._try_submit_abort(record)

    def _try_submit_abort(self, record: JournalRecord) -> None:
        bundle = record.bundle
        if self.consortium.submit_to(bundle.home_shard, bundle.abort):
            self._transition(record, ABORT_SUBMITTED)

    def _await_abort(self, record: JournalRecord) -> None:
        bundle = record.bundle
        evidence = self.relay.fetch_evidence(
            bundle.home_shard, bundle.abort.tx_hash
        )
        if evidence is not None:
            # Success or not, the abort leg is committed on-chain: its
            # nonce now fences the prepare leg, the escrow (if any) is
            # released, and the bundle is terminally aborted.
            self._transition(record, ABORTED)

    # -- crash recovery --------------------------------------------------

    @classmethod
    def recover(cls, consortium, journal: CoordinatorJournal,
                relay: ReceiptRelay | None = None,
                timeout_rounds: int = 8) -> "ShardCoordinator":
        """Rebuild a coordinator from its journal after a crash.

        In-flight submissions are reconciled against shard receipts
        through the relay: a leg whose outcome is already decided moves
        the record forward, a leg the deciding shard never saw is
        resubmitted (safe — mempool dedupe + nonce fencing make
        duplicates harmless).
        """
        coordinator = cls(consortium, relay=relay, journal=journal,
                          timeout_rounds=timeout_rounds)
        coordinator.records = journal.load()
        coordinator.round = journal.load_round()
        for count_state in coordinator.records.values():
            coordinator.submitted_total += 1
            if count_state.state == COMMITTED:
                coordinator.committed_total += 1
            elif count_state.state == ABORTED:
                coordinator.aborted_total += 1
        for bundle_id in sorted(coordinator.records):
            record = coordinator.records[bundle_id]
            if record.state in TERMINAL_STATES:
                continue
            coordinator.recovered_total += 1
            # The journal only ever runs *behind* reality (write-ahead):
            # re-running the state handler re-fetches evidence, finds
            # any outcome that landed mid-crash, and resubmits any leg
            # that never arrived.
            if record.state in (PREPARE_SUBMITTED, PREPARED,
                                APPLY_SUBMITTED, ABORT_PENDING,
                                ABORT_SUBMITTED, INIT):
                coordinator._advance(record)
        return coordinator


__all__ = [
    "ABORTED",
    "ABORT_PENDING",
    "ABORT_SUBMITTED",
    "APPLY_SUBMITTED",
    "COMMITTED",
    "INIT",
    "PREPARED",
    "PREPARE_SUBMITTED",
    "TERMINAL_STATES",
    "CoordinatorJournal",
    "JournalRecord",
    "ShardCoordinator",
]
