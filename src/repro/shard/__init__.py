"""Horizontal scale-out: sharded consortium with cross-shard commits.

The subsystem splits the consortium into N independent PBFT groups
(:mod:`repro.shard.group`) that share one K-Protocol key domain, routes
transactions to shards by the scheduler's conflict domains
(:mod:`repro.shard.router`), and commits cross-shard transactions
through a TEE-attested receipt relay with a 2PC quorum fallback and a
deterministic timeout/abort path (:mod:`repro.shard.relay`,
:mod:`repro.shard.coordinator`).  See docs/sharding.md.
"""

from repro.shard.coordinator import (
    CoordinatorJournal,
    JournalRecord,
    ShardCoordinator,
)
from repro.shard.group import (
    ShardGroup,
    ShardedConsortium,
    build_sharded_consortium,
)
from repro.shard.relay import (
    CrossShardBundle,
    ReceiptRelay,
    build_cross_shard_bundle,
)
from repro.shard.router import (
    ALL_SHARDS,
    RoutingPreprocessor,
    ShardRouter,
    shard_of_domain,
)

__all__ = [
    "ALL_SHARDS",
    "CoordinatorJournal",
    "CrossShardBundle",
    "JournalRecord",
    "ReceiptRelay",
    "RoutingPreprocessor",
    "ShardCoordinator",
    "ShardGroup",
    "ShardRouter",
    "ShardedConsortium",
    "build_cross_shard_bundle",
    "build_sharded_consortium",
    "shard_of_domain",
]
