"""Shard groups and sharded-consortium assembly.

A *shard group* is a full PBFT group — its own nodes, engines, stores,
leader rotation — reusing :class:`repro.chain.node.Consortium`
unchanged.  :func:`build_sharded_consortium` stands up N of them inside
**one K-Protocol key domain**: a single attestation service knows every
platform, the founder enclave (shard 0, node 0) runs
``mutual_attested_provision`` with every other node across all shards,
and every engine therefore shares the same ``pk_tx`` / state keys.
Clients seal once; a sealed envelope or receipt is meaningful on
whichever shard it lands on, so the cross-shard relay only ever carries
ciphertext.

Partitions are modeled at the shard boundary: a group marked
unreachable keeps its internal consensus machinery intact but the
router, relay, and coordinator cannot talk to it — the coordinator's
deterministic timeout/abort path (:mod:`repro.shard.coordinator`) is
what keeps the remaining shards unwedged.
"""

from __future__ import annotations

from repro.chain.node import (
    DEFAULT_BLOCK_BYTES,
    AppliedBlock,
    Consortium,
    Node,
)
from repro.chain.transaction import Transaction
from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.k_protocol import bootstrap_founder, mutual_attested_provision
from repro.core.xshard import quorum_size
from repro.errors import ShardError
from repro.shard.router import ALL_SHARDS, RoutingPreprocessor, ShardRouter
from repro.tee.attestation import AttestationService


class ShardGroup:
    """One shard: an independent consortium plus shard-level identity."""

    def __init__(self, shard_id: int, nodes: list[Node]):
        self.shard_id = shard_id
        self.consortium = Consortium(nodes)
        # Flipped by the fault injector: an unreachable shard cannot be
        # submitted to or queried by the relay/coordinator.
        self.reachable = True

    @property
    def nodes(self) -> list[Node]:
        return self.consortium.nodes

    @property
    def height(self) -> int:
        return self.consortium.height

    @property
    def quorum(self) -> int:
        return quorum_size(len(self.nodes))

    def pending(self) -> int:
        return sum(
            len(node.unverified) + len(node.verified) for node in self.nodes
        )

    def submit(self, tx: Transaction) -> bool:
        if not self.reachable:
            return False
        self.consortium.broadcast(tx)
        return True

    def run_round(self, max_bytes: int = DEFAULT_BLOCK_BYTES) -> AppliedBlock:
        return self.consortium.run_round(max_bytes=max_bytes)

    def run_until_empty(self, max_rounds: int = 1000,
                        max_bytes: int = DEFAULT_BLOCK_BYTES) -> int:
        return self.consortium.run_until_empty(
            max_rounds=max_rounds, max_bytes=max_bytes
        )

    def close(self) -> None:
        for node in self.nodes:
            node.close()


class ShardedConsortium:
    """N shard groups behind one router, one key domain."""

    def __init__(self, groups: list[ShardGroup],
                 attestation: AttestationService):
        if not groups:
            raise ShardError("a sharded consortium needs shard groups")
        self.groups = groups
        self.attestation = attestation
        self.router = ShardRouter(len(groups))
        founder = groups[0].nodes[0]
        self.cs_measurement = founder.confidential.cs.measurement
        self.preprocessor = RoutingPreprocessor(
            self.router, founder.confidential.export_worker_keys()
        )

    @property
    def num_shards(self) -> int:
        return len(self.groups)

    @property
    def pk_tx(self) -> bytes:
        return self.groups[0].nodes[0].confidential.pk_tx

    def group(self, shard_id: int) -> ShardGroup:
        if not 0 <= shard_id < len(self.groups):
            raise ShardError(f"no shard {shard_id}")
        return self.groups[shard_id]

    # -- intake ----------------------------------------------------------

    def submit(self, tx: Transaction) -> list[int]:
        """Route a wire transaction to its shard(s); returns the shard
        ids that accepted it (unreachable shards simply miss out and
        catch up through normal chain sync once healed)."""
        verdict = self.preprocessor.route(tx)
        targets = (range(self.num_shards) if verdict == ALL_SHARDS
                   else (verdict,))
        return [sid for sid in targets if self.groups[sid].submit(tx)]

    def submit_to(self, shard_id: int, tx: Transaction) -> bool:
        """Explicit placement — cross-shard legs carry their shard
        assignment in the bundle instead of re-deriving it."""
        return self.group(shard_id).submit(tx)

    # -- consensus -------------------------------------------------------

    def run_round(self, max_bytes: int = DEFAULT_BLOCK_BYTES) -> int:
        """One consensus round on every reachable shard with pending
        work; returns the number of blocks cut."""
        blocks = 0
        for group in self.groups:
            if group.reachable and group.pending():
                group.run_round(max_bytes=max_bytes)
                blocks += 1
        return blocks

    def run_until_empty(self, max_rounds: int = 1000,
                        max_bytes: int = DEFAULT_BLOCK_BYTES) -> int:
        rounds = 0
        for group in self.groups:
            if group.reachable and group.pending():
                rounds += group.run_until_empty(
                    max_rounds=max_rounds, max_bytes=max_bytes
                )
        return rounds

    def close(self) -> None:
        for group in self.groups:
            group.close()

    def __enter__(self) -> "ShardedConsortium":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def build_sharded_consortium(
    num_shards: int,
    nodes_per_shard: int = 4,
    config: EngineConfig = DEFAULT_CONFIG,
    lanes: int = 1,
    data_dirs: list[list[str]] | None = None,
) -> ShardedConsortium:
    """Stand up N shard groups sharing one K-Protocol key domain.

    Node ids are globally unique (``shard * nodes_per_shard + index``)
    so evidence and telemetry can name a node without shard context.
    """
    if num_shards < 1:
        raise ShardError("need at least one shard")
    if nodes_per_shard < 1:
        raise ShardError("need at least one node per shard")
    attestation = AttestationService()
    groups: list[ShardGroup] = []
    all_nodes: list[Node] = []
    for shard_id in range(num_shards):
        nodes = [
            Node(
                shard_id * nodes_per_shard + i,
                config=config,
                lanes=lanes,
                data_dir=(data_dirs[shard_id][i] if data_dirs else None),
            )
            for i in range(nodes_per_shard)
        ]
        for node in nodes:
            attestation.register_platform(node.confidential.platform)
        groups.append(ShardGroup(shard_id, nodes))
        all_nodes.extend(nodes)
    founder = all_nodes[0]
    bootstrap_founder(founder.confidential.km)
    for joiner in all_nodes[1:]:
        mutual_attested_provision(
            founder.confidential.km, joiner.confidential.km, attestation
        )
    for node in all_nodes:
        node.confidential.provision_from_km()
    return ShardedConsortium(groups, attestation)


__all__ = [
    "ShardGroup",
    "ShardedConsortium",
    "build_sharded_consortium",
]
