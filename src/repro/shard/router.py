"""Deterministic conflict-domain → shard routing.

The consortium is partitioned by the scheduler's conflict domains: the
same ``b"a:" + sender`` nonce-row domains :func:`repro.chain.scheduler.
domain_of` already computes for wave planning decide which shard owns a
transaction.  A pure hash of the domain bytes picks the shard, so

- every router instance — any process, any seed, any restart — maps a
  domain to the same shard, and
- no domain can ever map to two shards (the map is a function of the
  domain bytes alone; the property test pins this).

Deploys and upgrades are consortium-wide: contract code must exist on
every shard for cross-shard legs to execute, so the router fans them
out to all shards (the sharded analogue of the scheduler treating them
as barriers).

Confidential envelopes hide the sender, so routing them needs the §5.2
off-path preprocessor: :class:`RoutingPreprocessor` decrypts with the
exported enclave worker key (the same ``export_worker_keys`` channel
the pre-verification pool uses) and routes on the recovered profile —
the plaintext never leaves the routing tier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.preverify_pool import _preverify_one
from repro.chain.scheduler import domain_of
from repro.chain.transaction import Transaction
from repro.core.preprocessor import TxProfile
from repro.crypto.hashes import sha256
from repro.crypto.keys import KeyPair
from repro.errors import ShardError

_ROUTE_SALT = b"shard-route:"

# Router verdict for transactions every shard must see (deploy/upgrade).
ALL_SHARDS = -1


def shard_of_domain(domain: bytes, num_shards: int) -> int:
    """The one shard that owns a conflict domain."""
    if num_shards < 1:
        raise ShardError("need at least one shard")
    return int.from_bytes(sha256(_ROUTE_SALT + domain), "big") % num_shards


@dataclass(frozen=True)
class ShardRouter:
    """Pure routing policy over conflict domains."""

    num_shards: int

    def shard_for_sender(self, sender: bytes) -> int:
        profile = TxProfile(sender=bytes(sender), contract=b"",
                            is_deploy=False, is_upgrade=False)
        return self.route_profile(profile)

    def route_profile(self, profile: TxProfile) -> int:
        """ALL_SHARDS for code-registry mutations, else the owner of the
        sender's nonce-row domain (the scheduler's ``domain_of``)."""
        if profile.is_barrier:
            return ALL_SHARDS
        (domain,) = sorted(domain_of(profile))
        return shard_of_domain(domain, self.num_shards)


class RoutingPreprocessor:
    """Routes wire transactions, decrypting confidential envelopes
    off-path with the provisioned worker key (§5.2 preprocessor)."""

    def __init__(self, router: ShardRouter, worker_sk: bytes):
        self.router = router
        self._sk = (KeyPair.from_private(int.from_bytes(worker_sk, "big"))
                    if worker_sk else None)

    def route(self, tx: Transaction) -> int:
        """The shard (or ALL_SHARDS) this transaction belongs on.

        Raises :class:`ShardError` for transactions that do not decrypt
        or whose signature does not verify — an unroutable transaction
        must be rejected at the edge, not guessed onto a shard.
        """
        (_, _, verified, _, sender, _, is_deploy, is_upgrade,
         _, _) = _preverify_one(self._sk, tx.tx_type, tx.payload)
        if not verified:
            raise ShardError("transaction failed routing pre-verification")
        profile = TxProfile(sender=sender, contract=b"",
                            is_deploy=is_deploy, is_upgrade=is_upgrade)
        return self.router.route_profile(profile)


__all__ = [
    "ALL_SHARDS",
    "RoutingPreprocessor",
    "ShardRouter",
    "shard_of_domain",
]
