"""Exception hierarchy shared by every repro subsystem.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch one base class at the integration boundary while
tests can assert on precise subclasses.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key size, bad point, ...)."""


class AuthenticationError(CryptoError):
    """Authenticated decryption or signature verification failed."""


class EnclaveError(ReproError):
    """Violation of the simulated TEE trust boundary or enclave misuse."""


class AttestationError(EnclaveError):
    """An attestation quote or report failed verification."""


class PagingError(EnclaveError):
    """The EPC pager was asked to do something impossible."""


class StorageError(ReproError):
    """Key-value store, RLP, or merkle-tree failure."""


class VMError(ReproError):
    """Smart-contract virtual machine execution failure."""


class OutOfGasError(VMError):
    """EVM-style gas budget exhausted."""


class TrapError(VMError):
    """CONFIDE-VM trap (out-of-bounds access, stack fault, ...)."""


class CompileError(ReproError):
    """CWScript compilation failure (lex, parse, or codegen)."""


class SchemaError(ReproError):
    """CCLe schema parse or validation failure."""


class EncodingError(ReproError):
    """CCLe binary encode/decode failure."""


class ProtocolError(ReproError):
    """T-/D-/K-protocol violation."""


class ChainError(ReproError):
    """Blockchain substrate failure (consensus, block, mempool, node)."""


class TelemetryError(ReproError):
    """The telemetry confidentiality guard rejected a span or metric
    field (payload bytes, non-allowlisted string, malformed name)."""


class ContractError(ReproError):
    """A smart contract aborted with an application-level error."""


class ShardError(ReproError):
    """Cross-shard routing or commit protocol failure (bad route, forged
    attested receipt, insufficient quorum, coordinator state error)."""


class InvariantViolation(ReproError):
    """A fault-injection simulator invariant (safety, durability, or
    confidentiality) was violated.  The message carries enough context
    to replay the run (seed + fault schedule are printed by the
    harness's failure report)."""


class AnalysisError(ReproError):
    """Deploy-time static analysis rejected a contract.

    Raised by the taint analyzer (confidential-to-public flow) or the
    bytecode verifier (structurally invalid artifact).  ``findings``
    carries the structured findings behind the rejection; the message is
    prefixed ``analysis:`` so chain-level receipts are attributable.
    """

    def __init__(self, message: str, findings: tuple = ()):
        super().__init__(f"analysis: {message}")
        self.findings = tuple(findings)
