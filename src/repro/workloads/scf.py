'''The SCF-AR (Supply Chain Finance, Account Receivable) workload
(§6.1 workload 1, §6.3, Figure 8, Table 1).

A hierarchical smart-contract suite: a transfer starts at the Gateway
contract, goes through the Manager, which dispatches to the service
contracts (ArTransfer orchestrating ArAccount / ArIssue / ArFinancing /
ArClearing).  The receivable moves in 7 segments, each a self-call that
debits and credits the account service.

The flow is engineered to reproduce Table 1's operation mix exactly —
one asset transfer performs

- 31 contract calls (direct + indirect),
- 151 GetStorage operations,
- 9 SetStorage operations,
- 1 transaction verification, 1 transaction decryption

and the test suite asserts those counts.

Call budget (gets/sets per invocation):

====  =======================  ====  ====
 #    method                   gets  sets
====  =======================  ====  ====
 1    Gateway.transfer           2    0
 2    Manager.dispatch           3    1
 3    ArTransfer.run             5    0
 4-5  ArAccount.check (x2)       4    0
 6    ArIssue.cert_info          5    0
 7-8  ArFinancing.risk_check     4    0
 9-29 7 x [ArTransfer.move_segment(5), ArAccount.debit(5), ArAccount.credit(5)]
 30   ArClearing.record          9    4
 31   ArFinancing.settle         6    4
====  =======================  ====  ====

Totals: 31 calls, 2+3+5+8+5+8+105+9+6 = 151 gets, 1+4+4 = 9 sets.
'''

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import ContractArtifact, compile_source
from repro.workloads.cwslib import STR_LIB

NUM_SEGMENTS = 7

GATEWAY_SOURCE = STR_LIB + """
fn setup() {
    let a = alloc(20);
    input_read(a, 0, 20);
    storage_set("addr.manager", 12, a, 20);
    let one = alloc(8);
    store64(one, 1);
    storage_set("cfg.enabled", 11, one, 8);
}
fn transfer() {
    let cfg = alloc(8);
    let e = storage_get("cfg.enabled", 11, cfg, 8);
    if (e != 8 || load64(cfg) != 1) { abort("gateway disabled", 16); }
    let m = alloc(20);
    let ml = storage_get("addr.manager", 12, m, 20);
    if (ml != 20) { abort("no manager", 10); }
    let n = input_size();
    let inbuf = alloc(n);
    input_read(inbuf, 0, n);
    let out = alloc(64);
    let rl = call_contract(m, 20, "dispatch", 8, inbuf, n, out, 64);
    output(out, rl);
}
"""

MANAGER_SOURCE = STR_LIB + """
fn setup() {
    let a = alloc(20);
    input_read(a, 0, 20);
    storage_set("route.transfer", 14, a, 20);
    let acl = alloc(8);
    store64(acl, 1);
    storage_set("acl.gateway", 11, acl, 8);
}
fn dispatch() {
    let t = alloc(20);
    let tl = storage_get("route.transfer", 14, t, 20);
    if (tl != 20) { abort("no route", 8); }
    let acl = alloc(8);
    let al = storage_get("acl.gateway", 11, acl, 8);
    if (al != 8 || load64(acl) != 1) { abort("acl denied", 10); }
    let seq = alloc(8);
    let sl = storage_get("mgr.seq", 7, seq, 8);
    let s = 0;
    if (sl == 8) { s = load64(seq); }
    store64(seq, s + 1);
    storage_set("mgr.seq", 7, seq, 8);
    let n = input_size();
    let inbuf = alloc(n);
    input_read(inbuf, 0, n);
    let out = alloc(64);
    let rl = call_contract(t, 20, "run", 3, inbuf, n, out, 64);
    output(out, rl);
}
"""

AR_TRANSFER_SOURCE = STR_LIB + f"""
fn setup() {{
    let a = alloc(100);
    input_read(a, 0, 100);
    storage_set("addr.account", 12, a, 20);
    storage_set("addr.issue", 10, a + 20, 20);
    storage_set("addr.financing", 14, a + 40, 20);
    storage_set("addr.clearing", 13, a + 60, 20);
    storage_set("addr.self", 9, a + 80, 20);
}}
fn run() {{
    let acct = alloc(20);
    if (storage_get("addr.account", 12, acct, 20) != 20) {{ abort("no acct svc", 11); }}
    let issue = alloc(20);
    if (storage_get("addr.issue", 10, issue, 20) != 20) {{ abort("no issue svc", 12); }}
    let fin = alloc(20);
    if (storage_get("addr.financing", 14, fin, 20) != 20) {{ abort("no fin svc", 10); }}
    let clr = alloc(20);
    if (storage_get("addr.clearing", 13, clr, 20) != 20) {{ abort("no clr svc", 10); }}
    let self_ = alloc(20);
    if (storage_get("addr.self", 9, self_, 20) != 20) {{ abort("no self", 7); }}
    let n = input_size();
    if (n < 24) {{ abort("bad transfer input", 18); }}
    let inbuf = alloc(n);
    input_read(inbuf, 0, n);
    let out = alloc(64);
    // account checks for both parties
    call_contract(acct, 20, "check", 5, inbuf, 8, out, 64);
    call_contract(acct, 20, "check", 5, inbuf + 8, 8, out, 64);
    // certificate lookup
    call_contract(issue, 20, "cert_info", 9, inbuf + 16, 8, out, 64);
    // risk checks for both parties
    call_contract(fin, 20, "risk_check", 10, inbuf, 8, out, 64);
    call_contract(fin, 20, "risk_check", 10, inbuf + 8, 8, out, 64);
    // move the receivable in segments
    let seg_arg = alloc(25);
    _copy_bytes(seg_arg, inbuf, 24);
    let moved = 0;
    let s = 0;
    while (s < {NUM_SEGMENTS}) {{
        store8(seg_arg + 24, s);
        let rl = call_contract(self_, 20, "move_segment", 12, seg_arg, 25, out, 64);
        if (rl >= 8) {{ moved = moved + load64(out); }}
        s = s + 1;
    }}
    // clearing + financing settlement
    let settle_arg = alloc(32);
    _copy_bytes(settle_arg, inbuf, 24);
    store64(settle_arg + 24, moved);
    call_contract(clr, 20, "record", 6, settle_arg, 32, out, 64);
    call_contract(fin, 20, "settle", 6, settle_arg, 32, out, 64);
    let res = alloc(8);
    store64(res, moved);
    output(res, 8);
}}
fn move_segment() {{
    let acct = alloc(20);
    if (storage_get("addr.account", 12, acct, 20) != 20) {{ abort("no acct svc", 11); }}
    let pol = alloc(8);
    storage_get("seg.policy", 10, pol, 8);
    let fee = alloc(8);
    storage_get("seg.fee", 7, fee, 8);
    let lim = alloc(8);
    storage_get("seg.limit", 9, lim, 8);
    let n = input_size();
    let inbuf = alloc(n);
    input_read(inbuf, 0, n);
    let idx = load8(inbuf + 24);
    let segkey = alloc(8);
    _copy_bytes(segkey, "seg.rec", 7);
    store8(segkey + 7, '0' + idx);
    let rec = alloc(8);
    storage_get(segkey, 8, rec, 8);
    let out = alloc(64);
    call_contract(acct, 20, "debit", 5, inbuf, 25, out, 64);
    call_contract(acct, 20, "credit", 6, inbuf, 25, out, 64);
    let amount = alloc(8);
    store64(amount, 100 + idx);
    output(amount, 8);
}}
"""

AR_ACCOUNT_SOURCE = STR_LIB + """
fn setup() {
    let one = alloc(8);
    store64(one, 1);
    storage_set("cfg.kyc", 7, one, 8);
}
fn check() {
    let id = alloc(8);
    input_read(id, 0, 8);
    let k = alloc(16);
    _copy_bytes(k, "status.", 7);
    _copy_bytes(k + 7, id, 8);
    let scratch = alloc(64);
    storage_get(k, 15, scratch, 64);
    _copy_bytes(k, "owner..", 7);
    _copy_bytes(k + 7, id, 8);
    storage_get(k, 15, scratch, 64);
    _copy_bytes(k, "limit..", 7);
    _copy_bytes(k + 7, id, 8);
    storage_get(k, 15, scratch, 64);
    storage_get("cfg.kyc", 7, scratch, 8);
    let ok = alloc(8);
    store64(ok, 1);
    output(ok, 8);
}
fn debit() {
    let inbuf = alloc(25);
    input_read(inbuf, 0, 25);
    let k = alloc(16);
    _copy_bytes(k, "balance", 7);
    _copy_bytes(k + 7, inbuf, 8);
    let scratch = alloc(64);
    storage_get(k, 15, scratch, 64);
    _copy_bytes(k, "hold...", 7);
    _copy_bytes(k + 7, inbuf, 8);
    storage_get(k, 15, scratch, 64);
    storage_get("cfg.fee", 7, scratch, 8);
    storage_get("cfg.limit", 9, scratch, 8);
    storage_get("cfg.kyc", 7, scratch, 8);
    let ok = alloc(8);
    store64(ok, 1);
    output(ok, 8);
}
fn credit() {
    let inbuf = alloc(25);
    input_read(inbuf, 0, 25);
    let k = alloc(16);
    _copy_bytes(k, "balance", 7);
    _copy_bytes(k + 7, inbuf + 8, 8);
    let scratch = alloc(64);
    storage_get(k, 15, scratch, 64);
    _copy_bytes(k, "hold...", 7);
    _copy_bytes(k + 7, inbuf + 8, 8);
    storage_get(k, 15, scratch, 64);
    storage_get("cfg.fee", 7, scratch, 8);
    storage_get("cfg.limit", 9, scratch, 8);
    storage_get("cfg.kyc", 7, scratch, 8);
    let ok = alloc(8);
    store64(ok, 1);
    output(ok, 8);
}
"""

AR_ISSUE_SOURCE = STR_LIB + """
fn setup() {
    let one = alloc(8);
    store64(one, 1);
    storage_set("cfg.issuer", 10, one, 8);
}
fn cert_info() {
    let id = alloc(8);
    input_read(id, 0, 8);
    let k = alloc(16);
    let scratch = alloc(64);
    _copy_bytes(k, "issuer.", 7);
    _copy_bytes(k + 7, id, 8);
    storage_get(k, 15, scratch, 64);
    _copy_bytes(k, "amount.", 7);
    _copy_bytes(k + 7, id, 8);
    storage_get(k, 15, scratch, 64);
    _copy_bytes(k, "due....", 7);
    _copy_bytes(k + 7, id, 8);
    storage_get(k, 15, scratch, 64);
    _copy_bytes(k, "rating.", 7);
    _copy_bytes(k + 7, id, 8);
    storage_get(k, 15, scratch, 64);
    storage_get("cfg.issuer", 10, scratch, 8);
    let ok = alloc(8);
    store64(ok, 1);
    output(ok, 8);
}
"""

AR_FINANCING_SOURCE = STR_LIB + """
fn setup() {
    let q = alloc(8);
    store64(q, 1000000);
    storage_set("cfg.quota", 9, q, 8);
}
fn risk_check() {
    let id = alloc(8);
    input_read(id, 0, 8);
    let k = alloc(16);
    let scratch = alloc(64);
    _copy_bytes(k, "score..", 7);
    _copy_bytes(k + 7, id, 8);
    storage_get(k, 15, scratch, 64);
    _copy_bytes(k, "exposur", 7);
    _copy_bytes(k + 7, id, 8);
    storage_get(k, 15, scratch, 64);
    storage_get("cfg.threshold", 13, scratch, 8);
    storage_get("cfg.model", 9, scratch, 8);
    let ok = alloc(8);
    store64(ok, 1);
    output(ok, 8);
}
fn settle() {
    let inbuf = alloc(32);
    input_read(inbuf, 0, 32);
    let moved = load64(inbuf + 24);
    let scratch = alloc(64);
    storage_get("cfg.quota", 9, scratch, 8);
    let quota = load64(scratch);
    storage_get("cfg.rate", 8, scratch, 8);
    storage_get("cfg.fees", 8, scratch, 8);
    let k = alloc(16);
    _copy_bytes(k, "pos.frm", 7);
    _copy_bytes(k + 7, inbuf, 8);
    let frm = alloc(8);
    let fl = storage_get(k, 15, frm, 8);
    let fv = 0;
    if (fl == 8) { fv = load64(frm); }
    let k2 = alloc(16);
    _copy_bytes(k2, "pos.to.", 7);
    _copy_bytes(k2 + 7, inbuf + 8, 8);
    let to = alloc(8);
    let tl = storage_get(k2, 15, to, 8);
    let tv = 0;
    if (tl == 8) { tv = load64(to); }
    let logcnt = alloc(8);
    let ll = storage_get("fin.logn", 8, logcnt, 8);
    let lc = 0;
    if (ll == 8) { lc = load64(logcnt); }
    // 4 writes: quota, positions x2, log counter
    store64(scratch, quota - moved);
    storage_set("cfg.quota", 9, scratch, 8);
    store64(frm, fv - moved);
    storage_set(k, 15, frm, 8);
    store64(to, tv + moved);
    storage_set(k2, 15, to, 8);
    store64(logcnt, lc + 1);
    storage_set("fin.logn", 8, logcnt, 8);
    let ok = alloc(8);
    store64(ok, moved);
    output(ok, 8);
}
"""

AR_CLEARING_SOURCE = STR_LIB + """
fn setup() {
    let one = alloc(8);
    store64(one, 1);
    storage_set("cfg.window", 10, one, 8);
}
fn record() {
    let inbuf = alloc(32);
    input_read(inbuf, 0, 32);
    let moved = load64(inbuf + 24);
    let scratch = alloc(64);
    storage_get("cfg.window", 10, scratch, 8);
    storage_get("cfg.cutoff", 10, scratch, 8);
    storage_get("cfg.party", 9, scratch, 8);
    storage_get("cfg.holiday", 11, scratch, 8);
    let k = alloc(16);
    _copy_bytes(k, "clr.frm", 7);
    _copy_bytes(k + 7, inbuf, 8);
    let a = alloc(8);
    let al = storage_get(k, 15, a, 8);
    let av = 0;
    if (al == 8) { av = load64(a); }
    let k2 = alloc(16);
    _copy_bytes(k2, "clr.to.", 7);
    _copy_bytes(k2 + 7, inbuf + 8, 8);
    let b = alloc(8);
    let bl = storage_get(k2, 15, b, 8);
    let bv = 0;
    if (bl == 8) { bv = load64(b); }
    let audit = alloc(8);
    let aul = storage_get("audit.n", 7, audit, 8);
    let auv = 0;
    if (aul == 8) { auv = load64(audit); }
    let k3 = alloc(16);
    _copy_bytes(k3, "cert.st", 7);
    _copy_bytes(k3 + 7, inbuf + 16, 8);
    let st = alloc(8);
    storage_get(k3, 15, st, 8);
    storage_get("cfg.netting", 11, scratch, 8);
    // 4 writes: clearing entries x2, audit counter, certificate status
    store64(a, av + moved);
    storage_set(k, 15, a, 8);
    store64(b, bv + moved);
    storage_set(k2, 15, b, 8);
    store64(audit, auv + 1);
    storage_set("audit.n", 7, audit, 8);
    store64(st, 2);
    storage_set(k3, 15, st, 8);
    let ok = alloc(8);
    store64(ok, 1);
    output(ok, 8);
}
"""

CONTRACT_SOURCES: dict[str, str] = {
    "gateway": GATEWAY_SOURCE,
    "manager": MANAGER_SOURCE,
    "transfer": AR_TRANSFER_SOURCE,
    "account": AR_ACCOUNT_SOURCE,
    "issue": AR_ISSUE_SOURCE,
    "financing": AR_FINANCING_SOURCE,
    "clearing": AR_CLEARING_SOURCE,
}

# Expected Table 1 operation counts for one transfer transaction.
EXPECTED_CONTRACT_CALLS = 31
EXPECTED_GET_STORAGE = 151
EXPECTED_SET_STORAGE = 9


@dataclass(frozen=True)
class ScfSuite:
    """Compiled SCF-AR contract suite."""

    artifacts: dict[str, ContractArtifact]

    @classmethod
    def compile(cls, target: str = "wasm") -> "ScfSuite":
        return cls(
            {
                name: compile_source(source, target)
                for name, source in CONTRACT_SOURCES.items()
            }
        )


def make_transfer_input(
    from_id: bytes = b"ACCT-001", to_id: bytes = b"ACCT-002",
    cert_id: bytes = b"CERT-777",
) -> bytes:
    """24-byte transfer request: from | to | certificate (8 bytes each)."""
    if len(from_id) != 8 or len(to_id) != 8 or len(cert_id) != 8:
        raise ValueError("SCF ids are 8 bytes")
    return from_id + to_id + cert_id


def setup_plan(addresses: dict[str, bytes]) -> list[tuple[str, str, bytes]]:
    """(contract, method, args) setup calls after deployment."""
    return [
        ("gateway", "setup", addresses["manager"]),
        ("manager", "setup", addresses["transfer"]),
        (
            "transfer",
            "setup",
            addresses["account"]
            + addresses["issue"]
            + addresses["financing"]
            + addresses["clearing"]
            + addresses["transfer"],
        ),
        ("account", "setup", b""),
        ("issue", "setup", b""),
        ("financing", "setup", b""),
        ("clearing", "setup", b""),
    ]
