"""Client-side transaction building for workloads, examples, and benches.

A :class:`Client` owns a signing keypair, a T-Protocol user root key, and
a nonce counter; it produces signed raw transactions and either public
wrappers or sealed confidential envelopes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.transaction import (
    DEPLOY_METHOD,
    UPGRADE_METHOD,
    RawTransaction,
    Transaction,
    address_of,
    contract_address,
    deploy_args,
)
from repro.core import t_protocol
from repro.core.receipts import Receipt
from repro.crypto.ecc import Point
from repro.crypto.hkdf import hkdf
from repro.crypto.keys import KeyPair
from repro.lang.compiler import ContractArtifact


@dataclass
class Client:
    """One transacting identity."""

    keypair: KeyPair
    user_root_key: bytes
    nonce: int = 0
    _tx_keys: dict[bytes, bytes] = field(default_factory=dict)

    @classmethod
    def from_seed(cls, seed: bytes) -> "Client":
        return cls(
            keypair=KeyPair.from_seed(seed),
            user_root_key=hkdf(seed, info=b"user-root-key"),
        )

    @property
    def address(self) -> bytes:
        return address_of(self.keypair.public_bytes())

    def next_nonce(self) -> int:
        self.nonce += 1
        return self.nonce

    # -- raw transactions -----------------------------------------------------

    def call_raw(self, contract: bytes, method: str, args: bytes) -> RawTransaction:
        raw = RawTransaction(
            sender=self.address,
            contract=contract,
            method=method,
            args=args,
            nonce=self.next_nonce(),
        )
        return raw.signed_by(self.keypair)

    def deploy_raw(
        self, artifact: ContractArtifact, schema_source: str = "",
        source: str = "",
    ) -> tuple[RawTransaction, bytes]:
        """Signed deploy transaction + the address it will create.

        Pass ``source`` to ship the CWScript source alongside the
        artifact so deploy admission can run the taint analysis.
        """
        raw = RawTransaction(
            sender=self.address,
            contract=b"\x00" * 20,
            method=DEPLOY_METHOD,
            args=deploy_args(artifact.encode(), artifact.target,
                             schema_source, source),
            nonce=self.next_nonce(),
        ).signed_by(self.keypair)
        return raw, contract_address(self.address, raw.nonce)

    def upgrade_raw(
        self, contract: bytes, artifact: ContractArtifact,
        schema_source: str = "", source: str = "",
    ) -> RawTransaction:
        """Signed upgrade transaction (owner-only at execution time)."""
        return RawTransaction(
            sender=self.address,
            contract=contract,
            method=UPGRADE_METHOD,
            args=deploy_args(artifact.encode(), artifact.target,
                             schema_source, source),
            nonce=self.next_nonce(),
        ).signed_by(self.keypair)

    # -- wrapping -----------------------------------------------------------------

    def seal(self, pk_tx: Point, raw: RawTransaction) -> Transaction:
        """Confidential wrapper; remembers k_tx for opening receipts."""
        tx = t_protocol.seal_transaction(pk_tx, raw, self.user_root_key)
        self._tx_keys[raw.tx_hash] = t_protocol.derive_tx_key(
            self.user_root_key, raw.tx_hash
        )
        return tx

    @staticmethod
    def public(raw: RawTransaction) -> Transaction:
        return Transaction.public(raw)

    def confidential_call(
        self, pk_tx: Point, contract: bytes, method: str, args: bytes
    ) -> Transaction:
        return self.seal(pk_tx, self.call_raw(contract, method, args))

    def confidential_deploy(
        self, pk_tx: Point, artifact: ContractArtifact,
        schema_source: str = "", source: str = "",
    ) -> tuple[Transaction, bytes]:
        raw, address = self.deploy_raw(artifact, schema_source, source)
        return self.seal(pk_tx, raw), address

    # -- receipts -------------------------------------------------------------------

    def tx_key_for(self, raw_tx_hash: bytes) -> bytes:
        return t_protocol.derive_tx_key(self.user_root_key, raw_tx_hash)

    def open_receipt(self, raw_tx_hash: bytes, sealed: bytes) -> Receipt:
        k_tx = self._tx_keys.get(raw_tx_hash) or self.tx_key_for(raw_tx_hash)
        return Receipt.decode(t_protocol.open_receipt(k_tx, sealed))
