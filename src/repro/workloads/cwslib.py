r"""Shared CWScript building blocks for the evaluation workloads.

The JSON helpers are a real in-VM tokenizer — the point of §6.1/§6.4:
"parsing JSON based on interpreter execution will introduce huge amount
of byte code instruction".  The grammar accepted matches what the
generators produce: one flat object, double-quoted keys, string or
unsigned-integer values, no escapes, no whitespace.
"""

STR_LIB = """
fn _str_eq(ap, al, bp, bl) -> i64 {
    if (al != bl) { return 0; }
    let i = 0;
    while (i < al) {
        if (load8(ap + i) != load8(bp + i)) { return 0; }
        i = i + 1;
    }
    return 1;
}
fn _copy_bytes(d, s, n) -> i64 {
    let i = 0;
    while (i < n) {
        store8(d + i, load8(s + i));
        i = i + 1;
    }
    return n;
}
fn _u64_to_dec(dst, v) -> i64 {
    // Render v as decimal ASCII at dst; returns the length.
    // Valid for 0 <= v < 2^63 (CWScript comparisons are signed).
    if (v == 0) {
        store8(dst, '0');
        return 1;
    }
    let tmp = alloc(20);
    let n = 0;
    while (v > 0) {
        store8(tmp + n, '0' + v % 10);
        v = v / 10;
        n = n + 1;
    }
    let i = 0;
    while (i < n) {
        store8(dst + i, load8(tmp + n - 1 - i));
        i = i + 1;
    }
    return n;
}
fn _dec_to_u64(p, n) -> i64 {
    // Parse n ASCII digits at p (unchecked beyond the digit range).
    let v = 0;
    let i = 0;
    while (i < n) {
        let c = load8(p + i);
        if (c < '0' || c > '9') { return v; }
        v = v * 10 + (c - '0');
        i = i + 1;
    }
    return v;
}
"""

JSON_LIB = """
fn _json_count(buf, len) -> i64 {
    let i = 0;
    let count = 0;
    let instr = 0;
    while (i < len) {
        let c = load8(buf + i);
        if (instr == 1) {
            if (c == '"') { instr = 0; }
        } else {
            if (c == '"') { instr = 1; }
            if (c == ':') { count = count + 1; }
        }
        i = i + 1;
    }
    return count;
}
fn _json_find(buf, len, kptr, klen) -> i64 {
    let i = 0;
    while (i < len) {
        let c = load8(buf + i);
        if (c == '"') {
            let s = i + 1;
            let e = s;
            while (load8(buf + e) != '"') { e = e + 1; }
            if (load8(buf + e + 1) == ':') {
                if (_str_eq(buf + s, e - s, kptr, klen)) {
                    return buf + e + 2;
                }
                i = e + 1;
            } else {
                i = e;
            }
        }
        i = i + 1;
    }
    return 0;
}
fn _json_int(p) -> i64 {
    let v = 0;
    let c = load8(p);
    while (c >= '0' && c <= '9') {
        v = v * 10 + (c - '0');
        p = p + 1;
        c = load8(p);
    }
    return v;
}
fn _json_str_len(p) -> i64 {
    let e = p + 1;
    while (load8(e) != '"') { e = e + 1; }
    return e - p - 1;
}
"""


def make_json_object(pairs: list[tuple[str, object]]) -> bytes:
    """Serialize pairs in the exact dialect the in-VM parser accepts."""
    parts = []
    for key, value in pairs:
        if isinstance(value, int):
            parts.append(f'"{key}":{value}')
        else:
            parts.append(f'"{key}":"{value}"')
    return ("{" + ",".join(parts) + "}").encode()
