"""Mixed serving traffic: SCF-AR transfers, ABS ingestion, coldchain IoT.

The serving load generator needs a client-side factory for the paper's
three production workloads, weighted the way a consortium front door
would see them: a trickle of heavyweight SCF-AR receivable transfers, a
steady feed of ~1 KB ABS asset records, and a firehose of small
coldchain sensor readings.

Every business transaction is confidential (sealed under ``pk_tx``), and
the ABS and coldchain streams carry **canary bytes** in their
confidential arguments — the ABS debtor name and the coldchain sensor
id, both of which land in sealed *state values*.  The canaries give the
soak tests their teeth: a canary byte appearing in any gateway response
body or in replicated storage is a confidentiality violation,
mechanically detectable with the PR 3 byte-scan.

The SCF-AR stream deliberately carries no canary: its three input ids
all flow into storage *keys* (``balance<id>``, ``cert.st<cert>``, ...),
and state keys are plaintext by design — only values are sealed at
rest.  Planting a canary there would flag the contract's own key
layout, not a gateway leak.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ccle import encode as ccle_encode
from repro.chain.transaction import Transaction
from repro.crypto.ecc import Point
from repro.errors import ReproError
from repro.lang import compile_source
from repro.workloads.abs import (
    ABS_SCHEMA,
    ABS_SCHEMA_SOURCE,
    flatbuffers_contract_source,
    make_asset,
)
from repro.workloads.clients import Client
from repro.workloads.coldchain import (
    COLDCHAIN_CONTRACT,
    COLDCHAIN_SCHEMA_SOURCE,
    encode_reading,
    encode_register,
)
from repro.workloads.scf import ScfSuite, make_transfer_input, setup_plan

# Default traffic fractions, heaviest-per-tx rarest (SCF-AR is 31
# contract calls per transfer; a coldchain record is one cheap call).
DEFAULT_WEIGHTS = {"scf": 0.10, "abs": 0.30, "coldchain": 0.60}

# Canary material planted in confidential arguments.  The 8-byte tag
# fits the fixed-width coldchain sensor field; the string rides in the
# ABS debtor column.  Both are stored in sealed state *values* (never
# keys — see the module docstring).
CANARY_TAG = b"CNRY#TAG"
CANARY_DEBTOR = "debtor-CANARY-9f3a1c"

NUM_SHIPMENTS = 16


@dataclass
class MixRequest:
    """One business submission: which workload, and the sealed tx."""

    workload: str
    tx: Transaction


@dataclass
class TrafficMix:
    """Deterministic factory for mixed serving traffic.

    Seeded identically, two instances produce byte-identical transaction
    streams — nonces, ids, and workload choices all come from the one
    ``random.Random``.
    """

    pk_tx: Point
    seed: int = 0
    weights: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_WEIGHTS)
    )
    rng: random.Random = field(init=False)
    addresses: dict[str, bytes] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)
        unknown = set(self.weights) - {"scf", "abs", "coldchain"}
        if unknown:
            raise ReproError(f"unknown mix workloads: {sorted(unknown)}")
        self._names = sorted(name for name, w in self.weights.items() if w > 0)
        self._weights = [self.weights[name] for name in self._names]
        if not self._names:
            raise ReproError("the traffic mix needs at least one workload")
        # One signing identity per workload family keeps nonce streams
        # independent of the interleaving the scheduler picks.
        self._clients = {
            name: Client.from_seed(f"mix-client-{name}-{self.seed}".encode())
            for name in ("deploy", "scf", "abs", "coldchain")
        }
        self._counters = dict.fromkeys(self._names, 0)

    @property
    def canary_needles(self) -> list[bytes]:
        return [CANARY_TAG, CANARY_DEBTOR.encode()]

    # -- setup traffic -----------------------------------------------------

    def deploy_transactions(self) -> list[MixRequest]:
        """Sealed deploys for every contract the mix calls.

        Returns the deploy stream; :attr:`addresses` is populated as a
        side effect (client-computed — a confidential deploy's sender
        and nonce never leave the envelope, so the *client* derives the
        address, not the gateway).
        """
        deployer = self._clients["deploy"]
        requests: list[MixRequest] = []
        suite = ScfSuite.compile()
        for name in sorted(suite.artifacts):
            tx, address = deployer.confidential_deploy(
                self.pk_tx, suite.artifacts[name]
            )
            self.addresses[f"scf:{name}"] = address
            requests.append(MixRequest("deploy", tx))
        abs_artifact = compile_source(flatbuffers_contract_source(), "wasm")
        tx, address = deployer.confidential_deploy(
            self.pk_tx, abs_artifact, schema_source=ABS_SCHEMA_SOURCE
        )
        self.addresses["abs"] = address
        requests.append(MixRequest("deploy", tx))
        cold_artifact = compile_source(COLDCHAIN_CONTRACT, "wasm")
        tx, address = deployer.confidential_deploy(
            self.pk_tx, cold_artifact, schema_source=COLDCHAIN_SCHEMA_SOURCE
        )
        self.addresses["coldchain"] = address
        requests.append(MixRequest("deploy", tx))
        return requests

    def setup_transactions(self) -> list[MixRequest]:
        """Post-deploy wiring: SCF routing plan + shipment registration."""
        if not self.addresses:
            raise ReproError("deploy_transactions must run first")
        deployer = self._clients["deploy"]
        scf_addresses = {
            name.split(":", 1)[1]: address
            for name, address in self.addresses.items()
            if name.startswith("scf:")
        }
        requests = [
            MixRequest("setup", deployer.confidential_call(
                self.pk_tx, scf_addresses[contract], method, args
            ))
            for contract, method, args in setup_plan(scf_addresses)
        ]
        for i in range(NUM_SHIPMENTS):
            args = encode_register(self._shipment_id(i), -100, 100)
            requests.append(MixRequest("setup", deployer.confidential_call(
                self.pk_tx, self.addresses["coldchain"], "register", args
            )))
        return requests

    @staticmethod
    def _shipment_id(i: int) -> bytes:
        return f"SHIP{i:04d}".encode()

    # -- steady-state traffic ----------------------------------------------

    def next_request(self) -> MixRequest:
        """One business transaction, workload drawn from the weights."""
        name = self.rng.choices(self._names, weights=self._weights, k=1)[0]
        index = self._counters[name]
        self._counters[name] = index + 1
        builder = getattr(self, f"_make_{name}")
        return MixRequest(name, builder(index))

    def _make_scf(self, index: int) -> Transaction:
        args = make_transfer_input(
            from_id=f"ACCT{index % 97:04d}".encode(),
            to_id=f"ACCT{(index + 1) % 97:04d}".encode(),
            cert_id=f"CERT{index % 31:04d}".encode(),
        )
        return self._clients["scf"].confidential_call(
            self.pk_tx, self.addresses["scf:gateway"], "transfer", args
        )

    def _make_abs(self, index: int) -> Transaction:
        asset = make_asset(index, memo_bytes=200)
        asset["debtor"] = CANARY_DEBTOR
        return self._clients["abs"].confidential_call(
            self.pk_tx, self.addresses["abs"], "transfer_asset",
            ccle_encode(ABS_SCHEMA, asset),
        )

    def _make_coldchain(self, index: int) -> Transaction:
        sid = self._shipment_id(index % NUM_SHIPMENTS)
        temp = (index * 7) % 150 - 50  # wanders across the [-10, 10] range
        args = encode_reading(sid, temp, CANARY_TAG)
        return self._clients["coldchain"].confidential_call(
            self.pk_tx, self.addresses["coldchain"], "record", args
        )
