'''Cold-chain logistics / IoT provenance workload.

One of CONFIDE's named production applications ("warehouse receipt
financing with IoT provenance", "cold-chain logistics").  Sensors post
temperature readings for a shipment; the contract keeps the full reading
history confidential (commercial carriers do not publish their cold-chain
telemetry) while exposing a public pass/fail compliance flag per shipment
that any consignee or auditor can read.

The contract demonstrates the CCLe pattern end to end:

- ``register``  — create a shipment with its temperature range;
- ``record``    — append a sensor reading; breaching the range flips the
  public compliance flag permanently;
- ``status``    — public read of (reading count, compliant flag);
- ``history``   — full reading history (only meaningful inside the
  Confidential-Engine or for key holders).
'''

from __future__ import annotations

from repro.workloads.cwslib import STR_LIB
from repro.workloads.synthetic import Workload

COLDCHAIN_SCHEMA_SOURCE = """
attribute "map";
attribute "confidential";

table Shipment {
  shipment_id: string;
  min_temp: long;
  max_temp: long;
  compliant: bool;
  readings: [Reading](confidential);
}
table Reading {
  seq: uint;
  temp_decicelsius: long;
  sensor: string;
}
root_type Shipment;
"""

# Storage layout (per shipment id SID, 8 bytes):
#   "cfg."  + SID -> min(8) | max(8)         (confidential state)
#   "cnt."  + SID -> reading count (8)
#   "ok."   + SID -> compliance flag (8)
#   "rd.N." + SID -> reading N: temp(8) | sensor(8)
#
# The analyzer directives below declare the temperature range and the
# reading history confidential and `status` a public query; the breach
# branch in `record` is the contract's one audited declassification
# (the public pass/fail flag is the product's whole point).
COLDCHAIN_CONTRACT = STR_LIB + """
//@confidential-keys: "cfg.", "rd"
//@public-queries: status
fn register() {
    // input: shipment id (8) | min temp (8, signed) | max temp (8, signed)
    let n = input_size();
    if (n != 24) { abort("bad register input", 18); }
    let buf = alloc(24);
    input_read(buf, 0, 24);
    let key = alloc(12);
    _copy_bytes(key, "cfg.", 4);
    _copy_bytes(key + 4, buf, 8);
    let probe = alloc(16);
    if (storage_get(key, 12, probe, 16) >= 0) { abort("duplicate shipment", 18); }
    storage_set(key, 12, buf + 8, 16);
    let zero = alloc(8);
    store64(zero, 0);
    _copy_bytes(key, "cnt.", 4);
    storage_set(key, 12, zero, 8);
    let one = alloc(8);
    store64(one, 1);
    _copy_bytes(key, "ok..", 4);
    storage_set(key, 12, one, 8);
    output(buf, 8);
}

fn record() {
    // input: shipment id (8) | temp deci-celsius (8, signed) | sensor id (8)
    let n = input_size();
    if (n != 24) { abort("bad reading input", 17); }
    let buf = alloc(24);
    input_read(buf, 0, 24);
    // load64 yields the two's-complement bit pattern; signed
    // comparisons below interpret it directly.
    let temp = load64(buf + 8);
    let key = alloc(13);
    _copy_bytes(key, "cfg.", 4);
    _copy_bytes(key + 4, buf, 8);
    let cfg = alloc(16);
    if (storage_get(key, 12, cfg, 16) != 16) { abort("unknown shipment", 16); }
    let lo = load64(cfg);
    let hi = load64(cfg + 8);
    // bump count
    _copy_bytes(key, "cnt.", 4);
    let cnt = alloc(8);
    storage_get(key, 12, cnt, 8);
    let seq = load64(cnt);
    store64(cnt, seq + 1);
    storage_set(key, 12, cnt, 8);
    // append the reading under its sequence number
    let rkey = alloc(13);
    _copy_bytes(rkey, "rd", 2);
    store8(rkey + 2, '0' + seq % 10);
    store8(rkey + 3, '0' + seq / 10 % 10);
    store8(rkey + 4, '.');
    _copy_bytes(rkey + 5, buf, 8);
    storage_set(rkey, 13, buf + 8, 16);
    // breach handling: the public flag only ever goes 1 -> 0.  The
    // declassify() is the audited exception: revealing *that* the range
    // was breached (never the reading or the range itself) is the
    // contract's purpose.
    if (declassify(temp < lo || temp > hi)) {
        let zero = alloc(8);
        store64(zero, 0);
        _copy_bytes(key, "ok..", 4);
        storage_set(key, 12, zero, 8);
        log("breach", 6);
    }
    let out = alloc(8);
    store64(out, seq + 1);
    output(out, 8);
}

fn status() {
    // input: shipment id (8); output: count (8) | compliant (8)
    let sid = alloc(8);
    input_read(sid, 0, 8);
    let key = alloc(12);
    _copy_bytes(key, "cnt.", 4);
    _copy_bytes(key + 4, sid, 8);
    let out = alloc(16);
    if (storage_get(key, 12, out, 8) != 8) { abort("unknown shipment", 16); }
    _copy_bytes(key, "ok..", 4);
    storage_get(key, 12, out + 8, 8);
    output(out, 16);
}

fn history() {
    // input: shipment id (8); output: count (8) | count x [temp(8)|sensor(8)]
    let sid = alloc(8);
    input_read(sid, 0, 8);
    let key = alloc(12);
    _copy_bytes(key, "cnt.", 4);
    _copy_bytes(key + 4, sid, 8);
    let cnt = alloc(8);
    if (storage_get(key, 12, cnt, 8) != 8) { abort("unknown shipment", 16); }
    let count = load64(cnt);
    let out = alloc(8 + count * 16);
    store64(out, count);
    let rkey = alloc(13);
    let i = 0;
    while (i < count) {
        _copy_bytes(rkey, "rd", 2);
        store8(rkey + 2, '0' + i % 10);
        store8(rkey + 3, '0' + i / 10 % 10);
        store8(rkey + 4, '.');
        _copy_bytes(rkey + 5, sid, 8);
        storage_get(rkey, 13, out + 8 + i * 16, 16);
        i = i + 1;
    }
    output(out, 8 + count * 16);
}
"""


def encode_register(shipment_id: bytes, min_deci: int, max_deci: int) -> bytes:
    """Argument blob for `register` (temps in deci-degrees Celsius)."""
    if len(shipment_id) != 8:
        raise ValueError("shipment id must be 8 bytes")
    mask = (1 << 64) - 1
    return (
        shipment_id
        + (min_deci & mask).to_bytes(8, "big")
        + (max_deci & mask).to_bytes(8, "big")
    )


def encode_reading(shipment_id: bytes, temp_deci: int, sensor: bytes) -> bytes:
    """Argument blob for `record`."""
    if len(shipment_id) != 8:
        raise ValueError("shipment id must be 8 bytes")
    return (
        shipment_id
        + (temp_deci & ((1 << 64) - 1)).to_bytes(8, "big")
        + sensor[:8].ljust(8, b"\x00")
    )


def decode_status(output: bytes) -> tuple[int, bool]:
    """(reading count, compliant) from the `status` output."""
    return (
        int.from_bytes(output[:8], "big"),
        bool(int.from_bytes(output[8:16], "big")),
    )


def decode_history(output: bytes) -> list[tuple[int, bytes]]:
    """[(temp_deci, sensor)] from the `history` output."""
    count = int.from_bytes(output[:8], "big")
    readings = []
    for i in range(count):
        offset = 8 + i * 16
        raw_temp = int.from_bytes(output[offset : offset + 8], "big")
        if raw_temp >= 1 << 63:
            raw_temp -= 1 << 64
        sensor = output[offset + 8 : offset + 16].rstrip(b"\x00")
        readings.append((raw_temp, sensor))
    return readings


def coldchain_workload(num_shipments: int = 4) -> Workload:
    """A reading-heavy workload cycling over `num_shipments` shipments."""
    def make_input(index: int) -> bytes:
        sid = f"SHIP{index % num_shipments:04d}".encode()
        temp = 20 + (index * 7) % 40  # 2.0C..5.9C in deci-degrees
        return encode_reading(sid, temp, f"S{index % 3}".encode())

    return Workload(
        name="coldchain-record",
        source=COLDCHAIN_CONTRACT,
        method="record",
        make_input=make_input,
        description="append IoT temperature readings to shipments",
    )
