"""The four Synthetic workloads of §6.1 (Figure 10).

1. **String concatenation** — a JSON string of 35 key-values plus a
   10-byte ID, joined piecewise into one buffer (per-byte copy loops in
   the VM).
2. **E-notes depository** — a 4 KB electronic-note payload mapped to its
   10-byte ID in contract storage (I/O-heavy; dominated by D-Protocol
   crypto + boundary crossings under TEE).
3. **Crypto hash** — SHA-256 and Keccak, 100 rounds each, chained.
4. **JSON parsing** — tokenize a ~60-key-value JSON string in the VM and
   extract request fields.

Each workload is a :class:`Workload`: contract source (compilable to
either VM), the method to invoke, and a deterministic per-transaction
input generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.workloads.cwslib import JSON_LIB, STR_LIB, make_json_object


@dataclass(frozen=True)
class Workload:
    """A benchmarkable contract workload."""

    name: str
    source: str
    method: str
    make_input: Callable[[int], bytes]
    description: str = ""
    schema_source: str = ""


# ---------------------------------------------------------------------------
# 1. String concatenation
# ---------------------------------------------------------------------------

_CONCAT_SOURCE = STR_LIB + """
fn concat() {
    let n = input_size();
    let inbuf = alloc(n);
    input_read(inbuf, 0, n);
    let count = load32(inbuf);
    let out = alloc(n + count + 1);
    let src = inbuf + 4;
    let w = 0;
    let k = 0;
    while (k < count) {
        let l = load32(src);
        _copy_bytes(out + w, src + 4, l);
        w = w + l;
        store8(out + w, ',');
        w = w + 1;
        src = src + 4 + l;
        k = k + 1;
    }
    output(out, w);
}
"""


def _pieces_blob(pieces: list[bytes]) -> bytes:
    out = bytearray(len(pieces).to_bytes(4, "big"))
    for piece in pieces:
        out += len(piece).to_bytes(4, "big") + piece
    return bytes(out)


def make_concat_input(index: int, num_kv: int = 35) -> bytes:
    pieces = [
        f'"key_{index}_{k:02d}":"value-{(index * 31 + k) % 997:04d}"'.encode()
        for k in range(num_kv)
    ]
    pieces.append(f"ID{index:08d}".encode()[:10])
    return _pieces_blob(pieces)


# ---------------------------------------------------------------------------
# 2. E-notes depository (4 KB)
# ---------------------------------------------------------------------------

_ENOTES_SOURCE = """
fn deposit() {
    let n = input_size();
    let buf = alloc(n);
    input_read(buf, 0, n);
    if (n < 11) { abort("short e-note", 12); }
    storage_set(buf, 10, buf + 10, n - 10);
    let out = alloc(8);
    store64(out, n - 10);
    output(out, 8);
}
"""


def make_enotes_input(index: int, payload_bytes: int = 4096) -> bytes:
    note_id = f"EN{index:08d}".encode()[:10]
    body = bytes((index * 7 + i) % 251 for i in range(payload_bytes))
    return note_id + body


# ---------------------------------------------------------------------------
# 3. Crypto hash (100x SHA-256 + 100x Keccak)
# ---------------------------------------------------------------------------

_HASH_SOURCE = STR_LIB + """
fn hash_chain() {
    let n = input_size();
    let buf = alloc(n + 32);
    input_read(buf, 0, n);
    let digest = alloc(32);
    let i = 0;
    while (i < 100) {
        sha256(buf, n, digest);
        _copy_bytes(buf, digest, 32);
        i = i + 1;
    }
    i = 0;
    while (i < 100) {
        keccak256(buf, n, digest);
        _copy_bytes(buf, digest, 32);
        i = i + 1;
    }
    output(digest, 32);
}
"""


def make_hash_input(index: int, payload_bytes: int = 64) -> bytes:
    return bytes((index + i) % 256 for i in range(payload_bytes))


# ---------------------------------------------------------------------------
# 4. JSON parsing (~60 key-values)
# ---------------------------------------------------------------------------

_JSON_SOURCE = STR_LIB + JSON_LIB + """
fn parse() {
    let n = input_size();
    let buf = alloc(n);
    input_read(buf, 0, n);
    let count = _json_count(buf, n);
    let amount = 0;
    let v = _json_find(buf, n, "loan_amt", 8);
    if (v != 0) { amount = _json_int(v); }
    let bank = 0;
    let b = _json_find(buf, n, "bank", 4);
    if (b != 0) { bank = _json_str_len(b); }
    let out = alloc(24);
    store64(out, count);
    store64(out + 8, amount);
    store64(out + 16, bank);
    output(out, 24);
}
"""


def make_json_input(index: int, num_kv: int = 60) -> bytes:
    pairs: list[tuple[str, object]] = [
        ("loan_amt", 10_000 + index),
        ("bank", f"bank-{index % 7}"),
        ("repay_mode", index % 3),
    ]
    for k in range(num_kv - len(pairs)):
        if k % 2:
            pairs.append((f"attr_{k:02d}", f"text-{(index + k) % 89:03d}"))
        else:
            pairs.append((f"attr_{k:02d}", (index * 13 + k) % 100_000))
    return make_json_object(pairs)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def synthetic_workloads(
    concat_kv: int = 35,
    enote_bytes: int = 4096,
    hash_bytes: int = 64,
    json_kv: int = 60,
) -> dict[str, Workload]:
    """The four workloads, with paper-default sizes (tunable for CI)."""
    return {
        "string-concat": Workload(
            name="string-concat",
            source=_CONCAT_SOURCE,
            method="concat",
            make_input=lambda i: make_concat_input(i, concat_kv),
            description=f"join {concat_kv} JSON key-values + 10-byte ID",
        ),
        "enotes-depository": Workload(
            name="enotes-depository",
            source=_ENOTES_SOURCE,
            method="deposit",
            make_input=lambda i: make_enotes_input(i, enote_bytes),
            description=f"map a {enote_bytes}-byte e-note to its ID",
        ),
        "crypto-hash": Workload(
            name="crypto-hash",
            source=_HASH_SOURCE,
            method="hash_chain",
            make_input=lambda i: make_hash_input(i, hash_bytes),
            description="100x SHA-256 + 100x Keccak, chained",
        ),
        "json-parsing": Workload(
            name="json-parsing",
            source=_JSON_SOURCE,
            method="parse",
            make_input=lambda i: make_json_input(i, json_kv),
            description=f"tokenize a {json_kv}-key JSON request in the VM",
        ),
    }
