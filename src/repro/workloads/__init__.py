"""The paper's evaluation workloads: Synthetic (§6.1), ABS (§6.1/6.2/6.4),
and SCF-AR (§6.3), plus client-side transaction building."""

from repro.workloads.abs import (
    ABS_SCHEMA,
    ABS_SCHEMA_SOURCE,
    abs_workload,
    encode_asset_flatbuffers,
    encode_asset_json,
    make_asset,
)
from repro.workloads.clients import Client
from repro.workloads.coldchain import (
    COLDCHAIN_CONTRACT,
    COLDCHAIN_SCHEMA_SOURCE,
    coldchain_workload,
    decode_history,
    decode_status,
    encode_reading,
    encode_register,
)
from repro.workloads.mix import (
    CANARY_DEBTOR,
    CANARY_TAG,
    DEFAULT_WEIGHTS,
    MixRequest,
    TrafficMix,
)
from repro.workloads.scf import (
    CONTRACT_SOURCES,
    EXPECTED_CONTRACT_CALLS,
    EXPECTED_GET_STORAGE,
    EXPECTED_SET_STORAGE,
    ScfSuite,
    make_transfer_input,
    setup_plan,
)
from repro.workloads.synthetic import Workload, synthetic_workloads


def all_contract_sources() -> dict[str, tuple[str, str]]:
    """Every shipped contract, as ``name -> (source, schema_source)``.

    The analysis test suite (and CI) sweeps this registry through the
    deploy-time analyzer, so a confidential-to-public flow in any
    bundled workload can never ship unnoticed.
    """
    from repro.workloads.abs import flatbuffers_contract_source, json_contract_source

    registry: dict[str, tuple[str, str]] = {
        "coldchain": (COLDCHAIN_CONTRACT, COLDCHAIN_SCHEMA_SOURCE),
        "abs-flatbuffers": (flatbuffers_contract_source(), ABS_SCHEMA_SOURCE),
        "abs-json": (json_contract_source(), ABS_SCHEMA_SOURCE),
    }
    for name, source in CONTRACT_SOURCES.items():
        registry[f"scf-{name}"] = (source, "")
    for workload in synthetic_workloads().values():
        registry[f"synthetic-{workload.name}"] = (
            workload.source, workload.schema_source
        )
    return registry


__all__ = [
    "ABS_SCHEMA",
    "COLDCHAIN_CONTRACT",
    "COLDCHAIN_SCHEMA_SOURCE",
    "all_contract_sources",
    "coldchain_workload",
    "decode_history",
    "decode_status",
    "encode_reading",
    "encode_register",
    "ABS_SCHEMA_SOURCE",
    "CANARY_DEBTOR",
    "CANARY_TAG",
    "CONTRACT_SOURCES",
    "Client",
    "DEFAULT_WEIGHTS",
    "MixRequest",
    "TrafficMix",
    "EXPECTED_CONTRACT_CALLS",
    "EXPECTED_GET_STORAGE",
    "EXPECTED_SET_STORAGE",
    "ScfSuite",
    "Workload",
    "abs_workload",
    "encode_asset_flatbuffers",
    "encode_asset_json",
    "make_asset",
    "make_transfer_input",
    "setup_plan",
    "synthetic_workloads",
]
