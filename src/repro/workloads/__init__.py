"""The paper's evaluation workloads: Synthetic (§6.1), ABS (§6.1/6.2/6.4),
and SCF-AR (§6.3), plus client-side transaction building."""

from repro.workloads.abs import (
    ABS_SCHEMA,
    ABS_SCHEMA_SOURCE,
    abs_workload,
    encode_asset_flatbuffers,
    encode_asset_json,
    make_asset,
)
from repro.workloads.clients import Client
from repro.workloads.coldchain import (
    COLDCHAIN_CONTRACT,
    coldchain_workload,
    decode_history,
    decode_status,
    encode_reading,
    encode_register,
)
from repro.workloads.scf import (
    CONTRACT_SOURCES,
    EXPECTED_CONTRACT_CALLS,
    EXPECTED_GET_STORAGE,
    EXPECTED_SET_STORAGE,
    ScfSuite,
    make_transfer_input,
    setup_plan,
)
from repro.workloads.synthetic import Workload, synthetic_workloads

__all__ = [
    "ABS_SCHEMA",
    "COLDCHAIN_CONTRACT",
    "coldchain_workload",
    "decode_history",
    "decode_status",
    "encode_reading",
    "encode_register",
    "ABS_SCHEMA_SOURCE",
    "CONTRACT_SOURCES",
    "Client",
    "EXPECTED_CONTRACT_CALLS",
    "EXPECTED_GET_STORAGE",
    "EXPECTED_SET_STORAGE",
    "ScfSuite",
    "Workload",
    "abs_workload",
    "encode_asset_flatbuffers",
    "encode_asset_json",
    "make_asset",
    "make_transfer_input",
    "setup_plan",
    "synthetic_workloads",
]
