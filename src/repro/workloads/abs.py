'''The ABS (Asset-Backed Securitization) workload (§6.1, §6.2, §6.4).

The "Transfer Asset" operation has four steps (Figure 9):
authentication, asset parsing, asset validation, asset storage.  The
asset carries about 10 attributes and the stored payload is ~1 KB.

Two contract variants exist for the *parsing* step, which is exactly the
paper's OPT2 ablation (Figure 12):

- ``json``        — the request is a JSON string parsed inside the VM;
- ``flatbuffers`` — the request is CCLe-encoded and fields are read by
  the generated offset accessors.

Both variants validate with the three operator kinds named in the paper
(inclusion, numeric comparison, string comparison) and store the full
asset blob plus a per-institution aggregate.  The aggregate is the
workload's write conflict: transfers within one institution serialize,
across institutions they parallelize — the property behind Figure 11's
"4-way ≈ 2x, 6-way ≈ 4-way" shape with two institutions.
'''

from __future__ import annotations

from repro.ccle import encode as ccle_encode
from repro.ccle import generate_accessors, parse_schema
from repro.workloads.cwslib import JSON_LIB, STR_LIB, make_json_object
from repro.workloads.synthetic import Workload

ABS_SCHEMA_SOURCE = """
attribute "map";
attribute "confidential";

table AbsAsset {
  asset_id: string;
  institution: string;
  repay_mode: ubyte;
  asset_class: string;
  principal: ulong;
  interest_rate: uint;
  term_months: ushort;
  debtor: string(confidential);
  credit_score: uint(confidential);
  memo: string;
}
root_type AbsAsset;
"""

ABS_SCHEMA = parse_schema(ABS_SCHEMA_SOURCE)

INSTITUTIONS = ("INST_A", "INST_B")
ASSET_CLASSES = ("RMBS", "AUTO", "CARD")

# Validation + storage logic shared by both variants.  Expects locals:
# buf/n (input), id_p/id_l, inst_p/inst_l, cls_p/cls_l, mode, principal.
_VALIDATE_AND_STORE = """
    // amortization: accrue interest over the asset's term (rate is in
    // basis points per annum; 120000 = 100% x 12 months in bp)
    let balance_due = principal;
    let interest_total = 0;
    let m = 0;
    while (m < term) {
        let interest = balance_due * rate / 120000;
        interest_total = interest_total + interest;
        balance_due = balance_due - principal / term;
        m = m + 1;
    }
    if (interest_total < 0) { abort("accrual underflow", 17); }
    if (mode != 1 && mode != 2 && mode != 3) { abort("bad repay mode", 14); }
    if (principal < 1000 || principal > 100000000) { abort("bad principal", 13); }
    let inst_ok = _str_eq(inst_p, inst_l, "INST_A", 6)
        || _str_eq(inst_p, inst_l, "INST_B", 6);
    if (!inst_ok) { abort("bad institution", 15); }
    let cls_ok = _str_eq(cls_p, cls_l, "RMBS", 4)
        || _str_eq(cls_p, cls_l, "AUTO", 4)
        || _str_eq(cls_p, cls_l, "CARD", 4);
    if (!cls_ok) { abort("bad asset class", 15); }
    storage_set(id_p, id_l, buf, n);
    let agg_key = alloc(4 + inst_l);
    _copy_bytes(agg_key, "agg.", 4);
    _copy_bytes(agg_key + 4, inst_p, inst_l);
    let cell = alloc(8);
    let have = storage_get(agg_key, 4 + inst_l, cell, 8);
    let total = 0;
    if (have == 8) { total = load64(cell); }
    store64(cell, total + principal);
    storage_set(agg_key, 4 + inst_l, cell, 8);
    let out = alloc(8);
    store64(out, principal);
    output(out, 8);
"""

_AUTHENTICATE = """
    let who = alloc(20);
    caller(who);
    let admin = alloc(20);
    let al = storage_get("acl.admin", 9, admin, 20);
    if (al == 20) {
        if (_str_eq(who, 20, admin, 20) == 0) { abort("denied", 6); }
    }
"""

_SETUP = """
fn setup() {
    let n = input_size();
    if (n < 20) { abort("setup needs admin address", 25); }
    let admin = alloc(20);
    input_read(admin, 0, 20);
    storage_set("acl.admin", 9, admin, 20);
}
"""


def flatbuffers_contract_source() -> str:
    """Transfer contract reading the asset through CCLe accessors."""
    accessors = generate_accessors(ABS_SCHEMA)
    return STR_LIB + accessors + _SETUP + f"""
fn transfer_asset() {{
{_AUTHENTICATE}
    let n = input_size();
    let buf = alloc(n);
    input_read(buf, 0, n);
    let id_p = _AbsAsset_asset_id_ptr(buf);
    let id_l = _AbsAsset_asset_id_len(buf);
    let inst_p = _AbsAsset_institution_ptr(buf);
    let inst_l = _AbsAsset_institution_len(buf);
    let cls_p = _AbsAsset_asset_class_ptr(buf);
    let cls_l = _AbsAsset_asset_class_len(buf);
    let mode = _AbsAsset_repay_mode(buf);
    let principal = _AbsAsset_principal(buf);
    let rate = _AbsAsset_interest_rate(buf);
    let term = _AbsAsset_term_months(buf);
    if (rate == 0 || term == 0) {{ abort("bad terms", 9); }}
    if (id_l == 0) {{ abort("missing id", 10); }}
{_VALIDATE_AND_STORE}
}}
"""


def json_contract_source() -> str:
    """Transfer contract parsing the asset from JSON inside the VM."""
    return STR_LIB + JSON_LIB + _SETUP + f"""
fn transfer_asset() {{
{_AUTHENTICATE}
    let n = input_size();
    let buf = alloc(n);
    input_read(buf, 0, n);
    // structural validation: tokenize the whole request (the expensive
    // full-document pass the paper attributes ~450K interpreted
    // instructions to in production, §6.4 OPT2)
    let nkeys = _json_count(buf, n);
    if (nkeys < 10) {{ abort("malformed request", 17); }}
    let idv = _json_find(buf, n, "asset_id", 8);
    if (idv == 0) {{ abort("missing id", 10); }}
    let id_p = idv + 1;
    let id_l = _json_str_len(idv);
    let instv = _json_find(buf, n, "institution", 11);
    if (instv == 0) {{ abort("missing institution", 19); }}
    let inst_p = instv + 1;
    let inst_l = _json_str_len(instv);
    let clsv = _json_find(buf, n, "asset_class", 11);
    if (clsv == 0) {{ abort("missing class", 13); }}
    let cls_p = clsv + 1;
    let cls_l = _json_str_len(clsv);
    let mode = _json_int(_json_find(buf, n, "repay_mode", 10));
    let principal = _json_int(_json_find(buf, n, "principal", 9));
    let rate = _json_int(_json_find(buf, n, "interest_rate", 13));
    let term = _json_int(_json_find(buf, n, "term_months", 11));
    if (rate == 0 || term == 0) {{ abort("bad terms", 9); }}
{_VALIDATE_AND_STORE}
}}
"""


def make_asset(index: int, memo_bytes: int = 700) -> dict:
    """Deterministic ~1 KB asset record with ~10 attributes."""
    # The memo (contract terms text) sits early in the record, as the
    # upstream origination system emits it; a JSON consumer has to scan
    # across it for every trailing field.
    return {
        "asset_id": f"AR-{index:010d}",
        "memo": "m" * memo_bytes,
        "institution": INSTITUTIONS[index % len(INSTITUTIONS)],
        "repay_mode": 1 + index % 3,
        "asset_class": ASSET_CLASSES[index % len(ASSET_CLASSES)],
        "principal": 10_000 + (index * 137) % 1_000_000,
        "interest_rate": 300 + index % 200,
        "term_months": 12 + index % 48,
        "debtor": f"debtor-{index % 1000:04d}",
        "credit_score": 500 + index % 350,
    }


def encode_asset_flatbuffers(index: int, memo_bytes: int = 700) -> bytes:
    return ccle_encode(ABS_SCHEMA, make_asset(index, memo_bytes))


def encode_asset_json(index: int, memo_bytes: int = 700) -> bytes:
    asset = make_asset(index, memo_bytes)
    return make_json_object(list(asset.items()))


def abs_workload(variant: str = "flatbuffers", memo_bytes: int = 700) -> Workload:
    """The ABS transfer workload in either parsing variant."""
    if variant == "flatbuffers":
        return Workload(
            name="abs-transfer-fb",
            source=flatbuffers_contract_source(),
            method="transfer_asset",
            make_input=lambda i: encode_asset_flatbuffers(i, memo_bytes),
            description="ABS transfer, CCLe/Flatbuffers parsing (OPT2 on)",
            schema_source=ABS_SCHEMA_SOURCE,
        )
    if variant == "json":
        return Workload(
            name="abs-transfer-json",
            source=json_contract_source(),
            method="transfer_asset",
            make_input=lambda i: encode_asset_json(i, memo_bytes),
            description="ABS transfer, in-VM JSON parsing (OPT2 off)",
            schema_source=ABS_SCHEMA_SOURCE,
        )
    raise ValueError(f"unknown ABS variant '{variant}'")
