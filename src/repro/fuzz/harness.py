"""The fuzz loop: corpus scheduling, constraint assist, oracles, repro.

One :func:`run_fuzz` call fuzzes each configured target for a fixed
number of executions (the deterministic budget; an optional wall-clock
cap can end a run early, at the price of replay identity).  All
randomness flows from a single ``random.Random(seed)``, every set
iteration is sorted, and no wall-clock value feeds a decision — so the
same seed and exec budget replay the identical run, byte for byte, on
any host.

The hybrid part (the optik shape): between mutation rounds the harness
looks for **one-sided branch sites** — coverage edges where only one
outcome has ever executed — matches them to the bytecode analyzer's
:class:`~repro.analysis.bytecode_flow.PathConstraint` for that site,
and asks :mod:`repro.fuzz.solver` for calldata taking the other side.
Every solved input that yields a new edge counts as a
``constraint_flip`` — the measured win over pure random mutation.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.analysis.bytecode_flow import analyze_artifact
from repro.fuzz.corpus import CallStep, Corpus, decode_sequence
from repro.fuzz.executor import (FUZZ_GAS_LIMIT, FUZZ_MAX_STEPS,
                                 DifferentialExecutor)
from repro.fuzz.minimize import minimize
from repro.fuzz.mutate import Mutator
from repro.fuzz.oracles import OracleSuite
from repro.fuzz.solver import solve_constraint
from repro.fuzz.targets import load_target
from repro.obs.trace import CoverageMap, get_tracer

ASSIST_EVERY = 32        # mutation execs between constraint-assist rounds
ASSIST_SITES_PER_ROUND = 8
CANARY_PLANT_ONE_IN = 4  # plant fresh canaries in ~1/4 of mutants
FINDING_KINDS = ("divergence", "canary", "resource", "crash")


@dataclass
class FuzzConfig:
    """One fuzzing campaign."""

    targets: tuple = ("greeter",)
    seed: int = 20260807
    max_execs: int = 200            # per target; the deterministic budget
    time_budget_s: float | None = None  # optional secondary wall cap
    corpus_dir: str | None = None
    solver: bool = True
    max_seq_len: int = 4
    max_steps: int = FUZZ_MAX_STEPS
    gas_limit: int = FUZZ_GAS_LIMIT
    minimize_budget: int = 48       # oracle re-runs per finding


@dataclass
class TargetStats:
    """Per-target counters, all deterministic under a fixed budget."""

    execs: int = 0
    minimize_execs: int = 0
    edges_wasm: int = 0
    edges_evm: int = 0
    corpus_entries: int = 0
    solver_attempts: int = 0
    constraint_flips: int = 0
    findings: dict = field(default_factory=lambda: {
        k: 0 for k in FINDING_KINDS})

    def to_dict(self) -> dict:
        return {
            "execs": self.execs,
            "minimize_execs": self.minimize_execs,
            "edges_wasm": self.edges_wasm,
            "edges_evm": self.edges_evm,
            "corpus_entries": self.corpus_entries,
            "solver_attempts": self.solver_attempts,
            "constraint_flips": self.constraint_flips,
            "findings": dict(sorted(self.findings.items())),
        }


@dataclass
class FuzzResult:
    """Campaign outcome: minimized findings + per-target stats."""

    seed: int
    findings: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)   # target name -> TargetStats
    elapsed_s: float = 0.0

    def to_dict(self, include_timing: bool = False) -> dict:
        """Deterministic report (timing excluded unless asked for —
        the CI determinism check compares two of these byte-for-byte).
        """
        payload = {
            "seed": self.seed,
            "findings": [f.to_dict() for f in self.findings],
            "stats": {name: st.to_dict()
                      for name, st in sorted(self.stats.items())},
        }
        if include_timing:
            payload["elapsed_s"] = round(self.elapsed_s, 3)
            total = sum(st.execs for st in self.stats.values())
            payload["execs_per_second"] = round(
                total / self.elapsed_s, 1) if self.elapsed_s else 0.0
        return payload


def _constraint_sites(executor, wasm_constraints, evm_constraints):
    """Map coverage sites to their path constraints, per VM.

    CONFIDE-VM sites are ``(fidx, pc)``; constraint functions are
    export names (or ``func_N`` for helpers), resolved through the
    fused module's export table.  EVM sites are byte offsets, unique
    across the artifact, so the pc alone keys them.
    """
    label_to_fidx = {f"func_{i}": i
                     for i in range(len(executor.wasm_module.functions))}
    label_to_fidx.update(executor.wasm_module.exports)
    wasm_map = {}
    for c in wasm_constraints.constraints:
        fidx = label_to_fidx.get(c.function)
        if fidx is not None:
            wasm_map[(fidx, c.pc)] = c
    evm_map = {c.pc: c for c in evm_constraints.constraints}
    return wasm_map, evm_map


def _one_sided_sites(coverage, context, site_map):
    """Sites (with constraints) where only one branch outcome ran."""
    outcomes: dict = {}
    for ctx, site, outcome in coverage.edges:
        if ctx == context and isinstance(outcome, bool):
            outcomes.setdefault(site, set()).add(outcome)
    onesided = []
    for site in sorted(outcomes, key=repr):
        seen = outcomes[site]
        if len(seen) == 1 and site in site_map:
            onesided.append((site, not next(iter(seen))))
    return onesided


def _method_for(constraint, executor, abi):
    """The exported method whose calldata feeds a constraint site."""
    if constraint.function in executor.methods:
        return constraint.function
    return None


class _TargetLoop:
    """Fuzzing state for one target within a campaign."""

    def __init__(self, target, config: FuzzConfig, rng: random.Random,
                 coverage: CoverageMap):
        self.target = target
        self.config = config
        self.rng = rng
        self.coverage = coverage
        self.executor = DifferentialExecutor(
            target, coverage, max_steps=config.max_steps,
            gas_limit=config.gas_limit)
        wasm_res = analyze_artifact(
            self.executor.wasm_artifact,
            public_outputs=target.receipts_public)
        evm_res = analyze_artifact(
            self.executor.evm_artifact,
            public_outputs=target.receipts_public)
        self.suite = OracleSuite(target, target.abi,
                                 wasm_res.report.resources)
        self.wasm_sites, self.evm_sites = _constraint_sites(
            self.executor, wasm_res.constraints, evm_res.constraints)
        self.mutator = Mutator(rng, target.abi, config.max_seq_len)
        corpus_dir = (None if config.corpus_dir is None
                      else f"{config.corpus_dir}/{target.name}")
        self.corpus = Corpus(corpus_dir)
        self.stats = TargetStats()
        self.findings: list = []
        self._finding_keys: set = set()
        self._assist_tried: set = set()

    # -- execution ----------------------------------------------------------

    def execute(self, sequence, minimizing: bool = False) -> int:
        """Run + judge one sequence; returns newly covered edge count."""
        before = len(self.coverage)
        wasm_run, evm_run = self.executor.run_pair(sequence)
        if minimizing:
            self.stats.minimize_execs += 1
        else:
            self.stats.execs += 1
        found = self.suite.judge(sequence, wasm_run, evm_run)
        new_edges = len(self.coverage) - before
        if new_edges and not minimizing:
            self.corpus.add(sequence)
        if not minimizing:
            for finding in found:
                self._record(finding)
        self._last_findings = found
        return new_edges

    def _reproduce_kind(self, kind):
        def predicate(candidate) -> bool:
            self.execute(candidate, minimizing=True)
            return any(f.kind == kind for f in self._last_findings)
        return predicate

    def _record(self, finding) -> None:
        key = finding.key()
        if key in self._finding_keys:
            return
        self._finding_keys.add(key)
        finding.seed = self.config.seed
        minimized = minimize(finding, self._reproduce_kind(finding.kind),
                             abi=self.target.abi,
                             budget=self.config.minimize_budget)
        finding.sequence = minimized
        self.stats.findings[finding.kind] = (
            self.stats.findings.get(finding.kind, 0) + 1)
        self.findings.append(finding)

    # -- canary planting ----------------------------------------------------

    def _plant_canaries(self, sequence):
        """High-entropy bytes in one step's secret fields."""
        seq = list(sequence)
        candidates = [
            i for i, step in enumerate(seq)
            if (spec := self.target.abi.spec(step.method)) is not None
            and spec.secret_ranges()
        ]
        if not candidates:
            return sequence
        i = candidates[self.rng.randrange(len(candidates))]
        spec = self.target.abi.spec(seq[i].method)
        blob = bytearray(seq[i].args)
        if len(blob) < spec.min_size:
            blob.extend(bytes(spec.min_size - len(blob)))
        for off, size in spec.secret_ranges():
            blob[off:off + size] = bytes(
                self.rng.randrange(256) for _ in range(size))
        seq[i] = CallStep(seq[i].method, bytes(blob))
        return tuple(seq)

    # -- constraint assist --------------------------------------------------

    def _base_args(self, method: str) -> bytes:
        """Richest known calldata for a method (latest corpus use)."""
        for sequence in reversed(self.corpus.entries):
            for step in reversed(sequence):
                if step.method == method:
                    return step.args
        spec = self.target.abi.spec(method)
        return spec.min_args() if spec is not None else b""

    def _base_sequence(self, method: str, args: bytes):
        """A corpus sequence with the target step's args swapped in —
        stateful branches need the prefix calls that set them up."""
        for sequence in reversed(self.corpus.entries):
            for j in range(len(sequence) - 1, -1, -1):
                if sequence[j].method == method:
                    seq = list(sequence)
                    seq[j] = CallStep(method, args)
                    return tuple(seq)
        return (CallStep(method, args),)

    def assist_round(self, budget_left) -> None:
        sites = []
        for vm, site_map in (("wasm", self.wasm_sites),
                             ("evm", self.evm_sites)):
            context = (self.target.name, vm)
            for site, want in _one_sided_sites(self.coverage, context,
                                               site_map):
                sites.append((vm, site, want))
        done = 0
        for vm, site, want in sites:
            if done >= ASSIST_SITES_PER_ROUND or budget_left() <= 0:
                return
            if (vm, site, want) in self._assist_tried:
                continue
            self._assist_tried.add((vm, site, want))
            constraint = (self.wasm_sites if vm == "wasm"
                          else self.evm_sites)[site]
            method = _method_for(constraint, self.executor, self.target.abi)
            if method is None:
                continue
            base = self._base_args(method)
            for candidate in solve_constraint(constraint, want, base,
                                              max_candidates=3):
                if budget_left() <= 0:
                    return
                self.stats.solver_attempts += 1
                sequence = self._base_sequence(method, candidate)
                if self.execute(sequence) > 0:
                    self.stats.constraint_flips += 1
                    break
            done += 1

    # -- the loop -----------------------------------------------------------

    def run(self, deadline: float | None) -> None:
        config = self.config

        def budget_left() -> int:
            if deadline is not None and time.monotonic() > deadline:
                return 0
            return config.max_execs - self.stats.execs

        # Seed round: minimal + one typed-random call per method.
        self.corpus.load()
        for spec in self.target.abi.methods:
            self.corpus.add((CallStep(spec.name, spec.min_args()),))
            self.corpus.add((CallStep(spec.name,
                                      spec.random_args(self.rng)),))
        for sequence in list(self.corpus.entries):
            if budget_left() <= 0:
                break
            self.execute(sequence)

        since_assist = 0
        while budget_left() > 0:
            parent = self.corpus.choice(self.rng)
            child = self.mutator.mutate(parent, self.corpus)
            if self.rng.randrange(CANARY_PLANT_ONE_IN) == 0:
                child = self._plant_canaries(child)
            self.execute(child)
            since_assist += 1
            if config.solver and since_assist >= ASSIST_EVERY:
                since_assist = 0
                self.assist_round(budget_left)

        self.stats.corpus_entries = len(self.corpus)
        self.stats.edges_wasm = len(
            self.coverage.edges_for((self.target.name, "wasm")))
        self.stats.edges_evm = len(
            self.coverage.edges_for((self.target.name, "evm")))


def run_fuzz(config: FuzzConfig) -> FuzzResult:
    """Run one deterministic campaign over every configured target."""
    rng = random.Random(config.seed)
    tracer = get_tracer()
    saved = tracer.coverage
    coverage = CoverageMap()
    tracer.coverage = coverage
    started = time.monotonic()
    deadline = (None if config.time_budget_s is None
                else started + config.time_budget_s)
    result = FuzzResult(seed=config.seed)
    try:
        for name in config.targets:
            target = load_target(name)
            loop = _TargetLoop(target, config, rng, coverage)
            loop.run(deadline)
            result.stats[target.name] = loop.stats
            result.findings.extend(loop.findings)
    finally:
        tracer.coverage = saved
    result.elapsed_s = time.monotonic() - started
    return result


def replay(target_name: str, line: str,
           max_steps: int = FUZZ_MAX_STEPS,
           gas_limit: int = FUZZ_GAS_LIMIT) -> list:
    """Re-execute one sequence line and return the oracle findings.

    This is the reproduction path for pinned fixtures, CI artifacts
    and ``repro fuzz --replay``: nothing but the target name and the
    sequence line is needed.
    """
    target = load_target(target_name)
    sequence = decode_sequence(line)
    tracer = get_tracer()
    saved = tracer.coverage
    tracer.coverage = CoverageMap()
    try:
        executor = DifferentialExecutor(target, tracer.coverage,
                                        max_steps=max_steps,
                                        gas_limit=gas_limit)
        wasm_res = analyze_artifact(executor.wasm_artifact,
                                    public_outputs=target.receipts_public)
        suite = OracleSuite(target, target.abi, wasm_res.report.resources)
        wasm_run, evm_run = executor.run_pair(sequence)
        return suite.judge(sequence, wasm_run, evm_run)
    finally:
        tracer.coverage = saved
