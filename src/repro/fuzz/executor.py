"""Differential sequence execution: CONFIDE-VM and EVM side by side.

One :class:`DifferentialExecutor` owns both compiled artifacts of a
fuzz target and runs every candidate sequence twice — once per VM —
under branch coverage (:class:`~repro.obs.trace.CoverageMap`), then
hands both :class:`SequenceRun` transcripts to the oracles.

Comparability across the two storage models:

- CONFIDE-VM contracts write **logical** keys straight to the host
  context;
- the EVM routes the same logical traffic through
  :class:`~repro.vm.evm.interpreter.SlottedStorage`, which shreds each
  value into 32-byte slots (the real EVM storage model).

Comparing slot dumps to logical dumps would diff the storage adapters,
not the contracts, so the executor splices a :class:`LogicalRecorder`
between the EVM host bridge and the slot adapter: the recorder mirrors
every logical write while the slot layout still runs underneath.  Both
VMs then digest the same logical key space with
:func:`repro.storage.merkle.state_root`.  (CWScript storage moves only
through HOSTCALL host functions — the compiler never emits
SLOAD/SSTORE — so the recorder sees *all* storage traffic.)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import ContractError, OutOfGasError, TrapError, VMError
from repro.lang.compiler import compile_source
from repro.storage.merkle import state_root
from repro.vm.evm.interpreter import EvmInstance, EvmRevert
from repro.vm.host import AbortExecution, HostBridge, HostContext
from repro.vm.wasm.code_cache import prepare_module
from repro.vm.wasm.interpreter import WasmInstance

# Per-call budgets: generous for honest contracts (the whole example
# suite runs in thousands of instructions) yet small enough that a
# runaway loop fails in milliseconds, not minutes.
FUZZ_MAX_STEPS = 60_000
FUZZ_GAS_LIMIT = 1_000_000


class FuzzHost(HostContext):
    """In-memory host for one VM's run of one sequence.

    Records every surface the oracles scan: logical state, logs, and
    the cross-contract wire (``call_contract`` arguments leave the
    enclave to reach the callee, so they are visible bytes even when
    receipts are sealed).
    """

    def __init__(self, caller: bytes = b"\xaa" * 20):
        self.state: dict[bytes, bytes] = {}
        self.logs: list[bytes] = []
        self.wire: list[bytes] = []
        self.input = b""
        self.caller = caller

    def get_input(self) -> bytes:
        return self.input

    def get_caller(self) -> bytes:
        return self.caller

    def storage_get(self, key: bytes) -> bytes | None:
        return self.state.get(bytes(key))

    def storage_set(self, key: bytes, value: bytes) -> None:
        self.state[bytes(key)] = bytes(value)

    def call_contract(self, address: bytes, method: str,
                      argument: bytes) -> bytes:
        self.wire.append(bytes(address) + b"|" + method.encode() + b"|"
                         + bytes(argument))
        return b""


class LogicalRecorder(HostContext):
    """Pass-through context that mirrors logical writes into a dict."""

    def __init__(self, inner: HostContext, mirror: dict):
        self._inner = inner
        self.mirror = mirror
        self.logs = inner.logs

    def get_input(self) -> bytes:
        return self._inner.get_input()

    def get_caller(self) -> bytes:
        return self._inner.get_caller()

    def storage_get(self, key: bytes) -> bytes | None:
        return self._inner.storage_get(key)

    def storage_set(self, key: bytes, value: bytes) -> None:
        self.mirror[bytes(key)] = bytes(value)
        self._inner.storage_set(key, value)

    def call_contract(self, address: bytes, method: str,
                      argument: bytes) -> bytes:
        return self._inner.call_contract(address, method, argument)

    def emit_log(self, data: bytes) -> None:
        self._inner.emit_log(data)


@dataclass
class CallOutcome:
    """Classified result of one call on one VM."""

    status: str               # ok | abort | revert | trap | resource | crash
    output: bytes = b""
    logs: tuple = ()
    error: str = ""
    instructions: int = 0

    def compare_key(self):
        """What must match across VMs.  Trap/crash/resource wording and
        cost accounting are VM-specific; contract-visible behavior —
        status, output bytes, abort message, emitted logs — is not."""
        detail = self.error if self.status == "abort" else ""
        out = self.output if self.status == "ok" else b""
        return (self.status, out, detail, self.logs)


@dataclass
class SequenceRun:
    """Transcript of one sequence on one VM."""

    vm: str
    outcomes: list[CallOutcome] = field(default_factory=list)
    state: dict = field(default_factory=dict)   # logical key -> value
    wire: list = field(default_factory=list)
    all_logs: list = field(default_factory=list)

    @property
    def state_digest(self) -> bytes:
        return state_root(self.state)


def classify_exception(exc: BaseException) -> tuple[str, str]:
    """Map an execution exception to an outcome status."""
    if isinstance(exc, AbortExecution):
        return "abort", str(exc)
    if isinstance(exc, EvmRevert):
        return "revert", exc.payload.hex()
    if isinstance(exc, OutOfGasError):
        return "resource", str(exc)
    if isinstance(exc, TrapError):
        if "out of fuel" in str(exc):
            return "resource", str(exc)
        return "trap", str(exc)
    if isinstance(exc, (VMError, ContractError)):
        return "trap", str(exc)
    return "crash", f"{type(exc).__name__}: {exc}"


class DifferentialExecutor:
    """Runs call sequences on both VMs for one fuzz target."""

    def __init__(self, target, coverage=None,
                 max_steps: int = FUZZ_MAX_STEPS,
                 gas_limit: int = FUZZ_GAS_LIMIT):
        self.target = target
        self.coverage = coverage
        self.max_steps = max_steps
        self.gas_limit = gas_limit
        self.wasm_artifact = compile_source(target.source, "wasm")
        self.evm_artifact = compile_source(target.source, "evm")
        patch = getattr(target, "evm_patch", None)
        if patch is not None:
            # Planted-bug fixtures transform the compiled bytecode to
            # re-introduce a since-fixed miscompilation (see targets.py).
            self.evm_artifact = dataclasses.replace(
                self.evm_artifact, code=patch(self.evm_artifact.code)
            )
        # Decode+validate+fuse once; every call shares the module (the
        # same pipeline the analyzer uses, so coverage pcs line up with
        # PathConstraint pcs).
        self.wasm_module = prepare_module(self.wasm_artifact.code)
        self.methods = self.wasm_artifact.methods

    def _set_context(self, vm: str) -> None:
        if self.coverage is not None:
            self.coverage.context = (self.target.name, vm)

    def run_wasm(self, sequence) -> SequenceRun:
        self._set_context("wasm")
        host = FuzzHost()
        run = SequenceRun(vm="wasm", state=host.state, wire=host.wire)
        for step in sequence:
            host.input = step.args
            before = len(host.logs)
            try:
                instance = WasmInstance(self.wasm_module, host,
                                        max_steps=self.max_steps)
                result = instance.run(step.method)
                outcome = CallOutcome(
                    "ok", result.output, tuple(host.logs[before:]),
                    instructions=result.instructions)
            except Exception as exc:  # noqa: BLE001 — oracle fodder
                status, detail = classify_exception(exc)
                outcome = CallOutcome(status, b"",
                                      tuple(host.logs[before:]), detail)
            run.outcomes.append(outcome)
        run.all_logs = list(host.logs)
        return run

    def run_evm(self, sequence) -> SequenceRun:
        self._set_context("evm")
        host = FuzzHost()       # slot-level persistence across calls
        mirror: dict[bytes, bytes] = {}
        run = SequenceRun(vm="evm", state=mirror, wire=host.wire)
        for step in sequence:
            host.input = step.args
            before = len(host.logs)
            try:
                instance = EvmInstance(self.evm_artifact.code, host,
                                       gas_limit=self.gas_limit)
                # Splice the logical recorder between the host bridge
                # and the slot adapter (instance.context is the
                # SlottedStorage wrapping `host`).
                recorder = LogicalRecorder(instance.context, mirror)
                instance.context = recorder
                instance._bridge = HostBridge(
                    recorder, instance.memory, instance.result,
                    expandable=True)
                result = instance.run(
                    self.evm_artifact.entry_for(step.method))
                outcome = CallOutcome(
                    "ok", result.output, tuple(host.logs[before:]),
                    instructions=result.instructions)
            except Exception as exc:  # noqa: BLE001 — oracle fodder
                status, detail = classify_exception(exc)
                outcome = CallOutcome(status, b"",
                                      tuple(host.logs[before:]), detail)
            run.outcomes.append(outcome)
        run.all_logs = list(host.logs)
        return run

    def run_pair(self, sequence) -> tuple[SequenceRun, SequenceRun]:
        return self.run_wasm(sequence), self.run_evm(sequence)
