"""Fuzz target registry: contract source + ABI + confidentiality model.

A :class:`FuzzTarget` is everything the harness needs to fuzz one
contract: its CWScript source, the typed calldata layout of each
method (with secret-field marks for canary planting), which storage
key prefixes the engine seals, and whether receipts travel in
plaintext (Public-Engine) or sealed under ``k_tx`` (the default
Confidential-Engine model, matching ``analyze_artifact``'s
``public_outputs=False`` admission mode).

Built-ins cover the example contracts plus the planted-bug fixtures
under ``tests/fixtures/fuzz/contracts/``; any other ``.cws`` path is
loaded with an ABI inferred from its path constraints.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.fuzz.abi import ArgField, ContractAbi, MethodSpec, infer_abi

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))))
_EXAMPLES = os.path.join(_REPO_ROOT, "examples", "contracts")
_FIXTURES = os.path.join(_REPO_ROOT, "tests", "fixtures", "fuzz",
                         "contracts")


@dataclass(frozen=True)
class FuzzTarget:
    """One contract under fuzz, with its confidentiality model."""

    name: str
    source: str
    abi: ContractAbi
    confidential_prefixes: tuple = ()
    receipts_public: bool = False
    # Optional post-compile transform of the EVM bytecode.  Planted-bug
    # fixtures use it to re-introduce historical miscompilations the
    # compiler has since fixed, so the divergence oracle keeps a live
    # true positive to regress against.
    evm_patch: Callable[[bytes], bytes] | None = None


def _read(directory: str, filename: str) -> str:
    with open(os.path.join(directory, filename)) as f:
        return f.read()


def _greeter() -> FuzzTarget:
    abi = ContractAbi((
        MethodSpec("greet", (ArgField("pad", "bytes", 0),), variable=True),
        MethodSpec("total", (ArgField("pad", "bytes", 0),), variable=True),
    ))
    return FuzzTarget("greeter", _read(_EXAMPLES, "greeter.cws"), abi)


def _coldchain() -> FuzzTarget:
    abi = ContractAbi((
        MethodSpec("register", (
            ArgField("sid", "u64"),
            ArgField("min_temp", "i64", secret=True),
            ArgField("max_temp", "i64", secret=True),
        )),
        MethodSpec("record", (
            ArgField("sid", "u64"),
            ArgField("temp", "i64", secret=True),
            ArgField("sensor", "u64"),
        )),
        MethodSpec("status", (ArgField("sid", "u64"),)),
        MethodSpec("history", (ArgField("sid", "u64"),)),
    ))
    return FuzzTarget("coldchain", _read(_EXAMPLES, "coldchain.cws"), abi,
                      confidential_prefixes=(b"cfg.", b"rd"))


def _gates() -> FuzzTarget:
    abi = ContractAbi((
        MethodSpec("open", (
            ArgField("key_a", "u64"),
            ArgField("key_b", "u64"),
            ArgField("amount", "u64"),
        )),
        MethodSpec("probe", (ArgField("candidate", "u64"),)),
    ))
    return FuzzTarget("gates", _read(_EXAMPLES, "gates.cws"), abi)


def _unmask_shift_amounts(code: bytes) -> bytes:
    """Replant the historical shift miscompilation (planted bug).

    The EVM codegen used to emit bare 256-bit SHL/SHR for CWScript
    ``<<``/``>>``, diverging from CONFIDE-VM's wasm-style mod-64 shifts
    for amounts >= 64; it now masks the amount with ``PUSH1 63; AND``
    first.  This patch strips that prelude (replaced with JUMPDEST
    no-ops, so jump targets keep their offsets) to give the divergence
    oracle a guaranteed true positive to find.
    """
    import repro.vm.evm.opcodes as op
    prelude = bytes([op.PUSH1, 63, op.AND])
    nops = bytes([op.JUMPDEST] * len(prelude))
    return (code
            .replace(prelude + bytes([op.SHL]), nops + bytes([op.SHL]))
            .replace(prelude + bytes([op.SHR]), nops + bytes([op.SHR])))


def _div_shift() -> FuzzTarget:
    abi = ContractAbi((
        MethodSpec("mix", (ArgField("value", "u64"),
                           ArgField("shift", "u64"))),
        MethodSpec("stir", (ArgField("value", "u64"),)),
    ))
    return FuzzTarget("div_shift", _read(_FIXTURES, "div_shift.cws"), abi,
                      evm_patch=_unmask_shift_amounts)


def _leaky_log() -> FuzzTarget:
    abi = ContractAbi((
        MethodSpec("put", (ArgField("id", "u64"),
                           ArgField("note", "u64", secret=True))),
        MethodSpec("peek", (ArgField("id", "u64"),)),
    ))
    return FuzzTarget("leaky_log", _read(_FIXTURES, "leaky_log.cws"), abi,
                      confidential_prefixes=(b"note.",))


def _spin() -> FuzzTarget:
    abi = ContractAbi((
        MethodSpec("burn", (ArgField("rounds", "u64"),)),
        MethodSpec("tick", (ArgField("pad", "bytes", 0),), variable=True),
    ))
    return FuzzTarget("spin", _read(_FIXTURES, "spin.cws"), abi)


BUILTIN_TARGETS = {
    "greeter": _greeter,
    "coldchain": _coldchain,
    "gates": _gates,
    "div_shift": _div_shift,
    "leaky_log": _leaky_log,
    "spin": _spin,
}


def target_names() -> list[str]:
    return sorted(BUILTIN_TARGETS)


def load_target(name_or_path: str,
                confidential_prefixes: tuple = (),
                receipts_public: bool = False) -> FuzzTarget:
    """A builtin by name, or any ``.cws`` path with an inferred ABI."""
    factory = BUILTIN_TARGETS.get(name_or_path)
    if factory is not None:
        return factory()
    if not os.path.isfile(name_or_path):
        raise FileNotFoundError(
            f"unknown fuzz target '{name_or_path}' "
            f"(builtins: {', '.join(target_names())})")
    with open(name_or_path) as f:
        source = f.read()
    from repro.lang.compiler import compile_source

    artifact = compile_source(source, "wasm")
    name = os.path.splitext(os.path.basename(name_or_path))[0]
    return FuzzTarget(name, source, infer_abi(artifact),
                      confidential_prefixes=tuple(
                          p.encode() if isinstance(p, str) else bytes(p)
                          for p in confidential_prefixes),
                      receipts_public=receipts_public)
