"""Branch-flipping over PathConstraints — constant extraction and
interval reasoning, no SMT.

The bytecode analyzer (PR 6) traces every conditional branch to a
comparison over symbolic operand trees (``input[8:16] < const``,
``input_size() != 24``, affine combinations).  When the fuzzer sees a
branch site where only one outcome has ever executed, it asks this
module for concrete calldata that takes the other side:

- ``input[off:len] REL const`` — pick the boundary value satisfying
  REL and splice it into the blob (big-endian, matching the VM's
  load/store byte order);
- ``input_size() REL const`` — resize the blob;
- affine wrappers ``(+ x k)``, ``(- x k)``, ``(* x k)``, ``(& x k)``
  are unwrapped algebraically; nested ``cmp`` under truthy/falsy
  recurses;
- ``input == input`` two-operand comparisons copy one range onto the
  other.

Everything else returns no candidates — the mutation engine keeps
those branches; this module only has to crack the magic-constant and
size gates random bytes essentially never hit.
"""

from __future__ import annotations

_INVERT = {
    "eq": "ne", "ne": "eq", "lt_s": "ge_s", "lt_u": "ge_u",
    "gt_s": "le_s", "gt_u": "le_u", "le_s": "gt_s", "le_u": "gt_u",
    "ge_s": "lt_s", "ge_u": "lt_u", "truthy": "falsy", "falsy": "truthy",
}

# Relation -> candidate target values for `x REL c` (best-first).
_MAX_INPUT = 4096


def _targets(rel: str, c: int) -> list[int]:
    if rel == "eq":
        return [c]
    if rel == "ne":
        return [c + 1, 0] if c != 0 else [1]
    if rel in ("lt_u", "lt_s"):
        return [c - 1, 0] if rel == "lt_u" else [c - 1]
    if rel in ("le_u", "le_s"):
        return [c, 0] if rel == "le_u" else [c]
    if rel in ("gt_u", "gt_s"):
        return [c + 1]
    if rel in ("ge_u", "ge_s"):
        return [c]
    if rel == "truthy":
        return [1]
    if rel == "falsy":
        return [0]
    return []


def _encode(value: int, length: int) -> bytes | None:
    """Two's-complement big-endian, or None when unrepresentable."""
    bits = length * 8
    if value < 0:
        # Negative i64 values only exist for full-word fields; narrower
        # loads zero-extend and can never read back negative.
        if length != 8 or value < -(1 << 63):
            return None
        value &= (1 << 64) - 1
    if value >= 1 << bits:
        return None
    return value.to_bytes(length, "big")


def _patch(args: bytes, off: int, chunk: bytes) -> bytes:
    blob = bytearray(args)
    end = off + len(chunk)
    if end > len(blob):
        blob.extend(bytes(end - len(blob)))
    blob[off:end] = chunk
    return bytes(blob)


def _resize(args: bytes, size: int) -> bytes | None:
    if size < 0 or size > _MAX_INPUT:
        return None
    if size <= len(args):
        return args[:size]
    return args + bytes(size - len(args))


def _unwrap(expr, rel: str, c: int):
    """Reduce ``expr REL c`` toward a bare input/input_size leaf.

    Returns ``(leaf, rel, c)`` or None when the algebra gives out.
    """
    for _ in range(8):
        if expr is None:
            return None
        tag = expr[0]
        if tag in ("input", "input_size"):
            return expr, rel, c
        if tag != "bin":
            return None
        op_name, a, b = expr[1], expr[2], expr[3]
        if b is not None and b[0] == "const":
            k, inner = b[1], a
            if op_name == "+":
                c, expr = c - k, inner
            elif op_name == "-":
                c, expr = c + k, inner
            elif op_name == "*" and k > 0:
                if rel == "eq" and c % k != 0:
                    return None
                c, expr = c // k, inner
            elif op_name == "&" and rel in ("eq", "ne"):
                if rel == "eq" and (c & ~k) != 0:
                    return None  # masked bits can never equal c
                expr = inner
            elif op_name == "^" and rel in ("eq", "ne"):
                c, expr = c ^ k, inner
            else:
                return None
        elif a is not None and a[0] == "const":
            k, inner = a[1], b
            if op_name == "+":
                c, expr = c - k, inner
            elif op_name == "-":  # k - x REL c  <=>  x REL' k - c
                c, expr, rel = k - c, inner, _flip_order(rel)
            elif op_name == "*" and k > 0:
                if rel == "eq" and c % k != 0:
                    return None
                c, expr = c // k, inner
            elif op_name == "^" and rel in ("eq", "ne"):
                c, expr = c ^ k, inner
            else:
                return None
        else:
            return None
    return None


def _flip_order(rel: str) -> str:
    return {"lt_s": "gt_s", "lt_u": "gt_u", "gt_s": "lt_s",
            "gt_u": "lt_u", "le_s": "ge_s", "le_u": "ge_u",
            "ge_s": "le_s", "ge_u": "le_u"}.get(rel, rel)


def _solve_rel(lhs, rel: str, rhs, args: bytes) -> list[bytes]:
    """Candidates making ``lhs REL rhs`` hold over ``args``."""
    # Nested comparison under a truthiness test: (cmp k a b) REL 0/1.
    if lhs is not None and lhs[0] == "cmp" and rel in ("truthy", "falsy"):
        inner = lhs[1] if rel == "truthy" else _INVERT.get(lhs[1], lhs[1])
        return _solve_rel(lhs[2], inner, lhs[3], args)
    lc = rhs[1] if rhs is not None and rhs[0] == "const" else None
    if lc is None and lhs is not None and lhs[0] == "const":
        # const REL expr  <=>  expr REL' const
        return _solve_rel(rhs, _flip_order(rel), lhs, args)
    if rel in ("truthy", "falsy") and rhs is None:
        rhs, lc = ("const", 0), 0
        rel = "ne" if rel == "truthy" else "eq"
    elif rel == "truthy":
        rel, lc = "ne", 0 if lc is None else lc
    elif rel == "falsy":
        rel, lc = "eq", 0 if lc is None else lc

    if lc is not None:
        reduced = _unwrap(lhs, rel, lc)
        if reduced is None:
            return []
        leaf, rel, c = reduced
        out = []
        if leaf[0] == "input_size":
            for v in _targets(rel, c):
                resized = _resize(args, v)
                if resized is not None:
                    out.append(resized)
            return out
        off, length = leaf[1], leaf[2]
        for v in _targets(rel, c):
            chunk = _encode(v, length)
            if chunk is not None:
                out.append(_patch(args, off, chunk))
        return out

    # input-vs-input comparison: make both ranges equal (or not).
    if (lhs is not None and rhs is not None
            and lhs[0] == "input" and rhs[0] == "input"
            and lhs[2] == rhs[2]):
        src = args[lhs[1]:lhs[1] + lhs[2]].ljust(lhs[2], b"\x00")
        if rel == "eq":
            return [_patch(args, rhs[1], src)]
        if rel == "ne":
            flipped = bytes([src[0] ^ 0xFF]) + src[1:]
            return [_patch(args, rhs[1], flipped)]
    return []


def solve_constraint(constraint, want_taken: bool, args: bytes,
                     max_candidates: int = 4) -> list[bytes]:
    """Calldata candidates steering ``constraint`` to the wanted edge.

    ``constraint.kind`` describes the relation on the *taken* edge;
    ``want_taken=False`` solves the inverse to reach the fallthrough.
    """
    rel = constraint.kind
    if not want_taken:
        rel = _INVERT.get(rel, rel)
    candidates = _solve_rel(constraint.lhs_sym, rel, constraint.rhs_sym, args)
    # Dedup preserving order; drop no-op candidates.
    seen, out = set(), []
    for cand in candidates:
        if cand != args and cand not in seen:
            seen.add(cand)
            out.append(cand)
        if len(out) >= max_candidates:
            break
    return out
