"""Typed argument model for fuzzed contract methods.

CWScript methods take one flat byte blob (calldata); contracts slice it
themselves with ``input_read``/``load64``.  The fuzzer still wants
*types* — a u64 shipment id mutates usefully as a u64, not as eight
unrelated bytes — so each target carries a :class:`ContractAbi`
describing every method's field layout, plus which fields hold
**secret** values (those become confidentiality canaries: the oracle
plants high-entropy bytes there and scans every public surface for
them).

For contracts fuzzed without a hand-written ABI, :func:`infer_abi`
recovers a workable layout from the bytecode analyzer's
``PathConstraints``: ``input_size`` comparisons pin the expected blob
size, which is then split into word fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Values worth trying verbatim in any word-sized field: boundaries of
# the masks, shifts and counters CWScript arithmetic actually uses.
INTERESTING_U64: tuple[int, ...] = (
    0, 1, 2, 7, 8, 9, 15, 16, 31, 32, 63, 64, 65, 100, 127, 128, 255,
    256, 1023, 1024, (1 << 16) - 1, 1 << 16, (1 << 31) - 1, 1 << 31,
    (1 << 32) - 1, 1 << 32, (1 << 63) - 1, 1 << 63, (1 << 64) - 1,
)

_KINDS = ("u64", "i64", "bytes")


@dataclass(frozen=True)
class ArgField:
    """One field in a method's calldata layout."""

    name: str
    kind: str = "u64"       # u64 | i64 | bytes
    size: int = 8           # byte width (for bytes: the default width)
    secret: bool = False    # confidential value -> canary site

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown field kind '{self.kind}'")


@dataclass(frozen=True)
class MethodSpec:
    """Calldata layout of one exported method."""

    name: str
    fields: tuple[ArgField, ...] = ()
    # When True the final field may grow/shrink (length-prefixed blobs,
    # trailing payloads); fixed layouts reject resizing mutations.
    variable: bool = False

    @property
    def min_size(self) -> int:
        return sum(f.size for f in self.fields)

    def offsets(self) -> list[tuple[ArgField, int]]:
        """``(field, byte offset)`` pairs in layout order."""
        out, off = [], 0
        for f in self.fields:
            out.append((f, off))
            off += f.size
        return out

    def min_args(self) -> bytes:
        return bytes(self.min_size)

    def random_args(self, rng) -> bytes:
        """Typed random calldata: word fields draw from the interesting
        set or small ranges, bytes fields draw printable junk."""
        blob = bytearray()
        for f in self.fields:
            if f.kind == "bytes":
                size = f.size
                if self.variable:
                    size = rng.choice((0, 1, f.size, f.size + 8))
                blob += bytes(rng.randrange(256) for _ in range(size))
            else:
                choice = rng.randrange(4)
                if choice == 0:
                    v = rng.choice(INTERESTING_U64)
                elif choice == 1:
                    v = rng.randrange(16)
                elif choice == 2:
                    v = rng.getrandbits(f.size * 8)
                else:
                    v = rng.randrange(1 << 16)
                blob += (v & ((1 << (f.size * 8)) - 1)).to_bytes(
                    f.size, "big")
        return bytes(blob)

    def secret_ranges(self) -> list[tuple[int, int]]:
        """``(offset, size)`` of every secret-marked field."""
        return [(off, f.size) for f, off in self.offsets() if f.secret]


@dataclass(frozen=True)
class ContractAbi:
    """All fuzzable methods of one contract."""

    methods: tuple[MethodSpec, ...] = ()

    def spec(self, name: str) -> MethodSpec | None:
        for m in self.methods:
            if m.name == name:
                return m
        return None

    def names(self) -> tuple[str, ...]:
        return tuple(m.name for m in self.methods)


def _size_hint(constraints, function: str) -> int:
    """Smallest input size that satisfies every ``input_size`` guard the
    analyzer recovered for one function (best effort)."""
    best = 0
    for c in constraints.for_function(function):
        for sym, const in ((c.lhs_sym, c.rhs_sym), (c.rhs_sym, c.lhs_sym)):
            if (sym is not None and sym[0] == "input_size"
                    and const is not None and const[0] == "const"):
                value = const[1]
                if 0 < value <= 4096:
                    best = max(best, value)
    return best


def infer_abi(artifact, constraints=None) -> ContractAbi:
    """Recover a workable ABI for a contract with no hand-written spec.

    Input sizes come from the analyzer's ``input_size`` path constraints
    when available; the blob is then split into 8-byte words plus a
    trailing bytes field.  Nothing is marked secret — canary planting
    needs explicit knowledge of which fields hold confidential values.
    """
    if constraints is None:
        from repro.analysis.bytecode_flow import analyze_artifact

        constraints = analyze_artifact(artifact).constraints
    methods = []
    for name in artifact.methods:
        size = _size_hint(constraints, name)
        fields: list[ArgField] = [
            ArgField(f"w{i}", "u64", 8) for i in range(size // 8)
        ]
        rem = size % 8
        if rem:
            fields.append(ArgField("tail", "bytes", rem))
        if not fields:
            fields.append(ArgField("blob", "bytes", 8))
        methods.append(MethodSpec(name, tuple(fields),
                                  variable=(size == 0)))
    return ContractAbi(tuple(methods))
