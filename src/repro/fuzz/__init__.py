"""Hybrid coverage-guided fuzzer for CWScript contracts.

Generates deploy+call sequences, executes them differentially on
CONFIDE-VM and the EVM under branch coverage, cracks hard branches
with the bytecode analyzer's path constraints, and judges every run
with divergence / confidentiality-canary / resource oracles.  See
``docs/fuzzing.md``.
"""

from repro.fuzz.abi import ArgField, ContractAbi, MethodSpec, infer_abi
from repro.fuzz.corpus import (CallStep, Corpus, decode_sequence,
                               encode_sequence)
from repro.fuzz.executor import DifferentialExecutor, FuzzHost
from repro.fuzz.harness import (FuzzConfig, FuzzResult, TargetStats,
                                replay, run_fuzz)
from repro.fuzz.minimize import minimize
from repro.fuzz.mutate import Mutator
from repro.fuzz.oracles import Finding, OracleSuite
from repro.fuzz.solver import solve_constraint
from repro.fuzz.targets import (BUILTIN_TARGETS, FuzzTarget, load_target,
                                target_names)

__all__ = [
    "ArgField", "ContractAbi", "MethodSpec", "infer_abi",
    "CallStep", "Corpus", "decode_sequence", "encode_sequence",
    "DifferentialExecutor", "FuzzHost",
    "FuzzConfig", "FuzzResult", "TargetStats", "replay", "run_fuzz",
    "minimize", "Mutator", "Finding", "OracleSuite", "solve_constraint",
    "BUILTIN_TARGETS", "FuzzTarget", "load_target", "target_names",
]
