"""Delta-debugging minimizer for fuzzer findings.

Two greedy passes, both bounded by an execution budget so a pathological
finding cannot stall the fuzz loop:

1. **sequence level** — drop one call at a time, keeping the removal
   whenever the finding (same kind, same target) still reproduces;
2. **argument level** — for each surviving call, first try truncating
   the calldata to the ABI minimum, then zero each byte left to right,
   keeping every simplification that preserves the repro.

The reproducer predicate re-runs the full oracle stack, so a minimized
sequence is by construction still a finding — that is what gets pinned
into ``tests/fixtures/fuzz/`` as a regression.
"""

from __future__ import annotations

from repro.fuzz.corpus import CallStep


def minimize(finding, reproduce, abi=None, budget: int = 200) -> tuple:
    """Smallest sequence (under greedy search) still showing `finding`.

    ``reproduce(sequence)`` must return True when the candidate still
    triggers a finding of the same kind.
    """
    best = tuple(finding.sequence)
    spent = 0

    def attempt(candidate) -> bool:
        nonlocal spent, best
        spent += 1
        if spent > budget or not candidate:
            return False
        if reproduce(tuple(candidate)):
            best = tuple(candidate)
            return True
        return False

    # Pass 1: drop calls, restarting after every successful removal.
    shrunk = True
    while shrunk and len(best) > 1 and spent < budget:
        shrunk = False
        for i in range(len(best) - 1, -1, -1):
            candidate = best[:i] + best[i + 1:]
            if attempt(candidate):
                shrunk = True
                break

    # Pass 2: shrink and zero arguments call by call.
    for i in range(len(best)):
        step = best[i]
        spec = abi.spec(step.method) if abi is not None else None
        if spec is not None and len(step.args) > spec.min_size:
            candidate = list(best)
            candidate[i] = CallStep(step.method, step.args[:spec.min_size])
            attempt(candidate)
        step = best[i]
        for off in range(len(step.args)):
            if spent >= budget:
                break
            if step.args[off] == 0:
                continue
            zeroed = step.args[:off] + b"\x00" + step.args[off + 1:]
            candidate = list(best)
            candidate[i] = CallStep(step.method, zeroed)
            attempt(candidate)
            step = best[i]  # re-read: attempt may have accepted
    return best
