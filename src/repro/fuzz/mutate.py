"""Deterministic mutation engine over call sequences.

All randomness flows from one ``random.Random`` owned by the harness,
so a seed replays the exact mutation stream.  Two layers:

- **argument mutations** — AFL-style byte/bit havoc plus typed
  word-field mutations driven by the target's ABI (interesting u64
  boundary values, +/- deltas, field copies);
- **sequence mutations** — append/drop/duplicate/swap calls and
  *splicing* (crossover with another corpus entry), which is what
  discovers stateful interactions like register-then-record.
"""

from __future__ import annotations

from repro.fuzz.abi import INTERESTING_U64, ContractAbi, MethodSpec
from repro.fuzz.corpus import CallStep


class Mutator:
    """One mutation source bound to an ABI and an rng."""

    def __init__(self, rng, abi: ContractAbi, max_seq_len: int = 4):
        self.rng = rng
        self.abi = abi
        self.max_seq_len = max_seq_len

    # -- fresh generation ---------------------------------------------------

    def fresh_step(self, spec: MethodSpec | None = None) -> CallStep:
        if spec is None:
            spec = self.abi.methods[self.rng.randrange(len(self.abi.methods))]
        return CallStep(spec.name, spec.random_args(self.rng))

    def fresh_sequence(self) -> tuple:
        n = 1 + self.rng.randrange(self.max_seq_len)
        return tuple(self.fresh_step() for _ in range(n))

    # -- argument layer -----------------------------------------------------

    def _mutate_word(self, blob: bytearray, off: int, size: int) -> None:
        rng = self.rng
        mask = (1 << (size * 8)) - 1
        old = int.from_bytes(blob[off:off + size], "big")
        roll = rng.randrange(4)
        if roll == 0:
            new = rng.choice(INTERESTING_U64) & mask
        elif roll == 1:
            new = (old + rng.choice((-64, -8, -1, 1, 8, 64))) & mask
        elif roll == 2:
            new = old ^ (1 << rng.randrange(size * 8))
        else:
            new = rng.getrandbits(size * 8)
        blob[off:off + size] = new.to_bytes(size, "big")

    def mutate_args(self, step: CallStep) -> CallStep:
        rng = self.rng
        spec = self.abi.spec(step.method)
        blob = bytearray(step.args)
        # Typed path: pick a field and mutate it as its kind.
        if spec is not None and spec.fields and rng.randrange(4):
            field, off = spec.offsets()[rng.randrange(len(spec.fields))]
            if field.kind != "bytes" and off + field.size <= len(blob):
                self._mutate_word(blob, off, field.size)
                return CallStep(step.method, bytes(blob))
        # Havoc path: raw byte ops; resizing only for variable layouts.
        if not blob:
            if spec is not None and not spec.variable:
                return CallStep(step.method, spec.min_args())
            return CallStep(step.method,
                            bytes(rng.randrange(256)
                                  for _ in range(1 + rng.randrange(8))))
        roll = rng.randrange(6)
        if roll == 0:
            blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
        elif roll == 1:
            blob[rng.randrange(len(blob))] = rng.choice(
                (0x00, 0x01, 0x7F, 0x80, 0xFF))
        elif roll == 2:
            i, j = rng.randrange(len(blob)), rng.randrange(len(blob))
            blob[i], blob[j] = blob[j], blob[i]
        elif roll == 3 and len(blob) >= 8:
            off = rng.randrange(len(blob) - 7)
            self._mutate_word(blob, off, 8)
        elif (spec is None or spec.variable) and roll == 4:
            blob += bytes(rng.randrange(256)
                          for _ in range(1 + rng.randrange(8)))
        elif (spec is None or spec.variable) and roll == 5 and len(blob) > 1:
            del blob[rng.randrange(len(blob)):]
            if not blob:
                blob.append(0)
        else:
            blob[rng.randrange(len(blob))] = rng.randrange(256)
        return CallStep(step.method, bytes(blob))

    # -- sequence layer -----------------------------------------------------

    def mutate(self, sequence, corpus=None) -> tuple:
        """One mutated child of ``sequence``.

        Mostly argument havoc on one step; sometimes structural edits;
        occasionally a splice with a random corpus sibling.
        """
        rng = self.rng
        seq = list(sequence) or [self.fresh_step()]
        roll = rng.randrange(10)
        if roll < 6:  # argument mutation (the common case)
            i = rng.randrange(len(seq))
            seq[i] = self.mutate_args(seq[i])
        elif roll == 6 and len(seq) < self.max_seq_len:
            seq.insert(rng.randrange(len(seq) + 1), self.fresh_step())
        elif roll == 7 and len(seq) > 1:
            del seq[rng.randrange(len(seq))]
        elif roll == 8 and len(seq) > 1:
            i, j = rng.randrange(len(seq)), rng.randrange(len(seq))
            seq[i], seq[j] = seq[j], seq[i]
        elif roll == 9 and corpus is not None and len(corpus) > 1:
            other = list(corpus.choice(rng))
            cut_a = rng.randrange(len(seq) + 1)
            cut_b = rng.randrange(len(other) + 1)
            seq = (seq[:cut_a] + other[cut_b:])[:self.max_seq_len] or seq
        else:
            i = rng.randrange(len(seq))
            seq[i] = self.mutate_args(seq[i])
        return tuple(seq)
