"""The three fuzzing oracles: divergence, confidentiality, resources.

Every executed sequence is judged by:

1. **Differential** — CONFIDE-VM and the EVM ran the same contract
   source from the same calldata; any difference in per-call status,
   output bytes, abort message, emitted logs, or the end-of-sequence
   logical state root is a semantic divergence between the engines.
   Resource exhaustion is excluded from the comparison (fuel and gas
   budgets are not commensurable) and reported by oracle 3 instead.

2. **Confidentiality canary** — secret-marked ABI fields are treated
   as planted canaries.  The scan surfaces mirror the static
   analyzer's sink model (and the PR 3 invariant checker it reuses):
   logs are always public; persisted state outside the target's
   confidential key prefixes is host-visible; ``call_contract``
   arguments travel on the wire; outputs and revert payloads are
   public only when the target says receipts are (Public-Engine).
   Low-entropy values are skipped — a counter colliding with the
   byte 0x00 is not a leak.

3. **Resource** — fuel/gas exhaustion under the fuzzer's generous
   per-call budget, or a call whose executed instruction count
   explodes past the static analyzer's cycle estimate for loop-free
   code.  Plus **crash**: any exception outside the VM error taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvariantViolation
from repro.fuzz.corpus import encode_sequence
from repro.sim.invariants import ConfidentialityChecker

# A canary needle must look like entropy, not like a counter: at least
# this many bytes and this many distinct byte values.
MIN_NEEDLE_LEN = 6
MIN_NEEDLE_DISTINCT = 4

# Loop-free calls may legitimately exceed the static cycle estimate
# (the estimate prices superinstructions, not every interpreter step),
# but not by orders of magnitude.
RESOURCE_FACTOR = 256


@dataclass
class Finding:
    """One oracle violation, replayable from its sequence line."""

    kind: str            # divergence | canary | resource | crash
    target: str
    sequence: tuple
    detail: str
    call_index: int = -1
    seed: int = 0

    def line(self) -> str:
        return encode_sequence(self.sequence)

    def key(self) -> tuple:
        """Dedup key: one report per (kind, site), not per input or
        sequence position — the leading detail token is the site."""
        site = self.detail.split("|", 1)[0]
        return (self.kind, self.target, site)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "sequence": self.line(),
            "detail": self.detail,
            "call_index": self.call_index,
            "seed": self.seed,
        }


def sequence_needles(sequence, abi) -> list[bytes]:
    """Canary bytes planted in secret-marked fields of a sequence."""
    needles = []
    for step in sequence:
        spec = abi.spec(step.method)
        if spec is None:
            continue
        for off, size in spec.secret_ranges():
            needle = step.args[off:off + size]
            if (len(needle) >= MIN_NEEDLE_LEN
                    and len(set(needle)) >= MIN_NEEDLE_DISTINCT
                    and needle not in needles):
                needles.append(needle)
    return needles


def check_divergence(target_name, sequence, wasm_run, evm_run) -> list:
    """Cross-VM comparison of two transcripts of the same sequence."""
    findings = []
    for i, (w, e) in enumerate(zip(wasm_run.outcomes, evm_run.outcomes)):
        if "resource" in (w.status, e.status):
            continue  # fuel and gas exhaust at different points
        if "crash" in (w.status, e.status):
            continue  # reported by the crash oracle with full detail
        if w.compare_key() != e.compare_key():
            findings.append(Finding(
                "divergence", target_name, sequence,
                f"{sequence[i].method}|call[{i}]"
                f"|wasm={w.status}:{w.output.hex()}:{w.error}"
                f"|evm={e.status}:{e.output.hex()}:{e.error}",
                call_index=i))
            return findings  # later calls run from diverged state
    if wasm_run.state_digest != evm_run.state_digest:
        findings.append(Finding(
            "divergence", target_name, sequence,
            f"state-root|wasm={wasm_run.state_digest.hex()[:16]}"
            f"|evm={evm_run.state_digest.hex()[:16]}"))
    return findings


def _public_state_blobs(run, confidential_prefixes) -> list[bytes]:
    blobs = []
    for key in sorted(run.state):
        if any(key.startswith(p) for p in confidential_prefixes):
            continue
        blobs.append(key + b"\x00" + run.state[key])
    return blobs


def check_canary(target, sequence, run, abi) -> list:
    """Scan one VM transcript's public surfaces for planted secrets."""
    needles = sequence_needles(sequence, abi)
    if not needles:
        return []
    checker = ConfidentialityChecker(needles)
    surfaces = [
        ("logs", list(run.all_logs)),
        ("wire", list(run.wire)),
        ("public-kv", _public_state_blobs(run,
                                          target.confidential_prefixes)),
    ]
    if target.receipts_public:
        receipts = []
        for outcome in run.outcomes:
            receipts.append(outcome.output)
            if outcome.status in ("abort", "revert"):
                receipts.append(outcome.error.encode())
        surfaces.append(("receipts", receipts))
    findings = []
    for surface, blobs in surfaces:
        try:
            checker.scan_blobs(blobs, f"{run.vm} {surface}")
        except InvariantViolation as exc:
            findings.append(Finding(
                "canary", target.name, sequence,
                f"{surface}/{run.vm}|{exc}"))
    return findings


def check_resources(target_name, sequence, run, resources,
                    factor: int = RESOURCE_FACTOR) -> list:
    """Fuel/gas exhaustion and static-estimate blowouts."""
    findings = []
    estimates = {r.function: r for r in resources}
    for i, outcome in enumerate(run.outcomes):
        method = sequence[i].method
        if outcome.status == "resource":
            findings.append(Finding(
                "resource", target_name, sequence,
                f"{method}/{run.vm}|call[{i}]|{outcome.error}",
                call_index=i))
            continue
        est = estimates.get(method)
        if (est is not None and not est.has_loops
                and est.cycle_estimate > 0 and outcome.instructions
                > factor * est.cycle_estimate):
            findings.append(Finding(
                "resource", target_name, sequence,
                f"{method}/{run.vm}|call[{i}]|instructions="
                f"{outcome.instructions} estimate={est.cycle_estimate}",
                call_index=i))
    return findings


def check_crashes(target_name, sequence, run) -> list:
    return [
        Finding("crash", target_name, sequence,
                f"{sequence[i].method}/{run.vm}|call[{i}]|{o.error}",
                call_index=i)
        for i, o in enumerate(run.outcomes) if o.status == "crash"
    ]


@dataclass
class OracleSuite:
    """All oracles over one differential execution."""

    target: object
    abi: object
    wasm_resources: list = field(default_factory=list)

    def judge(self, sequence, wasm_run, evm_run) -> list:
        findings = []
        findings += check_divergence(self.target.name, sequence,
                                     wasm_run, evm_run)
        for run in (wasm_run, evm_run):
            findings += check_canary(self.target, sequence, run, self.abi)
            findings += check_crashes(self.target.name, sequence, run)
        findings += check_resources(self.target.name, sequence, wasm_run,
                                    self.wasm_resources)
        # Static estimates are CONFIDE-VM cycles; the EVM side still
        # reports fuel/gas exhaustion.
        findings += check_resources(self.target.name, sequence, evm_run, [])
        return findings
