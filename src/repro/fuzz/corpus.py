"""Corpus of coverage-increasing call sequences, with a stable text form.

One corpus entry is a deploy-to-date **call sequence** — a tuple of
:class:`CallStep` — encoded on a single line as::

    method:hexargs;method:hexargs;...

The line format is the unit of reproducibility: every finding report,
pinned fixture, CI artifact and ``repro fuzz --replay`` argument uses
it, so a finding can be re-executed from nothing but its line and the
target name.  On disk a corpus directory holds one ``.seq`` file per
entry, named by content hash, so merging two corpora is a file copy.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.crypto.hashes import sha256


@dataclass(frozen=True)
class CallStep:
    """One method invocation in a fuzzed sequence."""

    method: str
    args: bytes = b""

    def line(self) -> str:
        return f"{self.method}:{self.args.hex()}"


Sequence = tuple  # tuple[CallStep, ...]


def encode_sequence(sequence) -> str:
    return ";".join(step.line() for step in sequence)


def decode_sequence(line: str) -> tuple:
    """Inverse of :func:`encode_sequence`; raises ValueError on junk."""
    steps = []
    line = line.strip()
    if not line:
        return ()
    for part in line.split(";"):
        method, sep, hexargs = part.partition(":")
        if not sep or not method:
            raise ValueError(f"bad sequence step {part!r}")
        steps.append(CallStep(method, bytes.fromhex(hexargs)))
    return tuple(steps)


def entry_name(sequence) -> str:
    return sha256(encode_sequence(sequence).encode())[:8].hex()


class Corpus:
    """Ordered, deduplicated set of sequences (insertion order is part
    of determinism: the mutation scheduler indexes into it)."""

    def __init__(self, directory: str | None = None):
        self.directory = directory
        self.entries: list[tuple] = []
        self._seen: set[str] = set()

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, sequence) -> bool:
        """Insert if new; persists to the corpus directory when set."""
        if not sequence:
            return False
        line = encode_sequence(sequence)
        if line in self._seen:
            return False
        self._seen.add(line)
        self.entries.append(tuple(sequence))
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)
            path = os.path.join(
                self.directory, f"seq-{entry_name(sequence)}.seq")
            with open(path, "w") as f:
                f.write(line + "\n")
        return True

    def load(self) -> int:
        """Read every ``.seq`` file from the directory (sorted by name,
        so load order is deterministic).  Returns entries added."""
        if self.directory is None or not os.path.isdir(self.directory):
            return 0
        added = 0
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(".seq"):
                continue
            with open(os.path.join(self.directory, name)) as f:
                for line in f:
                    line = line.strip()
                    if not line or line.startswith("#"):
                        continue
                    try:
                        sequence = decode_sequence(line)
                    except ValueError:
                        continue
                    if sequence and encode_sequence(sequence) not in self._seen:
                        self._seen.add(encode_sequence(sequence))
                        self.entries.append(sequence)
                        added += 1
        return added

    def choice(self, rng) -> tuple:
        return self.entries[rng.randrange(len(self.entries))]


def parse_finding_file(path: str) -> dict:
    """Read one pinned ``.finding`` fixture.

    The format is ``key: value`` lines (``#`` comments ignored); the
    ``sequence`` value is a sequence line as produced by
    :func:`encode_sequence`.  Returns the fields with ``sequence``
    decoded into call steps.
    """
    fields: dict = {}
    with open(path) as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            key, sep, value = line.partition(":")
            if not sep:
                raise ValueError(f"{path}: bad finding line {raw!r}")
            fields[key.strip()] = value.strip()
    for required in ("kind", "target", "sequence"):
        if required not in fields:
            raise ValueError(f"{path}: missing '{required}' field")
    fields["steps"] = decode_sequence(fields["sequence"])
    return fields
