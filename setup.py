"""Legacy setup shim so `pip install -e .` works without the `wheel` package."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "CONFIDE: confidentiality support over financial-grade consortium "
        "blockchain (SIGMOD 2020) — full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
